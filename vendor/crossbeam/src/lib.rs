//! Offline in-tree stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by the workspace
//! (`crates/data/src/clipgen.rs`); it maps directly onto
//! `std::thread::scope`, which has been stable since Rust 1.63. The one API
//! difference preserved here: crossbeam's `scope` returns a `Result` (Err on
//! panicked child threads) and its spawn closures receive a `&Scope`
//! argument.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle for spawning threads tied to the scope's lifetime.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scope-bound thread; the closure receives the scope so it
        /// can spawn further threads (crossbeam signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish; Err if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Runs `f` with a [`Scope`]; joins all spawned threads before returning.
    /// `Err` carries the payload of the first panicking child (crossbeam
    /// reports an error rather than propagating the panic).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let result = crate::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let result = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn join_returns_value() {
        let r = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
