//! Offline in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate re-implements
//! the slice of the proptest API the tsdx test suites use: the [`proptest!`]
//! macro, range/`Just`/`any` strategies, `prop_map`/`prop_flat_map`,
//! `prop::collection::vec`, [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from upstream are deliberate and small: there is no shrinking
//! (a failing case reports its case index and message only), and the default
//! case count is 48. Each test's stream is seeded from its name, so failures
//! are reproducible run to run.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test-name hash and case index.
    pub fn deterministic(name_hash: u64, case: u32) -> Self {
        TestRng { state: name_hash ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a hash of a test name, used to seed its deterministic stream.
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

/// Failure raised by `prop_assert*` macros inside a proptest body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among equally-weighted boxed alternatives
/// (built by [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() * 2.0 - 1.0) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2.0 - 1.0
    }
}

/// Strategy over a type's whole (bounded) domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    (float: $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
    (int: $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(float: f32, f64);
range_strategy!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` strategies are regex patterns (upstream parity), supporting the
/// subset: literal chars, `[a-z0-9 ]` classes with ranges, and the repeaters
/// `{n}`, `{lo,hi}`, `?`, `*`, `+` (unbounded repeats capped at 8).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a char class or a literal character.
            let atom: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"))
                    + i;
                let mut set = Vec::new();
                let body = &chars[i + 1..close];
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        for c in body[j]..=body[j + 2] {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            assert!(!atom.is_empty(), "empty char class in pattern {self:?}");

            // Optional repeater.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {self:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.parse().expect("bad repeat lower bound"),
                        b.parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n: usize = body.parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && matches!(chars[i], '?' | '*' | '+') {
                let r = match chars[i] {
                    '?' => (0, 1),
                    '*' => (0, 8),
                    _ => (1, 8),
                };
                i += 1;
                r
            } else {
                (1, 1)
            };

            let count = lo + rng.index(hi - lo + 1);
            for _ in 0..count {
                out.push(atom[rng.index(atom.len())]);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.index(span.max(1)).min(span - 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs every `#[test] fn name(pat in strategy, ...) { body }` inside as a
/// property test; an optional leading `#![proptest_config(expr)]` sets the
/// case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let name_hash = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::deterministic(name_hash, case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng); )+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("proptest {} failed at case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a proptest body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice among comma-separated strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of upstream's `prelude::prop` module shorthand.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -5.0f32..5.0, n in 1usize..=8) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..=8).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u32..10, 3..=6)) {
            prop_assert!(v.len() >= 3 && v.len() <= 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn combinators_compose(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(0usize), 5usize..10]) {
            prop_assert!(x == 0 || (5..10).contains(&x));
        }

        #[test]
        fn any_bool_hits_both(bs in prop::collection::vec(any::<bool>(), 64)) {
            // Overwhelmingly likely with 64 draws.
            prop_assert!(bs.iter().any(|&b| b) && bs.iter().any(|&b| !b));
        }
    }

    #[test]
    fn failing_case_panics_with_case_number() {
        let result = std::panic::catch_unwind(|| {
            let config = ProptestConfig::with_cases(3);
            let name_hash = crate::fnv("demo");
            for case in 0..config.cases {
                let mut rng = crate::TestRng::deterministic(name_hash, case);
                let x = Strategy::generate(&(0usize..10), &mut rng);
                let r: Result<(), TestCaseError> = (|| {
                    prop_assert!(x > 100, "x was {}", x);
                    Ok(())
                })();
                if let Err(e) = r {
                    panic!("proptest demo failed at case {}: {}", case + 1, e);
                }
            }
        });
        assert!(result.is_err());
    }
}
