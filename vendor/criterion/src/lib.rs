//! Offline in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate implements the
//! slice of the criterion API the tsdx benches use: [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! `sample_size`, [`Bencher::iter`], and [`black_box`]. Measurement is a
//! simple calibrated wall-clock loop: each sample times a batch of iterations
//! sized so a batch takes roughly a millisecond, and the reported estimate is
//! the median over samples. No statistical regression analysis, no HTML
//! reports — output is one line per benchmark on stdout, which is all the
//! workspace relies on.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Handed to the closure of `bench_function`; drives the measured loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the batch size chosen by the harness.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier combining a function name and a parameter, e.g.
/// `BenchmarkId::new("matmul", 4)` → `matmul/4`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    /// Wall-clock budget per benchmark (split across samples).
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 12, measurement_time: Duration::from_millis(400) }
    }
}

impl Criterion {
    /// Upstream parses CLI args here; this stand-in accepts and ignores them
    /// (filters/baselines are not supported offline).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_benchmark(id, sample_size, measurement_time, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&full, sample_size, self.criterion.measurement_time, f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Median estimate over `sample_size` timed batches.
fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Calibrate: find an iteration count whose batch lasts ~1 per-sample slot.
    let slot = measurement_time.as_secs_f64() / sample_size as f64;
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let t = b.elapsed.as_secs_f64();
        if t >= slot || t >= 0.05 || iters >= 1 << 20 {
            break;
        }
        // Grow towards the slot, at most 8x per step to avoid overshooting.
        let factor = if t <= f64::EPSILON { 8.0 } else { (slot / t).clamp(1.5, 8.0) };
        iters = ((iters as f64 * factor).ceil() as u64).max(iters + 1);
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("{id:<48} time: [{} per iter, {iters} iters/sample]", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(20));
        let mut count = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn groups_run_every_member() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10));
        let mut hits = [false; 2];
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("a", |b| {
                hits[0] = true;
                b.iter(|| black_box(1 + 1))
            });
            g.bench_function(BenchmarkId::new("b", 42), |b| {
                hits[1] = true;
                b.iter(|| black_box(2 + 2))
            });
            g.finish();
        }
        assert!(hits.iter().all(|&h| h));
    }
}
