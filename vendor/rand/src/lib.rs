//! Offline in-tree stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate vendors the
//! small slice of the `rand` 0.9 API that the tsdx workspace actually uses:
//! [`Rng::random_range`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic per seed, which is all the workspace
//! relies on (it never depends on the exact stream of the upstream `StdRng`).

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform sample of a full-range value (`f32`/`f64` in `[0, 1)`).
    fn random<T: distr::StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** (seeded via
    /// SplitMix64). Fast, equidistributed, deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpoint/resume: a generator
        /// rebuilt with [`StdRng::from_state`] continues the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is not reachable from any
        /// seed and would be a fixed point of the generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0, 0, 0, 0], "all-zero xoshiro state is invalid");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Range-sampling machinery behind [`Rng::random_range`].
pub mod distr {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce a uniform sample of `T`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Element types uniform-sampleable from a range. The blanket
    /// [`SampleRange`] impls below are generic over this trait so that type
    /// inference can flow from the sampled value back into the range literal
    /// (`let x: f32 = rng.random_range(0.0..1.0)` must infer `Range<f32>`),
    /// matching upstream rand.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform sample from `[lo, hi)`.
        fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        /// Uniform sample from `[lo, hi]`.
        fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            T::sample_inclusive(lo, hi, rng)
        }
    }

    /// Types with a canonical "unit" sample (floats in `[0, 1)`).
    pub trait StandardSample {
        /// Draws the canonical sample.
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    #[inline]
    pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    impl StandardSample for f64 {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng)
        }
    }

    impl StandardSample for f32 {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng) as f32
        }
    }

    impl StandardSample for bool {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! float_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    lo + unit_f64(rng) as $t * (hi - lo)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    lo + unit_f64(rng) as $t * (hi - lo)
                }
            }
        )*};
    }
    float_uniform!(f32, f64);

    macro_rules! int_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    let span = (hi as i128 - lo as i128) as u128;
                    let draw = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + draw) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + draw) as $t
                }
            }
        )*};
    }
    int_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random_range(0u64..1 << 40), b.random_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = rng.random_range(-2.0f32..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.random_range(5usize..17);
            assert!((5..17).contains(&i));
            let c: f32 = rng.random_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&c));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..512).map(|_| rng.random_range(0.0..1.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.1, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn generic_rng_param_works() {
        fn draw(rng: &mut impl Rng) -> f32 {
            rng.random_range(0.0f32..1.0)
        }
        let mut rng = StdRng::seed_from_u64(0);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
