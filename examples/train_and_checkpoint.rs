//! Train, checkpoint, reload: demonstrates the binary checkpoint format
//! and that a reloaded model reproduces its predictions exactly.
//!
//! Run with `cargo run --release --example train_and_checkpoint`.

use tsdx::core::{ClipModel, ModelConfig, ScenarioExtractor, TrainConfig};
use tsdx::data::{generate_dataset, DatasetConfig};
use tsdx::nn::{load_checkpoint, save_checkpoint, LrSchedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating 160 clips...");
    let clips = generate_dataset(&DatasetConfig { n_clips: 160, ..DatasetConfig::default() });

    let mut extractor = ScenarioExtractor::untrained(ModelConfig::default(), 3);
    println!("training briefly ({} params)...", extractor.model().num_params());
    extractor.fit(
        &clips,
        &TrainConfig {
            epochs: 6,
            batch_size: 16,
            schedule: LrSchedule::Constant(1e-3),
            verbose: true,
            ..TrainConfig::default()
        },
    );

    // Save.
    let path = std::env::temp_dir().join("tsdx-demo-checkpoint.bin");
    save_checkpoint(extractor.model().params(), &path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("checkpoint written: {} ({bytes} bytes)", path.display());

    // Reload into a fresh model and compare predictions.
    let mut fresh = ScenarioExtractor::untrained(ModelConfig::default(), 999);
    let restored = load_checkpoint(fresh.model_mut().params_mut(), &path)?;
    println!("restored {restored} parameter tensors");

    // Reloaded predictions must match under whichever inference plane the
    // `TSDX_PRECISION` dial selects (`extract_checked` reports malformed
    // input as a typed `ExtractError`; `?` surfaces it).
    println!("comparing {} predictions...", tsdx::core::precision::active());
    let video = &clips[0].video;
    let a = extractor.extract_checked(video)?;
    let b = fresh.extract_checked(video)?;
    println!("original:  {a}");
    println!("restored:  {b}");
    assert_eq!(a, b, "restored model must reproduce predictions exactly");
    println!("predictions match.");

    std::fs::remove_file(&path).ok();
    Ok(())
}
