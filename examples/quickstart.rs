//! Quickstart: generate a synthetic driving dataset, train the video
//! scenario transformer, and extract SDL descriptions from held-out clips.
//!
//! Run with `cargo run --release --example quickstart`.

use tsdx::core::{evaluate, ModelConfig, ScenarioExtractor, TrainConfig};
use tsdx::data::{generate_dataset, select, stratified_split, DatasetConfig};
use tsdx::nn::LrSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: 400 labeled clips from the traffic simulator + renderer.
    println!("generating 400 synthetic driving clips...");
    let clips = generate_dataset(&DatasetConfig { n_clips: 400, ..DatasetConfig::default() });
    let split = stratified_split(&clips, (0.8, 0.0), 7);
    println!("train: {} clips, test: {} clips", split.train.len(), split.test.len());

    // 2. Model: the paper's factorized space-time video transformer.
    let mut extractor = ScenarioExtractor::untrained(ModelConfig::default(), 7);
    println!("video scenario transformer: {} parameters", extractor.model().num_params());

    // 3. Train.
    println!("training (this takes a couple of minutes on one core)...");
    let train_clips: Vec<tsdx::data::Clip> =
        select(&clips, &split.train).into_iter().cloned().collect();
    let steps = (train_clips.len().div_ceil(16) * 25) as u32;
    let final_loss = extractor.fit(
        &train_clips,
        &TrainConfig {
            epochs: 25,
            batch_size: 16,
            schedule: LrSchedule::WarmupCosine { base: 3e-3, warmup: 20, total: steps, min: 1e-4 },
            verbose: true,
            ..TrainConfig::default()
        },
    );
    println!("final training loss: {final_loss:.3}");

    // 4. Evaluate on held-out clips.
    let summary = evaluate(extractor.model(), &clips, &split.test);
    println!(
        "test: ego {:.1}% | road {:.1}% | event {:.1}% | position {:.1}% | presence-F1 {:.1}%",
        summary.ego_acc * 100.0,
        summary.road_acc * 100.0,
        summary.event_acc * 100.0,
        summary.position_acc * 100.0,
        summary.presence_f1 * 100.0
    );

    // 5. Extract descriptions for a few test clips. Inference runs on the
    // plane the `TSDX_PRECISION` dial selects (default f32); under int8,
    // prepack the weights once up front so extraction never re-quantizes.
    let precision = tsdx::core::precision::active();
    if precision == tsdx::core::precision::Precision::Int8 {
        println!("prepacked int8 weights: {}", extractor.quantize());
    }
    println!("\nsample {precision} extractions (truth vs predicted):");
    for &i in split.test.iter().take(6) {
        // `extract_checked` reports malformed clips as a typed
        // `ExtractError`; `?` surfaces it in the exit message.
        let predicted = extractor.extract_checked(&clips[i].video)?;
        println!("  truth: {}", clips[i].truth);
        println!("   pred: {predicted}\n");
    }
    Ok(())
}
