//! Attention introspection: train a small extractor, then print where the
//! spatial attention looks for a few clips — per time group, as an ASCII
//! heat grid over the tubelet lattice.
//!
//! Run with `cargo run --release --example attention_maps`.

use tsdx::core::{ModelConfig, ScenarioExtractor, TrainConfig};
use tsdx::data::{generate_dataset, DatasetConfig};
use tsdx::nn::LrSchedule;

fn heat(v: f32, max: f32) -> char {
    const RAMP: &[u8] = b" .:-=+*#%@";
    if max <= 0.0 {
        return ' ';
    }
    let i = ((v / max) * (RAMP.len() - 1) as f32).round() as usize;
    RAMP[i.min(RAMP.len() - 1)] as char
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating 240 clips and training briefly...");
    let clips = generate_dataset(&DatasetConfig { n_clips: 240, ..DatasetConfig::default() });
    let mut extractor = ScenarioExtractor::untrained(ModelConfig::default(), 5);
    let steps = (clips.len().div_ceil(16) * 15) as u32;
    extractor.fit(
        &clips,
        &TrainConfig {
            epochs: 15,
            batch_size: 16,
            schedule: LrSchedule::WarmupCosine { base: 1e-3, warmup: 20, total: steps, min: 5e-5 },
            verbose: true,
            ..TrainConfig::default()
        },
    );

    println!("extracting under {} inference", tsdx::core::precision::active());
    let cfg = *extractor.model().config();
    let grid_w = cfg.width / cfg.patch;
    let grid_h = cfg.height / cfg.patch;

    for clip in clips.iter().take(3) {
        let video = clip.video.reshape(&[1, cfg.frames, cfg.height, cfg.width]);
        let map = extractor.model().attention_map(&video); // [1, nt, ns]
        let pred = extractor.extract_checked(&clip.video)?;
        println!("\ntruth: {}", clip.truth);
        println!(" pred: {pred}");
        println!("CLS spatial attention per time group ({grid_h}x{grid_w} tubelets):");
        let max = map.max();
        for t in 0..cfg.n_time() {
            println!("  t{t}  (frames {}..{})", t * cfg.tubelet_t, (t + 1) * cfg.tubelet_t - 1);
            for r in 0..grid_h {
                let row: String = (0..grid_w)
                    .map(|c| {
                        let v = map.at(&[0, t, r * grid_w + c]);
                        let ch = heat(v, max);
                        format!("{ch}{ch}")
                    })
                    .collect();
                println!("    {row}");
            }
        }
    }
    Ok(())
}
