//! Scenario search: query a corpus of driving clips with an SDL
//! description and retrieve the most similar scenarios.
//!
//! This is the downstream use case motivating automated extraction: an AV
//! validation engineer asks "find me clips like *ego decelerate-to-stop;
//! pedestrian crossing right; road intersection*" and the corpus answers —
//! without anyone hand-labeling the clips.
//!
//! Run with `cargo run --release --example scenario_search`.

use tsdx::data::{generate_dataset, DatasetConfig};
use tsdx::metrics::{precision_at_k, rank_by_score};
use tsdx::sdl::{cosine, embed, parse_scenario, similarity};

fn main() {
    // Build a small corpus with ground-truth SDL (in production these
    // descriptions come from the trained extractor; see `quickstart.rs`).
    println!("generating a 300-clip corpus...");
    let corpus = generate_dataset(&DatasetConfig { n_clips: 300, ..DatasetConfig::default() });
    let embeddings: Vec<Vec<f32>> = corpus.iter().map(|c| embed(&c.truth)).collect();

    let queries = [
        "ego decelerate-to-stop; pedestrian crossing right; road intersection",
        "ego cruise; vehicle oncoming ahead; road curve-left",
        "ego turn-left; road intersection",
        "ego lane-change-left; vehicle overtaking left; road straight",
    ];

    for query_text in queries {
        let query = parse_scenario(query_text).expect("valid query SDL");
        let qe = embed(&query);

        // Rank the corpus by embedding cosine similarity.
        let scores: Vec<f32> = embeddings.iter().map(|e| cosine(&qe, e)).collect();
        let mut order: Vec<usize> = (0..corpus.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite"));

        println!("\nquery: {query}");
        for &i in order.iter().take(3) {
            println!(
                "  [cos {:.2} | slot-sim {:.2}] {}",
                scores[i],
                similarity(&query, &corpus[i].truth),
                corpus[i].truth
            );
        }

        // Precision@5 against a strict relevance notion (same ego & road).
        let relevant: Vec<bool> =
            corpus.iter().map(|c| c.truth.ego == query.ego && c.truth.road == query.road).collect();
        let p5 = precision_at_k(&rank_by_score(&scores, &relevant), 5);
        println!("  P@5 (same ego maneuver + road): {:.0}%", p5 * 100.0);
    }
}
