//! BEV explorer: sample a scenario, simulate it, and print ASCII
//! renderings of both the bird's-eye view and the ego camera, side by side
//! with the ground-truth SDL and the kinematic labeler's reading.
//!
//! Run with `cargo run --release --example bev_explorer [seed]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx::render::{render_bev, render_frame, BevConfig, Camera, WorldMap};
use tsdx::sim::{infer_actor_action, infer_ego_maneuver, SamplerConfig, ScenarioSampler};
use tsdx::tensor::Tensor;

/// Maps an intensity in [0, 1] to an ASCII shade.
fn shade(v: f32) -> char {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let i = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
    RAMP[i] as char
}

fn print_image(title: &str, img: &Tensor) {
    let (h, w) = (img.shape()[0], img.shape()[1]);
    println!("-- {title} ({w}x{h}) --");
    for r in 0..h {
        let row: String = (0..w).map(|c| shade(img.at(&[r, c]))).collect();
        println!("  {row}");
    }
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(21);
    let sampler = ScenarioSampler::new(SamplerConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let generated = sampler.sample(&mut rng);
    println!("seed {seed}");
    println!("ground truth: {}\n", generated.truth);

    let trajectory = generated.world.simulate(0.05);
    let map = WorldMap::build(&generated.world.road);
    let cam = Camera::standard(48, 24);

    // Mid-clip snapshot.
    let mid = trajectory.len() / 2;
    let ego = &trajectory.ego[mid];
    let actors: Vec<_> = generated
        .world
        .actors
        .iter()
        .zip(&trajectory.actors)
        .map(|(a, states)| (a.kind, states[mid]))
        .collect();

    let bev = render_bev(&BevConfig { size: 40, span: 70.0 }, &map, ego, &actors);
    print_image("bird's-eye view (mid clip, ego at center)", &bev);
    println!();
    let frame = render_frame(&cam, &map, ego, &actors);
    print_image("ego camera (mid clip)", &frame);

    // What the kinematic labeler reads back from the trajectory.
    let ego_read = infer_ego_maneuver(&trajectory, generated.truth.road);
    println!("\nkinematic labeler: ego {ego_read}");
    for (i, clause) in generated.truth.actors.iter().enumerate() {
        match infer_actor_action(&generated.world, &trajectory, i) {
            Some(action) => println!(
                "  actor {i} ({}): inferred `{action}`, truth `{}`",
                clause.kind, clause.action
            ),
            None => println!("  actor {i} ({}): mostly off-stage", clause.kind),
        }
    }
}
