//! # tsdx — Traffic Scenario Description eXtraction
//!
//! A from-scratch Rust reproduction of *"Automated Traffic Scenario
//! Description Extraction Using Video Transformers"* (DATE 2024, ASD
//! initiative): ego-camera driving clips go in, structured, queryable SDL
//! scenario descriptions come out.
//!
//! This umbrella crate re-exports the whole stack:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`tensor`] | `tsdx-tensor` | dense `f32` tensors + reverse-mode autograd |
//! | [`nn`] | `tsdx-nn` | layers, optimizers, checkpoints |
//! | [`sdl`] | `tsdx-sdl` | the Scenario Description Language |
//! | [`sim`] | `tsdx-sim` | traffic micro-simulator with SDL ground truth |
//! | [`render`] | `tsdx-render` | ego-camera + BEV rasterizer |
//! | [`data`] | `tsdx-data` | dataset generation, splits, batching |
//! | [`core`] | `tsdx-core` | the video scenario transformer |
//! | [`baselines`] | `tsdx-baselines` | heuristic, frame-MLP, CNN+GRU |
//! | [`metrics`] | `tsdx-metrics` | evaluation arithmetic |
//! | [`serve`] | `tsdx-serve` | batched, fault-hardened HTTP serving |
//! | [`index`] | `tsdx-index` | sharded SDL vector index + exact search |
//!
//! # Quickstart
//!
//! ```
//! use tsdx::data::{generate_dataset, DatasetConfig};
//! use tsdx::render::RenderConfig;
//!
//! // Generate four tiny labeled clips and look at one description.
//! let cfg = DatasetConfig {
//!     n_clips: 4,
//!     render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
//!     ..DatasetConfig::default()
//! };
//! let clips = generate_dataset(&cfg);
//! println!("{}", clips[0].truth); // e.g. "ego cruise; vehicle leading ahead; road straight"
//! ```
//!
//! See `examples/quickstart.rs` for the full train-and-extract loop.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tsdx_baselines as baselines;
pub use tsdx_core as core;
pub use tsdx_data as data;
pub use tsdx_index as index;
pub use tsdx_metrics as metrics;
pub use tsdx_nn as nn;
pub use tsdx_render as render;
pub use tsdx_sdl as sdl;
pub use tsdx_serve as serve;
pub use tsdx_sim as sim;
pub use tsdx_tensor as tensor;

// Convenience re-exports of the headline types.
pub use tsdx_core::{ModelConfig, ScenarioExtractor, VideoScenarioTransformer};
pub use tsdx_sdl::Scenario;
