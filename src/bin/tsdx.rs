//! `tsdx` — command-line interface to the scenario-extraction stack.
//!
//! ```text
//! tsdx generate --clips 500 --out clips.bin [--seed 17]
//! tsdx stats    --data clips.bin
//! tsdx train    --data clips.bin --out model.ckpt [--epochs 20]
//! tsdx eval     --model model.ckpt --data clips.bin
//! tsdx extract  --model model.ckpt --data clips.bin [--limit 5]
//! tsdx search   --data clips.bin --filter "road=intersection" [--like "<sdl>"] [--top 5]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use tsdx::core::{evaluate, ClipModel, ModelConfig, ScenarioExtractor, TrainConfig};
use tsdx::data::{generate_dataset, load_clips, save_clips, Clip, DatasetConfig, DatasetStats};
use tsdx::nn::{load_checkpoint, save_checkpoint, LrSchedule};
use tsdx::sdl::{ScenarioCorpus, ScenarioFilter};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "stats" => cmd_stats(&opts),
        "train" => cmd_train(&opts),
        "eval" => cmd_eval(&opts),
        "extract" => cmd_extract(&opts),
        "search" => cmd_search(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
tsdx — automated traffic scenario description extraction

USAGE:
  tsdx generate --clips N --out FILE [--seed S] [--frames T] [--size PX]
  tsdx stats    --data FILE
  tsdx train    --data FILE --out CKPT [--epochs E] [--seed S]
  tsdx eval     --model CKPT --data FILE
  tsdx extract  --model CKPT --data FILE [--limit N]
  tsdx search   --data FILE [--filter \"key=value ...\"] [--like \"SDL text\"] [--top K]

Filter keys: ego, road, actor, action, position (see SDL vocabulary).";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --option, got `{key}`"));
        };
        let value = it.next().ok_or_else(|| format!("missing value for --{name}"))?;
        opts.insert(name.to_string(), value.clone());
    }
    Ok(opts)
}

fn require<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(String::as_str).ok_or_else(|| format!("missing required --{key}"))
}

fn numeric<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        Some(v) => v.parse().map_err(|_| format!("invalid --{key} value `{v}`")),
        None => Ok(default),
    }
}

fn load(opts: &Opts) -> Result<Vec<Clip>, String> {
    let path = require(opts, "data")?;
    load_clips(path).map_err(|e| e.to_string())
}

fn model_config_for(clips: &[Clip]) -> Result<ModelConfig, String> {
    let cfg = ModelConfig::default();
    let shape = clips.first().ok_or("dataset is empty")?.video.shape();
    if shape != [cfg.frames, cfg.height, cfg.width] {
        return Err(format!(
            "dataset clips are {shape:?} but the CLI model expects {:?}; regenerate with \
             --frames {} --size {}",
            [cfg.frames, cfg.height, cfg.width],
            cfg.frames,
            cfg.height
        ));
    }
    Ok(cfg)
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let n = numeric(opts, "clips", 500usize)?;
    let out = require(opts, "out")?;
    let seed = numeric(opts, "seed", 17u64)?;
    let frames = numeric(opts, "frames", 8usize)?;
    let size = numeric(opts, "size", 32usize)?;
    eprintln!("generating {n} clips ({frames}x{size}x{size}, seed {seed})...");
    let cfg = DatasetConfig {
        n_clips: n,
        base_seed: seed,
        render: tsdx::render::RenderConfig {
            frames,
            width: size,
            height: size,
            ..tsdx::render::RenderConfig::default()
        },
        ..DatasetConfig::default()
    };
    let clips = generate_dataset(&cfg);
    save_clips(&clips, out).map_err(|e| e.to_string())?;
    eprintln!("wrote {} clips to {out}", clips.len());
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let clips = load(opts)?;
    println!("{}", DatasetStats::compute(&clips));
    Ok(())
}

fn cmd_train(opts: &Opts) -> Result<(), String> {
    let clips = load(opts)?;
    let out = require(opts, "out")?;
    let epochs = numeric(opts, "epochs", 20usize)?;
    let seed = numeric(opts, "seed", 17u64)?;
    let cfg = model_config_for(&clips)?;
    let mut extractor = ScenarioExtractor::untrained(cfg, seed);
    eprintln!(
        "training on {} clips for {epochs} epochs ({} params)...",
        clips.len(),
        extractor.model().num_params()
    );
    let steps = (clips.len().div_ceil(16) * epochs) as u32;
    let loss = extractor.fit(
        &clips,
        &TrainConfig {
            epochs,
            batch_size: 16,
            schedule: LrSchedule::WarmupCosine {
                base: 1e-3,
                warmup: (steps / 20).max(5),
                total: steps,
                min: 5e-5,
            },
            seed,
            verbose: true,
            ..TrainConfig::default()
        },
    );
    eprintln!("final training loss: {loss:.3}");
    save_checkpoint(extractor.model().params(), out).map_err(|e| e.to_string())?;
    eprintln!("checkpoint written to {out}");
    Ok(())
}

fn load_model(opts: &Opts, clips: &[Clip]) -> Result<ScenarioExtractor, String> {
    let ckpt = require(opts, "model")?;
    let cfg = model_config_for(clips)?;
    let mut extractor = ScenarioExtractor::untrained(cfg, 0);
    let n = load_checkpoint(extractor.model_mut().params_mut(), ckpt).map_err(|e| e.to_string())?;
    if n != extractor.model().params().len() {
        return Err(format!(
            "checkpoint restored only {n}/{} tensors — architecture mismatch?",
            extractor.model().params().len()
        ));
    }
    Ok(extractor)
}

fn cmd_eval(opts: &Opts) -> Result<(), String> {
    let clips = load(opts)?;
    let extractor = load_model(opts, &clips)?;
    let idx: Vec<usize> = (0..clips.len()).collect();
    let s = evaluate(extractor.model(), &clips, &idx);
    println!("clips:            {}", s.n);
    println!("ego accuracy:     {:.1}%  (macro-F1 {:.1}%)", s.ego_acc * 100.0, s.ego_f1 * 100.0);
    println!("road accuracy:    {:.1}%", s.road_acc * 100.0);
    println!(
        "event accuracy:   {:.1}%  (macro-F1 {:.1}%)",
        s.event_acc * 100.0,
        s.event_f1 * 100.0
    );
    println!("position acc:     {:.1}%", s.position_acc * 100.0);
    println!("presence micro-F1 {:.1}%", s.presence_f1 * 100.0);
    println!("mean accuracy:    {:.1}%", s.mean_accuracy() * 100.0);
    Ok(())
}

fn cmd_extract(opts: &Opts) -> Result<(), String> {
    let clips = load(opts)?;
    let extractor = load_model(opts, &clips)?;
    let limit = numeric(opts, "limit", 10usize)?.min(clips.len());
    let predictions = extractor.extract_batch(&clips[..limit]);
    for (clip, pred) in clips.iter().zip(&predictions) {
        println!("truth: {}", clip.truth);
        println!(" pred: {pred}");
        println!("       \"{}\"\n", tsdx::sdl::to_sentence(pred));
    }
    Ok(())
}

fn cmd_search(opts: &Opts) -> Result<(), String> {
    let clips = load(opts)?;
    let corpus: ScenarioCorpus = clips.iter().map(|c| c.truth.clone()).collect();
    let filter: ScenarioFilter = match opts.get("filter") {
        Some(text) => text.parse().map_err(|e| format!("{e}"))?,
        None => ScenarioFilter::any(),
    };
    let top = numeric(opts, "top", 5usize)?;
    match opts.get("like") {
        Some(sdl) => {
            let query = sdl.parse().map_err(|e| format!("bad --like SDL: {e}"))?;
            let hits = corpus.search(&filter, &query, top);
            println!("filter: {filter}");
            println!("query:  {query}");
            for (id, score) in hits {
                println!("  [clip {id:>4} | cos {score:.3}] {}", corpus.get(id).expect("valid id"));
            }
        }
        None => {
            let ids = corpus.filter(&filter);
            println!("filter: {filter} — {} matches", ids.len());
            for id in ids.into_iter().take(top) {
                println!("  [clip {id:>4}] {}", corpus.get(id).expect("valid id"));
            }
        }
    }
    Ok(())
}
