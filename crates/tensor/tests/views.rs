//! Property-based tests of the strided-view execution layer.
//!
//! Three families of invariants:
//!
//! 1. **View/materialize equivalence** — any op applied to a strided view
//!    must produce the same logical result as applying it to the
//!    materialized (contiguous) copy of that view.
//! 2. **Thread parity** — the blocked matmul must be bit-identical across
//!    thread counts (each output element is computed by exactly one thread,
//!    in the same accumulation order).
//! 3. **Zero-copy discipline** — composing view ops on contiguous inputs
//!    must not materialize any buffer, and gradients must flow through view
//!    nodes on the tape.

use proptest::prelude::*;
use tsdx_tensor::{copy_metrics, grad_check, metrics, ops, shape, Graph, Tensor};

/// Strategy: a rank-3 shape with extents 1-4.
fn shape3() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=4, 3..=3)
}

/// Strategy: a tensor of the given shape with bounded finite values.
fn tensor_of(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n = shape::numel(&shape);
    prop::collection::vec(-8.0f32..8.0, n..=n).prop_map(move |data| Tensor::from_vec(data, &shape))
}

fn arb_tensor3() -> impl Strategy<Value = Tensor> {
    shape3().prop_flat_map(tensor_of)
}

/// Strategy: a rank-3 tensor plus a permutation of its axes.
fn tensor_and_perm() -> impl Strategy<Value = (Tensor, Vec<usize>)> {
    let perms: Vec<Vec<usize>> = vec![
        vec![0, 1, 2],
        vec![0, 2, 1],
        vec![1, 0, 2],
        vec![1, 2, 0],
        vec![2, 0, 1],
        vec![2, 1, 0],
    ];
    (arb_tensor3(), 0usize..6).prop_map(move |(t, i)| (t, perms[i].clone()))
}

/// Builds a non-contiguous view by permuting and narrowing `t`, alongside
/// the step-by-step materialized reference.
fn view_and_reference(
    t: &Tensor,
    perm: &[usize],
    axis: usize,
    drop_front: bool,
) -> (Tensor, Tensor) {
    let view = ops::permute(t, perm);
    let reference = ops::permute(&t.contiguous(), perm).contiguous();
    let len = view.shape()[axis];
    let take = len.div_ceil(2);
    let start = if drop_front { len - take } else { 0 };
    (ops::narrow(&view, axis, start, take), ops::narrow(&reference, axis, start, take).contiguous())
}

proptest! {
    #[test]
    fn view_pipeline_matches_materialized(
        (t, perm) in tensor_and_perm(),
        axis in 0usize..3,
        drop_front in any::<bool>(),
    ) {
        let (view, reference) = view_and_reference(&t, &perm, axis, drop_front);
        prop_assert_eq!(view.shape(), reference.shape());
        prop_assert_eq!(view.to_vec(), reference.to_vec());
    }

    #[test]
    fn elementwise_on_views_matches_eager(
        (t, perm) in tensor_and_perm(),
    ) {
        let u = t.map(|x| x * 0.5 - 1.0);
        // add(permute(a), permute(b)) == permute(add(a, b)).
        let via_views = ops::add(&ops::permute(&t, &perm), &ops::permute(&u, &perm));
        let eager = ops::permute(&ops::add(&t, &u), &perm);
        prop_assert!(via_views.allclose(&eager, 0.0));
    }

    #[test]
    fn reductions_on_views_match_eager(
        (t, perm) in tensor_and_perm(),
        axis in 0usize..3,
    ) {
        let view = ops::permute(&t, &perm);
        let materialized = view.contiguous();
        let a = ops::sum_axis(&view, axis, false);
        let b = ops::sum_axis(&materialized, axis, false);
        prop_assert!(a.allclose(&b, 1e-5));
        let ma = ops::max_axis(&view, axis, true);
        let mb = ops::max_axis(&materialized, axis, true);
        prop_assert!(ma.allclose(&mb, 0.0));
    }

    #[test]
    fn matmul_accepts_views_and_matches_contiguous(
        m in 1usize..5, k in 1usize..5, n in 1usize..5,
    ) {
        // a is produced as a transpose view of a [k, m] buffer.
        let a_t = Tensor::from_fn(&[k, m], |i| (i as f32 * 0.73).sin());
        let b_t = Tensor::from_fn(&[n, k], |i| (i as f32 * 0.41).cos());
        let a_view = ops::transpose_last2(&a_t); // [m, k], col-major
        let b_view = ops::transpose_last2(&b_t); // [k, n], col-major
        let via_views = ops::matmul(&a_view, &b_view);
        let eager = ops::matmul(&a_view.contiguous(), &b_view.contiguous());
        prop_assert!(via_views.allclose(&eager, 1e-5));
    }

    #[test]
    fn matmul_thread_counts_are_bit_identical(
        b in 1usize..3, m in 1usize..6, k in 1usize..6, n in 1usize..6,
        threads in 2usize..9,
    ) {
        let a = Tensor::from_fn(&[b, m, k], |i| ((i * 7 % 23) as f32 - 11.0) * 0.3);
        let w = Tensor::from_fn(&[k, n], |i| ((i * 5 % 17) as f32 - 8.0) * 0.25);
        let one = ops::matmul_with_threads(&a, &w, 1);
        let many = ops::matmul_with_threads(&a, &w, threads);
        // Bitwise equality: each output row is computed by exactly one
        // worker with the same accumulation order as the serial kernel.
        prop_assert_eq!(one.to_vec(), many.to_vec());
    }

    #[test]
    fn view_chain_copies_nothing(
        (t, perm) in tensor_and_perm(),
        axis in 0usize..3,
    ) {
        let scope = metrics::scope();
        let v1 = ops::permute(&t, &perm);
        let v2 = ops::transpose_last2(&v1);
        let len = v2.shape()[axis];
        let v3 = ops::narrow(&v2, axis, 0, len.div_ceil(2));
        let parts = ops::split(&v3, 0, v3.shape()[0]);
        prop_assert_eq!(scope.snapshot().counter(copy_metrics::KEY), 0,
            "view ops must not materialize");
        drop(scope);
        // The views still read correct data afterwards.
        prop_assert_eq!(parts.len(), v3.shape()[0]);
        prop_assert_eq!(v3.to_vec().len(), v3.numel());
    }

    #[test]
    fn gradients_flow_through_view_nodes(
        (t, perm) in tensor_and_perm(),
    ) {
        // loss = sum(permute(x)^2)  =>  dx = 2x regardless of the permute.
        let mut g = Graph::new();
        let x = g.leaf(t.clone());
        let p = g.permute(x, &perm);
        let sq = g.mul(p, p);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        let dx = grads.get(x).expect("leaf gradient");
        prop_assert!(dx.allclose(&ops::scale(&t, 2.0), 1e-5));
    }

    #[test]
    fn narrow_gradient_masks_outside_window(
        (t, perm) in tensor_and_perm(),
    ) {
        // loss = sum(narrow(permute(x))) => dx is 1 inside the window, 0 out.
        let mut g = Graph::new();
        let x = g.leaf(t.clone());
        let p = g.permute(x, &perm);
        let len = g.shape(p)[1];
        let take = len.div_ceil(2);
        let nr = g.narrow(p, 1, 0, take);
        let loss = g.sum_all(nr);
        let grads = g.backward(loss);
        let dx = grads.get(x).expect("leaf gradient");
        // Sum of the gradient equals the number of selected elements.
        let selected = g.shape(nr).iter().product::<usize>() as f32;
        prop_assert!((dx.sum() - selected).abs() < 1e-4);
        // And every entry is 0 or 1.
        prop_assert!(dx.to_vec().iter().all(|&v| v == 0.0 || v == 1.0));
    }
}

#[test]
fn view_grads_match_numerical_gradients() {
    let x = Tensor::from_fn(&[2, 3, 4], |i| ((i * 13 % 29) as f32 - 14.0) * 0.1);
    grad_check::assert_gradients(&[x], 1e-2, 1e-2, |g, v| {
        let p = g.permute(v[0], &[2, 0, 1]); // [4, 2, 3]
        let n = g.narrow(p, 0, 1, 2); // [2, 2, 3]
        let t = g.transpose_last2(n); // [2, 3, 2]
        let sq = g.mul(t, t);
        g.sum_all(sq)
    });
}

#[test]
fn backward_through_views_copies_only_at_the_boundary() {
    // A permute on the tape: the backward view is free; the only copy is
    // the final materialization of the leaf gradient at the API boundary.
    let t = Tensor::from_fn(&[3, 4, 5], |i| i as f32 * 0.01);
    let mut g = Graph::new();
    let x = g.leaf(t);
    let p = g.permute(x, &[2, 0, 1]);
    let loss = g.sum_all(p);
    let scope = metrics::scope();
    let grads = g.backward(loss);
    let copies = scope.snapshot().counter(copy_metrics::KEY);
    drop(scope);
    assert!(
        copies <= 1,
        "backward through a permute should materialize at most the leaf \
         gradient, saw {copies} copies",
    );
    assert!(grads.get(x).unwrap().is_contiguous());
}
