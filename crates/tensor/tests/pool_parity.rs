//! Thread-parity and fused-attention equivalence tests.
//!
//! Every kernel that dispatches to the shared worker pool must be
//! **bit-identical** across pool sizes: work is partitioned as contiguous
//! chunks of output rows and every element is computed by exactly one chunk
//! with the same serial per-element code. These tests pin that contract by
//! running each kernel under [`pool::with_forced_threads`] with 1, 2, 3, and
//! 5 chunks (the override also bypasses serial thresholds, so small inputs
//! genuinely exercise the chunked path) and comparing raw bits.
//!
//! The fused attention op additionally gets a property test against the
//! composed matmul/softmax/matmul path and a finite-difference gradient
//! check through [`Graph::attention`].

use proptest::prelude::*;
use tsdx_tensor::{grad_check, ops, pool, Tensor};

const THREADS: [usize; 3] = [2, 3, 5];

/// Runs `f` once per forced thread count and asserts all results are
/// bit-identical to the single-chunk run.
fn assert_thread_parity(name: &str, f: impl Fn() -> Tensor) {
    let serial = pool::with_forced_threads(1, &f);
    for t in THREADS {
        let par = pool::with_forced_threads(t, &f);
        assert_eq!(serial.shape(), par.shape(), "{name}: shape diverged at {t} threads");
        let (a, b) = (serial.to_vec(), par.to_vec());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{name}: element {i} diverged at {t} threads: {x} vs {y}"
            );
        }
    }
}

fn input(shape: &[usize], freq: f32) -> Tensor {
    Tensor::from_fn(shape, |i| (i as f32 * freq).sin() * 2.0)
}

#[test]
fn matmul_is_bit_identical_across_pool_sizes() {
    let a = input(&[3, 17, 9], 0.13);
    let b = input(&[3, 9, 11], 0.07);
    assert_thread_parity("matmul", || ops::matmul(&a, &b));
}

#[test]
fn softmax_last_is_bit_identical_across_pool_sizes() {
    let x = input(&[7, 13], 0.29);
    assert_thread_parity("softmax_last", || ops::softmax_last(&x));
}

#[test]
fn log_softmax_last_is_bit_identical_across_pool_sizes() {
    let x = input(&[7, 13], 0.31);
    assert_thread_parity("log_softmax_last", || ops::log_softmax_last(&x));
}

#[test]
fn elementwise_unaries_are_bit_identical_across_pool_sizes() {
    let x = input(&[5, 9, 4], 0.17);
    assert_thread_parity("gelu", || ops::gelu(&x));
    assert_thread_parity("exp", || ops::exp(&x));
    assert_thread_parity("sigmoid", || ops::sigmoid(&x));
    assert_thread_parity("scale", || ops::scale(&x, 1.7));
}

#[test]
fn elementwise_binaries_are_bit_identical_across_pool_sizes() {
    let a = input(&[5, 9, 4], 0.11);
    let b = input(&[5, 9, 4], 0.23);
    assert_thread_parity("add", || ops::add(&a, &b));
    assert_thread_parity("mul", || ops::mul(&a, &b));
    assert_thread_parity("div", || {
        let b1 = ops::add_scalar(&ops::sigmoid(&b), 1.0); // keep denominators away from 0
        ops::div(&a, &b1)
    });
    assert_thread_parity("gelu_backward", || ops::gelu_backward(&a, &b));
}

#[test]
fn reductions_are_bit_identical_across_pool_sizes() {
    let x = input(&[6, 7, 5], 0.19);
    for axis in 0..3 {
        assert_thread_parity("sum_axis", || ops::sum_axis(&x, axis, false));
        assert_thread_parity("max_axis", || ops::max_axis(&x, axis, true));
    }
}

#[test]
fn im2col_is_bit_identical_across_pool_sizes() {
    let x = input(&[4, 3, 8, 8], 0.37);
    let spec = ops::Conv2dSpec::new(3, 1, 1);
    assert_thread_parity("im2col", || ops::im2col(&x, &spec));
}

#[test]
fn layer_norm_is_bit_identical_across_pool_sizes() {
    let x = input(&[9, 12], 0.41);
    let gamma = input(&[12], 0.05);
    let beta = input(&[12], 0.03);
    assert_thread_parity("layer_norm.out", || ops::layer_norm_forward(&x, &gamma, &beta, 1e-5).0);
    assert_thread_parity("layer_norm.mean", || ops::layer_norm_forward(&x, &gamma, &beta, 1e-5).1);
    assert_thread_parity("layer_norm.rstd", || ops::layer_norm_forward(&x, &gamma, &beta, 1e-5).2);
}

#[test]
fn attention_forward_is_bit_identical_across_pool_sizes() {
    let q = input(&[2, 2, 6, 4], 0.13);
    let k = input(&[2, 2, 5, 4], 0.17);
    let v = input(&[2, 2, 5, 3], 0.19);
    assert_thread_parity("attention", || ops::attention(&q, &k, &v, 0.5));
}

#[test]
fn attention_backward_is_bit_identical_across_pool_sizes() {
    let q = input(&[3, 4, 4], 0.13);
    let k = input(&[3, 5, 4], 0.17);
    let v = input(&[3, 5, 3], 0.19);
    let g = input(&[3, 4, 3], 0.23);
    assert_thread_parity("attention_backward.dq", || {
        ops::attention_backward(&q, &k, &v, 0.5, &g).0
    });
    assert_thread_parity("attention_backward.dk", || {
        ops::attention_backward(&q, &k, &v, 0.5, &g).1
    });
    assert_thread_parity("attention_backward.dv", || {
        ops::attention_backward(&q, &k, &v, 0.5, &g).2
    });
}

#[test]
fn gradcheck_through_fused_attention_op() {
    let q = Tensor::from_fn(&[2, 3, 4], |i| (i as f32 * 0.23).sin() * 0.5);
    let k = Tensor::from_fn(&[2, 5, 4], |i| (i as f32 * 0.19).cos() * 0.5);
    let v = Tensor::from_fn(&[2, 5, 3], |i| (i as f32 * 0.31).sin() * 0.5);
    grad_check::assert_gradients(&[q, k, v], 1e-2, 2e-2, |g, vars| {
        let ctx = g.attention(vars[0], vars[1], vars[2], 0.7);
        let sq = g.mul(ctx, ctx); // non-uniform upstream gradient
        g.mean_all(sq)
    });
}

/// Strategy: (q, k, v) with a shared batch/feature geometry.
fn qkv() -> impl Strategy<Value = (Tensor, Tensor, Tensor)> {
    ((1usize..=3, 1usize..=4), (1usize..=4, 1usize..=4), 1usize..=4).prop_flat_map(
        |((b, tq), (tk, d), dv)| {
            let t = move |n: usize, shape: Vec<usize>| {
                prop::collection::vec(-3.0f32..3.0, n..=n)
                    .prop_map(move |data| Tensor::from_vec(data, &shape))
            };
            (
                t(b * tq * d, vec![b, tq, d]),
                t(b * tk * d, vec![b, tk, d]),
                t(b * tk * dv, vec![b, tk, dv]),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The fused kernel must agree with the composed
    // matmul/scale/softmax/matmul path to within 1e-5 for arbitrary
    // geometry and values.
    #[test]
    fn fused_attention_matches_composed((q, k, v) in qkv()) {
        let d = *q.shape().last().unwrap();
        let scale = 1.0 / (d as f32).sqrt();
        let fused = ops::attention(&q, &k, &v, scale);
        let kt = ops::transpose_last2(&k);
        let scores = ops::scale(&ops::matmul(&q, &kt), scale);
        let probs = ops::softmax_last(&scores);
        let composed = ops::matmul(&probs, &v);
        prop_assert!(
            fused.allclose(&composed, 1e-5),
            "fused and composed attention diverged"
        );
    }

    // Fused-vs-composed must also hold under forced pool chunking.
    #[test]
    fn fused_attention_matches_composed_when_chunked((q, k, v) in qkv()) {
        let scale = 0.6;
        let serial = pool::with_forced_threads(1, || ops::attention(&q, &k, &v, scale));
        let chunked = pool::with_forced_threads(3, || ops::attention(&q, &k, &v, scale));
        prop_assert_eq!(serial.to_vec(), chunked.to_vec());
    }
}
