//! Property-based tests of the int8 quantization plane ([`tsdx_tensor::quant`]).
//!
//! Three contracts are pinned:
//!
//! 1. **Round-trip**: `dequantize(quantize(w))` is within half a
//!    quantization step of `w` per element, per channel — including
//!    channels with wildly different ranges and the degenerate all-zero /
//!    single-repeated-value channels.
//! 2. **Accuracy**: the i8 GEMM agrees with dequantize-then-f32-GEMM up to
//!    the analytic activation-quantization bound
//!    `0.5 · sa[i] · Σ_k |w_dq[k, j]|` (plus f32 accumulation slack), for
//!    contiguous and transposed views alike.
//! 3. **Determinism**: results are bit-identical across pool sizes {1, 2}
//!    and between the scalar reference and the AVX2 kernels — the
//!    exact-i32-accumulation argument, checked rather than trusted.

use proptest::prelude::*;
use tsdx_tensor::quant::{with_forced_scalar, QuantMatrix};
use tsdx_tensor::{ops, pool, quant, Tensor};

/// Strategy: a `[k, n]` weight matrix whose channels span random
/// per-channel ranges (each column gets its own magnitude in
/// `[1e-3, 1e3]`), with a chance of degenerate all-zero and
/// single-repeated-value channels mixed in.
fn arb_weights() -> impl Strategy<Value = Tensor> {
    (2usize..24, 1usize..26, 0u64..1_000_000).prop_map(|(k, n, seed)| {
        Tensor::from_fn(&[k, n], move |i| {
            let j = i % n;
            let kk = i / n;
            // Per-channel deterministic "random" magnitude and values.
            let h = |x: u64| (x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed)) >> 33;
            match h(j as u64) % 7 {
                0 => 0.0,                                       // all-zero channel
                1 => (h(j as u64 + 1) % 19) as f32 * 0.3 - 2.7, // constant channel
                _ => {
                    let mag = 10f32.powi((h(j as u64 + 2) % 7) as i32 - 3);
                    let v = (h((kk * n + j) as u64) % 509) as f32 - 254.0;
                    v / 254.0 * mag
                }
            }
        })
    })
}

/// The analytic agreement bound between `linear_q8(a, q)` and
/// `a @ q.dequantize()`: activation rows quantize with error at most half
/// their scale per element, amplified by the dequantized column's absolute
/// sum, plus slack for the f32 reference's own accumulation rounding.
fn agreement_bound(a: &Tensor, wdq: &Tensor, i: usize, j: usize, reference: f32) -> f32 {
    let k = wdq.shape()[0];
    let row = &a.to_vec()[i * k..(i + 1) * k];
    let amax = row.iter().fold(0f32, |x, &v| x.max(v.abs()));
    let sa = amax / 127.0;
    let colabs: f32 = (0..k).map(|kk| wdq.at(&[kk, j]).abs()).sum();
    0.5 * sa * colabs + 1e-4 * (1.0 + reference.abs())
}

proptest! {
    #[test]
    fn roundtrip_error_is_within_half_a_step_per_channel(w in arb_weights()) {
        let q = QuantMatrix::quantize(&w);
        let dq = q.dequantize();
        let (k, n) = (w.shape()[0], w.shape()[1]);
        for j in 0..n {
            let s = q.scales()[j];
            // Half a step, with relative slack for the scale's own f32
            // rounding (scale = amax / 127 is not exact).
            let bound = s * (0.5 + 1e-4) + 1e-6;
            for kk in 0..k {
                let err = (w.at(&[kk, j]) - dq.at(&[kk, j])).abs();
                prop_assert!(err <= bound, "channel {j}: err {err} > {bound} (scale {s})");
            }
        }
        prop_assert!(q.error_bound() >= q.scales().iter().fold(0f32, |a, &s| a.max(s)) / 2.0);
    }

    #[test]
    fn degenerate_channels_reconstruct_exactly(k in 1usize..20, v in -4.0f32..4.0) {
        // Column 0 all zero, column 1 a single repeated value: the zero
        // channel must reconstruct as exact zeros (scale 0 by convention),
        // the constant channel quantizes to ±127 and reconstructs to
        // within f32 rounding of the original value.
        let w = Tensor::from_fn(&[k, 2], move |i| if i % 2 == 0 { 0.0 } else { v });
        let q = QuantMatrix::quantize(&w);
        prop_assert_eq!(q.scales()[0], 0.0);
        let dq = q.dequantize();
        for kk in 0..k {
            prop_assert_eq!(dq.at(&[kk, 0]), 0.0);
            let err = (dq.at(&[kk, 1]) - v).abs();
            prop_assert!(err <= 1e-5 * v.abs(), "constant channel err {err} for v {v}");
        }
    }

    #[test]
    fn i8_gemm_matches_f32_gemm_within_activation_bound(
        w in arb_weights(),
        ms in 1usize..20,
        seed in 0u64..1_000_000,
    ) {
        let (k, n) = (w.shape()[0], w.shape()[1]);
        let a = Tensor::from_fn(&[ms, k], move |i| {
            let h = (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(seed) >> 32;
            ((h % 1021) as f32 - 510.0) / 97.0
        });
        let q = QuantMatrix::quantize(&w);
        let wdq = q.dequantize();
        let reference = ops::matmul(&a, &wdq);
        let approx = quant::matmul_q8(&a, &q);
        prop_assert_eq!(approx.shape(), &[ms, n]);
        for i in 0..ms {
            for j in 0..n {
                let (r, x) = (reference.at(&[i, j]), approx.at(&[i, j]));
                let bound = agreement_bound(&a, &wdq, i, j, r);
                prop_assert!((r - x).abs() <= bound, "({i},{j}): |{r} - {x}| > {bound}");
            }
        }
    }

    #[test]
    fn transposed_views_quantize_and_multiply_like_contiguous(
        k in 2usize..16,
        n in 1usize..20,
        ms in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        // Quantization reads weight views through their strides; the GEMM
        // materializes activation views. Both must agree bit for bit with
        // their contiguous counterparts.
        let wt = Tensor::from_fn(&[n, k], move |i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed) >> 33;
            ((h % 255) as f32 - 127.0) / 41.0
        });
        let w_view = ops::permute(&wt, &[1, 0]); // [k, n] transposed view
        let q_view = QuantMatrix::quantize(&w_view);
        let q_contig = QuantMatrix::quantize(&w_view.contiguous());
        let (dq_view, dq_contig) = (q_view.dequantize(), q_contig.dequantize());
        prop_assert_eq!(dq_view.data(), dq_contig.data());
        prop_assert_eq!(q_view.scales(), q_contig.scales());

        let at = Tensor::from_fn(&[k, ms], move |i| {
            let h = (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(seed) >> 32;
            ((h % 509) as f32 - 254.0) / 63.0
        });
        let a_view = ops::permute(&at, &[1, 0]); // [ms, k] transposed view
        let from_view = quant::matmul_q8(&a_view, &q_view);
        let from_contig = quant::matmul_q8(&a_view.contiguous(), &q_contig);
        prop_assert_eq!(from_view.data(), from_contig.data());
    }

    #[test]
    fn bit_identical_across_pool_sizes_and_kernels(
        w in arb_weights(),
        bias_on in any::<bool>(),
    ) {
        let k = w.shape()[0];
        let n = w.shape()[1];
        let q = QuantMatrix::quantize(&w);
        let a = Tensor::from_fn(&[13, k], |i| ((i % 83) as f32 - 41.0) / 17.0);
        let bias = bias_on.then(|| Tensor::from_fn(&[n], |i| i as f32 * 0.03 - 0.2));
        // Serial, chunked (forced 2-thread pool bypasses the serial
        // threshold, so even tiny products exercise the chunked path),
        // and scalar-kernel runs must agree bit for bit.
        let serial = pool::with_forced_threads(1, || quant::linear_q8(&a, &q, bias.as_ref()));
        let pooled = pool::with_forced_threads(2, || quant::linear_q8(&a, &q, bias.as_ref()));
        let scalar = with_forced_scalar(true, || quant::linear_q8(&a, &q, bias.as_ref()));
        let s = serial.data();
        prop_assert_eq!(s.len(), pooled.data().len());
        for (i, (x, y)) in s.iter().zip(pooled.data()).enumerate() {
            prop_assert!(x.to_bits() == y.to_bits(), "pool diverged at {i}: {x} vs {y}");
        }
        for (i, (x, y)) in s.iter().zip(scalar.data()).enumerate() {
            prop_assert!(x.to_bits() == y.to_bits(), "scalar diverged at {i}: {x} vs {y}");
        }
    }
    #[test]
    fn batched_and_flat_inputs_agree_bitwise(w in arb_weights(), half in 1usize..8) {
        let k = w.shape()[0];
        let q = QuantMatrix::quantize(&w);
        let a = Tensor::from_fn(&[2 * half, k], |i| ((i % 53) as f32 - 26.0) / 9.0);
        let batched = a.reshape(&[2, half, k]);
        let out = quant::matmul_q8(&batched, &q);
        prop_assert_eq!(out.shape(), &[2, half, q.n()]);
        let flat = quant::matmul_q8(&a, &q);
        prop_assert_eq!(out.data(), flat.data());
    }
}
