//! Bit-parity of the packed-panel GEMM against the pre-packing kernels.
//!
//! The packed path (`ops::matmul` on large problems) gathers both operands
//! into contiguous panels through their strides, so it must produce the
//! same bits as the register-tiled SAXPY kernel (`ops::matmul_unpacked` on
//! contiguous operands) for every view: transposed, narrowed, offset,
//! batch-broadcast. The micro-kernel accumulates each output element in a
//! single f32 in ascending-k order — exactly like SAXPY — which is what
//! makes bit equality (not just allclose) the right assertion.
//!
//! Sizes here are chosen to clear the packing thresholds
//! (`k*n >= 32768` B elements, `m*n*k >= 2^20` madds); smaller problems
//! take the unpacked kernels and are covered by `proptest_ops.rs`.

use proptest::prelude::*;
use tsdx_tensor::{ops, Tensor};

/// Deterministic pseudo-random fill, cheap enough for million-element
/// operands inside a proptest case.
fn fill(shape: &[usize], seed: u32) -> Tensor {
    Tensor::from_fn(shape, |i| {
        let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed.wrapping_mul(40503));
        ((h >> 16) as f32 / 65536.0) - 0.5
    })
}

/// Asserts `ops::matmul` (packed path) returns bit-identical results to the
/// PR 2 SAXPY kernel run on contiguous copies of the same operands.
fn assert_packed_parity(a: &Tensor, b: &Tensor) {
    let reference = ops::matmul_unpacked(&a.contiguous(), &b.contiguous(), 1);
    for threads in [1usize, 2] {
        let packed = ops::matmul_with_threads(a, b, threads);
        assert_eq!(packed.shape(), reference.shape());
        let (p, r) = (packed.to_vec(), reference.to_vec());
        for (i, (x, y)) in p.iter().zip(&r).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "packed GEMM diverged from SAXPY at flat index {i} \
                 ({x} vs {y}, threads={threads}, {:?} @ {:?})",
                a.shape(),
                b.shape()
            );
        }
    }
}

#[test]
fn contiguous_operands_match() {
    let a = fill(&[48, 160], 1);
    let b = fill(&[160, 256], 2);
    assert_packed_parity(&a, &b);
}

#[test]
fn transposed_b_view_matches() {
    // B arrives as a zero-copy transpose view: column-major strides.
    let bt = fill(&[256, 160], 3);
    let b = ops::transpose_last2(&bt);
    let a = fill(&[48, 160], 4);
    assert_packed_parity(&a, &b);
}

#[test]
fn transposed_a_view_matches() {
    let at = fill(&[160, 48], 5);
    let a = ops::transpose_last2(&at);
    let b = fill(&[160, 256], 6);
    assert_packed_parity(&a, &b);
}

#[test]
fn narrowed_views_match() {
    // Both operands are interior windows of larger buffers: non-zero
    // offset, row stride wider than the row length.
    let big_a = fill(&[64, 200], 7);
    let big_b = fill(&[200, 300], 8);
    let a = ops::narrow(&ops::narrow(&big_a, 0, 9, 48), 1, 17, 160);
    let b = ops::narrow(&ops::narrow(&big_b, 0, 17, 160), 1, 23, 256);
    assert_packed_parity(&a, &b);
}

#[test]
fn batched_with_shared_b_matches() {
    // [4, 40, 160] @ [160, 256]: every batch element reuses one packed B.
    let a = fill(&[4, 40, 160], 9);
    let b = fill(&[160, 256], 10);
    assert_packed_parity(&a, &b);
}

#[test]
fn batched_with_permuted_batch_matches() {
    // The batch axis of A is itself a permuted view.
    let a0 = fill(&[40, 3, 160], 11);
    let a = ops::permute(&a0, &[1, 0, 2]);
    let b = fill(&[3, 160, 256], 12);
    assert_packed_parity(&a, &b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Random geometry above the packing thresholds, with both operands
    // narrowed out of larger buffers so strides and offsets vary too.
    #[test]
    fn random_strided_views_match(
        m in 33usize..64,
        k in 128usize..160,
        n in 256usize..288,
        ao in 0usize..8,
        bo in 0usize..8,
        seed in 0u32..1000,
    ) {
        // k >= 128 and n >= 256 keep k*n above the 32768-element packing
        // threshold for every sampled geometry.
        let big_a = fill(&[m + 8, k + 8], seed);
        let big_b = fill(&[k + 8, n + 8], seed ^ 0xdead);
        let a = ops::narrow(&ops::narrow(&big_a, 0, ao, m), 1, bo, k);
        let b = ops::narrow(&ops::narrow(&big_b, 0, bo, k), 1, ao, n);
        assert_packed_parity(&a, &b);
    }
}
