//! Property-based tests of tensor-op algebraic invariants.

use proptest::prelude::*;
use tsdx_tensor::{ops, shape, Tensor};

/// Strategy: a small shape with 1-3 dims of extent 1-4.
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=4, 1..=3)
}

/// Strategy: a tensor of the given shape with bounded finite values.
fn tensor_of(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n = shape::numel(&shape);
    prop::collection::vec(-10.0f32..10.0, n..=n)
        .prop_map(move |data| Tensor::from_vec(data, &shape))
}

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(tensor_of)
}

proptest! {
    #[test]
    fn add_commutes(t in arb_tensor()) {
        let u = t.map(|x| x * 0.5 + 1.0);
        prop_assert!(ops::add(&t, &u).allclose(&ops::add(&u, &t), 1e-6));
    }

    #[test]
    fn add_zero_is_identity(t in arb_tensor()) {
        let z = Tensor::zeros(t.shape());
        prop_assert!(ops::add(&t, &z).allclose(&t, 0.0));
    }

    #[test]
    fn mul_by_one_is_identity(t in arb_tensor()) {
        prop_assert!(ops::mul(&t, &Tensor::scalar(1.0)).allclose(&t, 0.0));
    }

    #[test]
    fn neg_is_involutive(t in arb_tensor()) {
        prop_assert!(ops::neg(&ops::neg(&t)).allclose(&t, 0.0));
    }

    #[test]
    fn reshape_preserves_data(t in arb_tensor()) {
        let flat = t.reshape(&[t.numel()]);
        prop_assert_eq!(flat.data(), t.data());
    }

    #[test]
    fn permute_preserves_multiset(t in arb_tensor()) {
        let rank = t.rank();
        let mut perm: Vec<usize> = (0..rank).collect();
        perm.reverse();
        let p = ops::permute(&t, &perm);
        let mut a: Vec<f32> = t.to_vec();
        let mut b: Vec<f32> = p.to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn permute_roundtrips(t in arb_tensor()) {
        let rank = t.rank();
        let mut perm: Vec<usize> = (0..rank).collect();
        perm.rotate_left(1);
        let mut inv = vec![0usize; rank];
        for (i, &p) in perm.iter().enumerate() { inv[p] = i; }
        let back = ops::permute(&ops::permute(&t, &perm), &inv);
        prop_assert!(back.allclose(&t, 0.0));
    }

    #[test]
    fn softmax_rows_are_distributions(t in arb_tensor()) {
        let s = ops::softmax_last(&t);
        let d = *t.shape().last().unwrap();
        for row in s.data().chunks(d) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn sum_axis_totals_match_sum_all(t in arb_tensor()) {
        for axis in 0..t.rank() {
            let s = ops::sum_axis(&t, axis, false);
            prop_assert!((s.sum() - t.sum()).abs() < 1e-3 * (1.0 + t.sum().abs()));
        }
    }

    #[test]
    fn unbroadcast_inverts_broadcast_total(t in arb_tensor()) {
        // Broadcasting t against ones of a larger shape then unbroadcasting
        // preserves totals scaled by the expansion factor.
        let mut big_shape = vec![3usize];
        big_shape.extend_from_slice(t.shape());
        let ones = Tensor::ones(&big_shape);
        let expanded = ops::mul(&ones, &t);
        let back = ops::unbroadcast(&expanded, t.shape());
        let expected = ops::scale(&t, 3.0);
        prop_assert!(back.allclose(&expected, 1e-4));
    }

    #[test]
    fn matmul_identity(n in 1usize..5, seed in 0u32..1000) {
        let a = Tensor::from_fn(&[n, n], |i| ((i as u32).wrapping_mul(seed + 1) % 17) as f32 - 8.0);
        let eye = Tensor::from_fn(&[n, n], |i| if i / n == i % n { 1.0 } else { 0.0 });
        prop_assert!(ops::matmul(&a, &eye).allclose(&a, 1e-5));
        prop_assert!(ops::matmul(&eye, &a).allclose(&a, 1e-5));
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u32..500) {
        let f = |s: u32| Tensor::from_fn(&[3, 4], move |i| (((i as u32 + 1).wrapping_mul(s + 3)) % 13) as f32 * 0.1 - 0.6);
        let a = f(seed);
        let b = f(seed + 7);
        let c = Tensor::from_fn(&[4, 2], |i| ((i * 5 + 2) % 7) as f32 * 0.2 - 0.7);
        let lhs = ops::matmul(&ops::add(&a, &b), &c);
        let rhs = ops::add(&ops::matmul(&a, &c), &ops::matmul(&b, &c));
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn concat_then_narrow_recovers_parts(t in arb_tensor()) {
        let u = t.map(|x| x + 1.0);
        let c = ops::concat(&[&t, &u], 0);
        let t2 = ops::narrow(&c, 0, 0, t.shape()[0]);
        let u2 = ops::narrow(&c, 0, t.shape()[0], u.shape()[0]);
        prop_assert!(t2.allclose(&t, 0.0));
        prop_assert!(u2.allclose(&u, 0.0));
    }
}
