//! Tests for the extended op set: max pooling, padding, stack/split.

use tsdx_tensor::grad_check::assert_gradients;
use tsdx_tensor::{ops, Tensor};

#[test]
fn max_pool_picks_maxima_and_routes_gradients() {
    let img = Tensor::from_vec(
        vec![
            1.0, 2.0, 5.0, 4.0, //
            3.0, 0.0, 1.0, 2.0, //
            9.0, 1.0, 0.0, 0.0, //
            1.0, 1.0, 0.0, 7.0,
        ],
        &[1, 1, 4, 4],
    );
    let (pooled, argmax) = ops::max_pool2d(&img, 2);
    assert_eq!(pooled.data(), &[3.0, 5.0, 9.0, 7.0]);
    // Backward: each gradient lands exactly on its argmax.
    let grad = Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[1, 1, 2, 2]);
    let back = ops::max_pool2d_backward(&grad, &argmax, 16);
    assert_eq!(back.shape(), &[1, 1, 4, 4]);
    assert_eq!(back.at(&[0, 0, 1, 0]), 10.0); // 3.0 at (1,0)
    assert_eq!(back.at(&[0, 0, 0, 2]), 20.0); // 5.0 at (0,2)
    assert_eq!(back.at(&[0, 0, 2, 0]), 30.0); // 9.0 at (2,0)
    assert_eq!(back.at(&[0, 0, 3, 3]), 40.0); // 7.0 at (3,3)
    assert_eq!(back.sum(), 100.0);
}

#[test]
fn max_pool_gradcheck_through_graph() {
    // Distinct values avoid argmax ties that break numerical gradients.
    let x = Tensor::from_fn(&[1, 2, 4, 4], |i| ((i * 37 + 11) % 101) as f32 * 0.07);
    assert_gradients(&[x], 1e-3, 1e-2, |g, v| {
        let p = g.max_pool2d(v[0], 2);
        let sq = g.mul(p, p);
        g.sum_all(sq)
    });
}

#[test]
fn pad2d_zero_extends_borders() {
    let img = Tensor::ones(&[1, 1, 2, 2]);
    let p = ops::pad2d(&img, 1);
    assert_eq!(p.shape(), &[1, 1, 4, 4]);
    assert_eq!(p.sum(), 4.0);
    assert_eq!(p.at(&[0, 0, 0, 0]), 0.0);
    assert_eq!(p.at(&[0, 0, 1, 1]), 1.0);
    assert_eq!(p.at(&[0, 0, 2, 2]), 1.0);
    assert_eq!(p.at(&[0, 0, 3, 3]), 0.0);
}

#[test]
fn stack_creates_leading_axis() {
    let a = Tensor::arange(4).reshape(&[2, 2]);
    let b = a.map(|x| x + 10.0);
    let s = ops::stack(&[&a, &b]);
    assert_eq!(s.shape(), &[2, 2, 2]);
    assert_eq!(s.at(&[0, 1, 1]), 3.0);
    assert_eq!(s.at(&[1, 0, 0]), 10.0);
}

#[test]
fn split_inverts_equal_concat() {
    let a = Tensor::arange(6).reshape(&[2, 3]);
    let b = a.map(|x| x + 100.0);
    let joined = ops::concat(&[&a, &b], 0);
    let parts = ops::split(&joined, 0, 2);
    assert_eq!(parts.len(), 2);
    assert_eq!(parts[0], a);
    assert_eq!(parts[1], b);
    // Along the second axis too.
    let cols = ops::split(&a, 1, 3);
    assert_eq!(cols.len(), 3);
    assert_eq!(cols[1].to_vec(), vec![1.0, 4.0]);
}

#[test]
#[should_panic]
fn split_rejects_uneven_parts() {
    ops::split(&Tensor::zeros(&[2, 3]), 1, 2);
}

#[test]
#[should_panic]
fn stack_rejects_mismatched_shapes() {
    ops::stack(&[&Tensor::zeros(&[2]), &Tensor::zeros(&[3])]);
}
