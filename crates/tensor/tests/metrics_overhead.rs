//! Proof that the metrics layer is zero-cost when disabled.
//!
//! The claim (DESIGN.md §6.4): with no scope open and `TSDX_METRICS` unset,
//! every recording call is one branch on one static — no allocation, no
//! syscalls — so instrumenting the hot kernels costs less than 1% of a
//! training step. Two checks:
//!
//! 1. **Zero allocations**: a thread-local counting allocator observes no
//!    allocations across thousands of disabled recording calls.
//! 2. **<1% wall time**: (disabled ns per call) × (calls per matmul) must
//!    be under 1% of the matmul's own wall time. The per-call cost and the
//!    call count are measured, not assumed.
//!
//! This file holds exactly ONE test on purpose: it must be the only code in
//! its process, because a metrics scope opened by a concurrently running
//! test would globally arm the fast-path branch and invalidate both
//! measurements. Keep it that way.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

use tsdx_tensor::{metrics, ops, Tensor};

/// Delegates to the system allocator, counting allocations per thread.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `Cell` ops cannot allocate, so this does not recurse.
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

#[test]
fn disabled_path_allocates_nothing_and_costs_under_one_percent() {
    // Warm-up: the first recording call reads TSDX_METRICS (which may
    // allocate inside std::env) and the first matmul spins up the worker
    // pool; neither belongs to the steady state being measured.
    metrics::counter_add("test/warmup", 1);
    metrics::observe_ns("test/warmup", 1);
    drop(metrics::span("test/warmup"));
    let a = Tensor::from_fn(&[128, 128], |i| ((i * 31 % 17) as f32 - 8.0) / 8.0);
    std::hint::black_box(ops::matmul(&a, &a));

    // 1. Zero allocations across every disabled recording primitive.
    let before = allocs_on_this_thread();
    for i in 0..4_000u64 {
        metrics::counter_add("test/disabled/counter", i);
        metrics::observe_ns("test/disabled/hist", i);
        let _span = metrics::span("test/disabled/span");
        let r = metrics::stage("test/disabled/stage", || std::hint::black_box(i));
        std::hint::black_box(metrics::time("test/disabled/time", || r + 1));
    }
    assert_eq!(allocs_on_this_thread() - before, 0, "disabled metrics calls must not allocate");

    // 2. Per-call disabled cost, measured over a tight loop.
    const CALLS: u64 = 1_000_000;
    let t = Instant::now();
    for i in 0..CALLS {
        metrics::counter_add("test/disabled/counter", std::hint::black_box(i));
    }
    let ns_per_call = t.elapsed().as_nanos() as f64 / CALLS as f64;

    // Instrumentation call sites actually hit by one pooled matmul, counted
    // (not estimated) with the layer enabled.
    let calls_per_matmul = {
        let scope = metrics::scope();
        std::hint::black_box(ops::matmul(&a, &a));
        scope.snapshot().total_records()
    };
    assert!(calls_per_matmul >= 1, "the matmul path must be instrumented");

    // The matmul's own median wall time, disabled again after the scope
    // above dropped.
    let mut reps: Vec<u64> = (0..15)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(ops::matmul(&a, &a));
            t.elapsed().as_nanos() as u64
        })
        .collect();
    reps.sort_unstable();
    let matmul_ns = reps[reps.len() / 2] as f64;

    let overhead = ns_per_call * calls_per_matmul as f64 / matmul_ns;
    assert!(
        overhead < 0.01,
        "disabled instrumentation must stay under 1% of kernel time: \
         {ns_per_call:.2} ns/call x {calls_per_matmul} calls vs matmul {matmul_ns:.0} ns \
         = {:.3}%",
        overhead * 100.0
    );
}
