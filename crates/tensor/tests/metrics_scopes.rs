//! Integration tests for the scoped metrics layer: scope isolation under
//! real kernels, named pool instrumentation, and the guarantee that turning
//! metrics on never changes numerical results.
//!
//! The disabled-path cost proofs (zero allocations, <1% wall time) live in
//! `tests/metrics_overhead.rs`, which must own its whole process.

use tsdx_tensor::{metrics, ops, pool, Tensor};

#[test]
fn scopes_isolate_concurrent_matmuls() {
    // Each thread opens its own scope and runs a different number of
    // matmuls; every snapshot must count exactly its own thread's spans.
    let outer = metrics::scope();
    let handles: Vec<_> = (1..=4)
        .map(|reps| {
            std::thread::spawn(move || {
                let scope = metrics::scope();
                let a = Tensor::from_fn(&[24, 24], |i| (i % 13) as f32 / 13.0);
                for _ in 0..reps {
                    std::hint::black_box(ops::matmul(&a, &a));
                }
                (reps as u64, scope.snapshot().span("op/matmul").count)
            })
        })
        .collect();
    for h in handles {
        let (reps, seen) = h.join().unwrap();
        assert_eq!(seen, reps, "scope must count exactly its own thread's matmuls");
    }
    assert_eq!(
        outer.snapshot().span("op/matmul").count,
        0,
        "other threads' spans must not leak into this scope"
    );
}

#[test]
fn pool_dispatch_records_named_kernel_metrics() {
    let scope = metrics::scope();
    let a = Tensor::from_fn(&[96, 96], |i| (i % 7) as f32 / 7.0);
    let c = pool::with_forced_threads(4, || ops::matmul(&a, &a));
    std::hint::black_box(&c);
    let snap = scope.snapshot();
    assert!(snap.counter("pool/dispatch/matmul") >= 1, "dispatch counter missing:\n{snap}");
    assert!(snap.counter("pool/chunks/matmul") >= 2, "chunk counter missing:\n{snap}");
    let exec = &snap.hists["pool/exec/matmul"];
    let wait = &snap.hists["pool/queue_wait/matmul"];
    assert_eq!(exec.count, snap.counter("pool/chunks/matmul"), "one exec sample per chunk");
    assert_eq!(wait.count, exec.count, "one queue-wait sample per chunk");
    assert!(snap.span("op/matmul").count >= 1);
}

#[test]
fn inline_execution_records_no_pool_metrics() {
    let scope = metrics::scope();
    let a = Tensor::from_fn(&[16, 16], |i| i as f32);
    std::hint::black_box(pool::with_forced_threads(1, || ops::matmul(&a, &a)));
    let snap = scope.snapshot();
    assert_eq!(snap.counter("pool/dispatch/matmul"), 0, "inline path must not meter:\n{snap}");
    assert!(snap.span("op/matmul").count >= 1, "the op span still records inline");
}

/// Runs `f` once with a metrics scope open and once without, at the given
/// pool size, and asserts bit-identical outputs.
fn assert_parity(threads: usize, f: impl Fn() -> Tensor) {
    let plain = pool::with_forced_threads(threads, &f);
    let metered = {
        let _scope = metrics::scope();
        pool::with_forced_threads(threads, &f)
    };
    assert_eq!(
        plain.to_vec(),
        metered.to_vec(),
        "metrics collection changed results at pool size {threads}"
    );
    assert_eq!(plain.shape(), metered.shape());
}

#[test]
fn metrics_on_off_results_are_bit_identical() {
    let a = Tensor::from_fn(&[64, 48], |i| ((i * 31 % 17) as f32 - 8.0) / 8.0);
    let b = Tensor::from_fn(&[48, 80], |i| ((i * 7 % 23) as f32 - 11.0) / 11.0);
    let q = Tensor::from_fn(&[2, 4, 16, 8], |i| ((i * 13 % 29) as f32 - 14.0) / 14.0);
    for threads in [1, 4] {
        assert_parity(threads, || ops::matmul(&a, &b));
        assert_parity(threads, || ops::sum_axis(&a, 1, false));
        assert_parity(threads, || ops::attention(&q, &q, &q, 0.35));
        assert_parity(threads, || ops::softmax_last(&b));
    }
}
