//! Layer normalization forward kernel.

use crate::pool;
use crate::Tensor;

/// Layer-norm rows below this many elements stay on the calling thread.
const LAYERNORM_SERIAL_BELOW: usize = 1 << 14;

/// Normalizes `count` packed rows of width `d` starting at logical row
/// `first_row`, writing normalized values plus the per-row `mean`/`rstd`
/// statistics the backward pass reuses. Row-local accumulation order is the
/// shared determinism anchor for the serial and pooled paths.
fn layer_norm_rows(
    src: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [f32],
    means: &mut [f32],
    rstds: &mut [f32],
) {
    let d = gamma.len();
    for (r, (row, orow)) in src.chunks_exact(d).zip(out.chunks_exact_mut(d)).enumerate() {
        let mean: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let rstd = 1.0 / (var + eps).sqrt();
        means[r] = mean;
        rstds[r] = rstd;
        for (i, (o, &v)) in orow.iter_mut().zip(row).enumerate() {
            *o = (v - mean) * rstd * gamma[i] + beta[i];
        }
    }
}

/// Layer normalization over the last dimension with affine parameters.
///
/// Returns `(normalized, mean, rstd)` where `mean` and `rstd` are rank-1
/// tensors of length `rows` saved for the backward pass. Large inputs
/// partition their rows over the shared worker pool with bit-identical
/// results for every pool size.
///
/// # Panics
///
/// Panics unless `gamma` and `beta` are rank-1 of length `D`, the last
/// dimension of `x`.
pub fn layer_norm_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> (Tensor, Tensor, Tensor) {
    let _span = crate::metrics::span("op/layer_norm");
    let d = *x.shape().last().expect("layer_norm requires rank >= 1");
    assert_eq!(gamma.shape(), &[d], "gamma must be [D]");
    assert_eq!(beta.shape(), &[d], "beta must be [D]");
    let rows = x.numel() / d;
    let xc = x.contiguous(); // row kernel needs packed rows
    let gd = gamma.to_vec();
    let bd = beta.to_vec();

    if rows > 1 && pool::should_parallelize(xc.numel(), LAYERNORM_SERIAL_BELOW) {
        let xd = xc.raw_arc();
        let off = xc.offset();
        let threads = pool::num_threads().min(rows);
        let rows_per = rows.div_ceil(threads);
        let chunks = rows.div_ceil(rows_per);
        let gd = std::sync::Arc::new(gd);
        let bd = std::sync::Arc::new(bd);
        let parts = pool::map_chunks_named("layer_norm", chunks, move |c| {
            let first = c * rows_per;
            let count = rows_per.min(rows - first);
            let mut out = crate::workspace::take_zeroed(count * d);
            let mut means = crate::workspace::take_zeroed(count);
            let mut rstds = crate::workspace::take_zeroed(count);
            let src = &xd[off + first * d..off + (first + count) * d];
            layer_norm_rows(src, &gd, &bd, eps, &mut out, &mut means, &mut rstds);
            (out, means, rstds)
        });
        let mut out = crate::workspace::take_reserve(rows * d);
        let mut means = crate::workspace::take_reserve(rows);
        let mut rstds = crate::workspace::take_reserve(rows);
        for (o, m, r) in parts {
            out.extend_from_slice(&o);
            means.extend_from_slice(&m);
            rstds.extend_from_slice(&r);
            crate::workspace::give(o);
            crate::workspace::give(m);
            crate::workspace::give(r);
        }
        return (
            Tensor::from_vec(out, x.shape()),
            Tensor::from_vec(means, &[rows]),
            Tensor::from_vec(rstds, &[rows]),
        );
    }

    let mut out = crate::workspace::take_zeroed(rows * d);
    let mut means = crate::workspace::take_zeroed(rows);
    let mut rstds = crate::workspace::take_zeroed(rows);
    layer_norm_rows(xc.data(), &gd, &bd, eps, &mut out, &mut means, &mut rstds);
    (
        Tensor::from_vec(out, x.shape()),
        Tensor::from_vec(means, &[rows]),
        Tensor::from_vec(rstds, &[rows]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_normalized() {
        let x = Tensor::from_fn(&[3, 8], |i| (i as f32 * 0.37).sin() * 2.0);
        let gamma = Tensor::ones(&[8]);
        let beta = Tensor::zeros(&[8]);
        let (y, mean, rstd) = layer_norm_forward(&x, &gamma, &beta, 1e-5);
        assert_eq!(y.shape(), &[3, 8]);
        assert_eq!(mean.shape(), &[3]);
        assert_eq!(rstd.shape(), &[3]);
        for r in 0..3 {
            let row = &y.data()[r * 8..(r + 1) * 8];
            let m: f32 = row.iter().sum::<f32>() / 8.0;
            let v: f32 = row.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / 8.0;
            assert!(m.abs() < 1e-5, "row {r} mean {m}");
            assert!((v - 1.0).abs() < 1e-3, "row {r} var {v}");
        }
    }

    #[test]
    fn affine_params_apply() {
        let x = Tensor::from_fn(&[2, 4], |i| i as f32);
        let gamma = Tensor::full(&[4], 2.0);
        let beta = Tensor::full(&[4], 0.5);
        let (y, _, _) = layer_norm_forward(&x, &gamma, &beta, 1e-5);
        let ones = Tensor::ones(&[4]);
        let zeros = Tensor::zeros(&[4]);
        let (base, _, _) = layer_norm_forward(&x, &ones, &zeros, 1e-5);
        let expect = base.map(|v| v * 2.0 + 0.5);
        assert!(y.allclose(&expect, 1e-6));
    }
}
