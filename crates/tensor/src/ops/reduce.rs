//! Reductions and softmax-family operations.

use crate::Tensor;

/// Sum of all elements as a scalar tensor.
pub fn sum_all(a: &Tensor) -> Tensor {
    Tensor::scalar(a.sum())
}

/// Mean of all elements as a scalar tensor.
pub fn mean_all(a: &Tensor) -> Tensor {
    Tensor::scalar(a.mean())
}

/// Sums over dimension `axis`.
///
/// With `keepdim` the reduced dimension is retained with extent 1; otherwise
/// it is removed from the shape.
///
/// # Panics
///
/// Panics if `axis >= a.rank()`.
pub fn sum_axis(a: &Tensor, axis: usize, keepdim: bool) -> Tensor {
    reduce_axis(a, axis, keepdim, 0.0, |acc, x| acc + x)
}

/// Mean over dimension `axis`.
pub fn mean_axis(a: &Tensor, axis: usize, keepdim: bool) -> Tensor {
    let d = a.dim(axis) as f32;
    let summed = sum_axis(a, axis, keepdim);
    summed.map(|x| x / d)
}

/// Maximum over dimension `axis`.
pub fn max_axis(a: &Tensor, axis: usize, keepdim: bool) -> Tensor {
    reduce_axis(a, axis, keepdim, f32::NEG_INFINITY, f32::max)
}

fn reduce_axis(
    a: &Tensor,
    axis: usize,
    keepdim: bool,
    init: f32,
    f: impl Fn(f32, f32) -> f32,
) -> Tensor {
    assert!(axis < a.rank(), "axis {axis} out of range for rank {}", a.rank());
    let sh = a.shape();
    let rank = sh.len();
    let outer: usize = sh[..axis].iter().product();
    let d = sh[axis];
    let inner: usize = sh[axis + 1..].iter().product();
    let mut out = vec![init; outer * inner];

    if a.is_contiguous() {
        // Dense layout: slice-based outer/axis/inner kernel.
        let data = a.data();
        for o in 0..outer {
            for k in 0..d {
                let base = (o * d + k) * inner;
                let orow = &mut out[o * inner..(o + 1) * inner];
                for (ov, &x) in orow.iter_mut().zip(&data[base..base + inner]) {
                    *ov = f(*ov, x);
                }
            }
        }
    } else {
        // Strided view: walk the input odometer-style, accumulating into the
        // output slot whose coordinates drop the reduced axis (stride 0).
        let mut kept = sh.to_vec();
        kept[axis] = 1;
        let mut os = crate::shape::strides(&kept);
        os[axis] = 0;
        let strides = a.strides();
        let data = a.raw_data();
        let mut idx = vec![0usize; rank];
        let mut in_off = a.offset();
        let mut out_off = 0usize;
        for _ in 0..a.numel() {
            out[out_off] = f(out[out_off], data[in_off]);
            for dim in (0..rank).rev() {
                idx[dim] += 1;
                in_off += strides[dim];
                out_off += os[dim];
                if idx[dim] < sh[dim] {
                    break;
                }
                in_off -= strides[dim] * sh[dim];
                out_off -= os[dim] * sh[dim];
                idx[dim] = 0;
            }
        }
    }

    let mut out_shape: Vec<usize> = sh.to_vec();
    if keepdim {
        out_shape[axis] = 1;
    } else {
        out_shape.remove(axis);
    }
    Tensor::from_vec(out, &out_shape)
}

/// Index of the maximum along the last dimension.
///
/// Returns a tensor shaped like `a` without its last dimension, holding the
/// winning indices as `f32` values (ties break toward the lower index).
///
/// # Panics
///
/// Panics on rank-0 input or an empty last dimension.
pub fn argmax_last(a: &Tensor) -> Tensor {
    assert!(a.rank() >= 1, "argmax_last requires rank >= 1");
    let d = *a.shape().last().expect("non-empty shape");
    assert!(d > 0, "argmax_last over empty dimension");
    let rows = a.numel() / d;
    let a = a.contiguous(); // the row kernel needs packed rows
    let data = a.data();
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &data[r * d..(r + 1) * d];
        let mut best = 0usize;
        for (i, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = i;
            }
        }
        out.push(best as f32);
    }
    Tensor::from_vec(out, &a.shape()[..a.rank() - 1])
}

/// Numerically-stable softmax over the last dimension.
pub fn softmax_last(a: &Tensor) -> Tensor {
    let d = *a.shape().last().expect("softmax_last requires rank >= 1");
    let rows = a.numel() / d;
    let a = a.contiguous(); // the row kernel needs packed rows
    let data = a.data();
    let mut out = Vec::with_capacity(a.numel());
    for r in 0..rows {
        let row = &data[r * d..(r + 1) * d];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        let start = out.len();
        for &x in row {
            let e = (x - m).exp();
            denom += e;
            out.push(e);
        }
        for v in &mut out[start..] {
            *v /= denom;
        }
    }
    Tensor::from_vec(out, a.shape())
}

/// Numerically-stable log-softmax over the last dimension.
pub fn log_softmax_last(a: &Tensor) -> Tensor {
    let d = *a.shape().last().expect("log_softmax_last requires rank >= 1");
    let rows = a.numel() / d;
    let a = a.contiguous(); // the row kernel needs packed rows
    let data = a.data();
    let mut out = Vec::with_capacity(a.numel());
    for r in 0..rows {
        let row = &data[r * d..(r + 1) * d];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        out.extend(row.iter().map(|&x| x - lse));
    }
    Tensor::from_vec(out, a.shape())
}

/// Backward rule for [`softmax_last`]: given saved output `y` and upstream
/// gradient `g`, returns `y * (g - sum(g*y, last))` row by row.
pub(crate) fn softmax_last_backward(y: &Tensor, g: &Tensor) -> Tensor {
    let d = *y.shape().last().expect("rank >= 1");
    let rows = y.numel() / d;
    let (y, g) = (y.contiguous(), g.contiguous());
    let yd = y.data();
    let gd = g.data();
    let mut out = Vec::with_capacity(y.numel());
    for r in 0..rows {
        let yr = &yd[r * d..(r + 1) * d];
        let gr = &gd[r * d..(r + 1) * d];
        let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
        out.extend(yr.iter().zip(gr).map(|(&yv, &gv)| yv * (gv - dot)));
    }
    Tensor::from_vec(out, y.shape())
}

/// Backward rule for [`log_softmax_last`]: `g - softmax(x) * sum(g, last)`,
/// where `y` is the saved log-softmax output.
pub(crate) fn log_softmax_last_backward(y: &Tensor, g: &Tensor) -> Tensor {
    let d = *y.shape().last().expect("rank >= 1");
    let rows = y.numel() / d;
    let (y, g) = (y.contiguous(), g.contiguous());
    let yd = y.data();
    let gd = g.data();
    let mut out = Vec::with_capacity(y.numel());
    for r in 0..rows {
        let yr = &yd[r * d..(r + 1) * d];
        let gr = &gd[r * d..(r + 1) * d];
        let gsum: f32 = gr.iter().sum();
        out.extend(yr.iter().zip(gr).map(|(&yv, &gv)| gv - yv.exp() * gsum));
    }
    Tensor::from_vec(out, y.shape())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean_axis() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let s0 = sum_axis(&t, 0, false);
        assert_eq!(s0.shape(), &[3]);
        assert_eq!(s0.data(), &[3.0, 5.0, 7.0]);
        let s1 = sum_axis(&t, 1, true);
        assert_eq!(s1.shape(), &[2, 1]);
        assert_eq!(s1.data(), &[3.0, 12.0]);
        let m1 = mean_axis(&t, 1, false);
        assert_eq!(m1.data(), &[1.0, 4.0]);
    }

    #[test]
    fn max_axis_picks_maxima() {
        let t = Tensor::from_vec(vec![1.0, 9.0, -3.0, 4.0, 0.0, 2.0], &[2, 3]);
        assert_eq!(max_axis(&t, 1, false).data(), &[9.0, 4.0]);
        assert_eq!(max_axis(&t, 0, false).data(), &[4.0, 9.0, 2.0]);
    }

    #[test]
    fn argmax_rows() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        let a = argmax_last(&t);
        assert_eq!(a.shape(), &[2]);
        assert_eq!(a.data(), &[1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_stable() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0, 999.0, -5.0, 0.0, 5.0], &[2, 3]);
        let s = softmax_last(&t);
        for r in 0..2 {
            let row: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((row - 1.0).abs() < 1e-5);
        }
        assert!(!s.has_non_finite());
        // Larger logit -> larger probability.
        assert!(s.at(&[0, 1]) > s.at(&[0, 0]));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]);
        let ls = log_softmax_last(&t);
        let s = softmax_last(&t);
        for i in 0..3 {
            assert!((ls.data()[i].exp() - s.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_numerical() {
        let x = Tensor::from_vec(vec![0.2, -0.5, 1.3, 0.0], &[1, 4]);
        let g = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[1, 4]);
        let y = softmax_last(&x);
        let analytic = softmax_last_backward(&y, &g);
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.data_mut()[i] += eps;
            xm.data_mut()[i] -= eps;
            let fp: f32 = softmax_last(&xp).data().iter().zip(g.data()).map(|(&a, &b)| a * b).sum();
            let fm: f32 = softmax_last(&xm).data().iter().zip(g.data()).map(|(&a, &b)| a * b).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - analytic.data()[i]).abs() < 1e-2);
        }
    }
}
