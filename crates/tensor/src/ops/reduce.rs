//! Reductions and softmax-family operations.
//!
//! Row-independent kernels (softmax, log-softmax, axis reductions over a
//! contiguous layout) partition their rows over the shared worker pool (see
//! [`crate::pool`]); every row is produced by exactly one chunk with the
//! serial accumulation order, so results are bit-identical for every pool
//! size. Small tensors and strided views stay on the calling thread.

use crate::fastmath;
use crate::pool;
use crate::Tensor;

/// Row kernels below this many elements stay serial — a softmax row costs
/// one exp per element, so pool dispatch pays off only on large batches.
const ROWWISE_SERIAL_BELOW: usize = 1 << 14;

/// Maximum of a row via four independent lanes. `f32::max` is associative
/// and commutative, so the lane split cannot change the result; it just
/// breaks the serial dependency chain.
#[inline]
pub(super) fn max4(xs: &[f32]) -> f32 {
    let c = xs.chunks_exact(4);
    let mut m = [f32::NEG_INFINITY; 4];
    let mut tail = f32::NEG_INFINITY;
    for &x in c.remainder() {
        tail = tail.max(x);
    }
    for x in c {
        m[0] = m[0].max(x[0]);
        m[1] = m[1].max(x[1]);
        m[2] = m[2].max(x[2]);
        m[3] = m[3].max(x[3]);
    }
    m[0].max(m[1]).max(m[2].max(m[3])).max(tail)
}

/// Sum of a row via four independent accumulator lanes. The lane assignment
/// depends only on element index, so the result is a fixed function of the
/// row — identical for every pool size and chunking.
#[inline]
pub(super) fn sum4(xs: &[f32]) -> f32 {
    let c = xs.chunks_exact(4);
    let mut acc = [0.0f32; 4];
    let mut tail = 0.0f32;
    for &x in c.remainder() {
        tail += x;
    }
    for x in c {
        acc[0] += x[0];
        acc[1] += x[1];
        acc[2] += x[2];
        acc[3] += x[3];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Sum of all elements as a scalar tensor.
pub fn sum_all(a: &Tensor) -> Tensor {
    Tensor::scalar(a.sum())
}

/// Mean of all elements as a scalar tensor.
pub fn mean_all(a: &Tensor) -> Tensor {
    Tensor::scalar(a.mean())
}

/// Sums over dimension `axis`.
///
/// With `keepdim` the reduced dimension is retained with extent 1; otherwise
/// it is removed from the shape.
///
/// # Panics
///
/// Panics if `axis >= a.rank()`.
pub fn sum_axis(a: &Tensor, axis: usize, keepdim: bool) -> Tensor {
    reduce_axis(a, axis, keepdim, 0.0, |acc, x| acc + x)
}

/// Mean over dimension `axis`.
pub fn mean_axis(a: &Tensor, axis: usize, keepdim: bool) -> Tensor {
    let d = a.dim(axis) as f32;
    let summed = sum_axis(a, axis, keepdim);
    summed.map(|x| x / d)
}

/// Maximum over dimension `axis`.
pub fn max_axis(a: &Tensor, axis: usize, keepdim: bool) -> Tensor {
    reduce_axis(a, axis, keepdim, f32::NEG_INFINITY, |acc, x| acc.max(x))
}

/// Reduces one `outer` slab (`count` outer indices starting at `first_o`)
/// of a contiguous `[outer, d, inner]` layout into `out`. Accumulation over
/// the reduced axis runs in ascending `k` order — the determinism anchor
/// shared by the serial and pooled paths.
fn reduce_outer_slab<F>(
    data: &[f32],
    out: &mut [f32],
    first_o: usize,
    d: usize,
    inner: usize,
    init: f32,
    f: F,
) where
    F: Fn(f32, f32) -> f32 + Copy,
{
    out.fill(init);
    let count = out.len() / inner.max(1);
    for c in 0..count {
        let o = first_o + c;
        for k in 0..d {
            let base = (o * d + k) * inner;
            let orow = &mut out[c * inner..(c + 1) * inner];
            for (ov, &x) in orow.iter_mut().zip(&data[base..base + inner]) {
                *ov = f(*ov, x);
            }
        }
    }
}

fn reduce_axis<F>(a: &Tensor, axis: usize, keepdim: bool, init: f32, f: F) -> Tensor
where
    F: Fn(f32, f32) -> f32 + Copy + Send + Sync + 'static,
{
    assert!(axis < a.rank(), "axis {axis} out of range for rank {}", a.rank());
    let sh = a.shape();
    let rank = sh.len();
    let outer: usize = sh[..axis].iter().product();
    let d = sh[axis];
    let inner: usize = sh[axis + 1..].iter().product();
    let mut out = vec![init; outer * inner];

    if a.is_contiguous() {
        if inner > 0 && outer > 1 && pool::should_parallelize(a.numel(), ROWWISE_SERIAL_BELOW) {
            // Dense layout, many independent outer slabs: partition them
            // over the pool.
            let ad = a.raw_arc();
            let off = a.offset();
            out = pool::parallel_rows_named(
                "reduce_axis",
                outer,
                inner,
                pool::num_threads(),
                move |first_o, buf| {
                    reduce_outer_slab(&ad[off..], buf, first_o, d, inner, init, f);
                },
            );
        } else {
            reduce_outer_slab(a.data(), &mut out, 0, d, inner, init, f);
        }
    } else {
        // Strided view: walk the input odometer-style, accumulating into the
        // output slot whose coordinates drop the reduced axis (stride 0).
        let mut kept = sh.to_vec();
        kept[axis] = 1;
        let mut os = crate::shape::strides(&kept);
        os[axis] = 0;
        let strides = a.strides();
        let data = a.raw_data();
        let mut idx = vec![0usize; rank];
        let mut in_off = a.offset();
        let mut out_off = 0usize;
        for _ in 0..a.numel() {
            out[out_off] = f(out[out_off], data[in_off]);
            for dim in (0..rank).rev() {
                idx[dim] += 1;
                in_off += strides[dim];
                out_off += os[dim];
                if idx[dim] < sh[dim] {
                    break;
                }
                in_off -= strides[dim] * sh[dim];
                out_off -= os[dim] * sh[dim];
                idx[dim] = 0;
            }
        }
    }

    let mut out_shape: Vec<usize> = sh.to_vec();
    if keepdim {
        out_shape[axis] = 1;
    } else {
        out_shape.remove(axis);
    }
    Tensor::from_vec(out, &out_shape)
}

/// Index of the maximum along the last dimension.
///
/// Returns a tensor shaped like `a` without its last dimension, holding the
/// winning indices as `f32` values (ties break toward the lower index).
///
/// # Panics
///
/// Panics on rank-0 input or an empty last dimension.
pub fn argmax_last(a: &Tensor) -> Tensor {
    assert!(a.rank() >= 1, "argmax_last requires rank >= 1");
    let d = *a.shape().last().expect("non-empty shape");
    assert!(d > 0, "argmax_last over empty dimension");
    let rows = a.numel() / d;
    let a = a.contiguous(); // the row kernel needs packed rows
    let data = a.data();
    let mut out = crate::workspace::take_reserve(rows);
    for r in 0..rows {
        let row = &data[r * d..(r + 1) * d];
        let mut best = 0usize;
        for (i, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = i;
            }
        }
        out.push(best as f32);
    }
    Tensor::from_vec(out, &a.shape()[..a.rank() - 1])
}

/// Softmax of packed rows: `out` and `src` hold the same whole rows of
/// width `d`.
fn softmax_rows(src: &[f32], out: &mut [f32], d: usize) {
    for (row, orow) in src.chunks_exact(d).zip(out.chunks_exact_mut(d)) {
        let m = max4(row);
        // Exponentiate in a dependency-free pass (vectorizable — `fastmath::
        // exp` is branchless), then reduce with lane accumulators.
        for (o, &x) in orow.iter_mut().zip(row) {
            *o = fastmath::exp(x - m);
        }
        let denom = sum4(orow);
        for v in orow.iter_mut() {
            *v /= denom;
        }
    }
}

/// Log-softmax of packed rows (layout as in [`softmax_rows`]).
fn log_softmax_rows(src: &[f32], out: &mut [f32], d: usize) {
    for (row, orow) in src.chunks_exact(d).zip(out.chunks_exact_mut(d)) {
        let m = max4(row);
        // Stage the exponentials in `orow` so the exp pass is dependency-free
        // (vectorizable); the lane-accumulated sum then reads them back.
        for (o, &x) in orow.iter_mut().zip(row) {
            *o = fastmath::exp(x - m);
        }
        let lse = m + sum4(orow).ln();
        for (o, &x) in orow.iter_mut().zip(row) {
            *o = x - lse;
        }
    }
}

/// Dispatches a packed-row kernel serially or over the worker pool. The row
/// kernel sees exactly the same `(src, out)` row slices either way, so the
/// result is bit-identical for every pool size.
fn rowwise(a: &Tensor, d: usize, kernel: fn(&[f32], &mut [f32], usize)) -> Tensor {
    let _span = crate::metrics::span("op/rowwise");
    let rows = a.numel() / d;
    let a = a.contiguous(); // the row kernels need packed rows
    if rows > 1 && pool::should_parallelize(a.numel(), ROWWISE_SERIAL_BELOW) {
        let ad = a.raw_arc();
        let off = a.offset();
        let out = pool::parallel_rows_named(
            "rowwise",
            rows,
            d,
            pool::num_threads(),
            move |first_row, out| {
                let src = &ad[off + first_row * d..off + first_row * d + out.len()];
                kernel(src, out, d);
            },
        );
        return Tensor::from_vec(out, a.shape());
    }
    // Both row kernels store every element of their rows.
    let mut out = crate::workspace::take_uninit(a.numel());
    kernel(a.data(), &mut out, d);
    Tensor::from_vec(out, a.shape())
}

/// Numerically-stable softmax over the last dimension.
pub fn softmax_last(a: &Tensor) -> Tensor {
    let d = *a.shape().last().expect("softmax_last requires rank >= 1");
    rowwise(a, d, softmax_rows)
}

/// Numerically-stable log-softmax over the last dimension.
pub fn log_softmax_last(a: &Tensor) -> Tensor {
    let d = *a.shape().last().expect("log_softmax_last requires rank >= 1");
    rowwise(a, d, log_softmax_rows)
}

/// Backward rule for [`softmax_last`]: given saved output `y` and upstream
/// gradient `g`, returns `y * (g - sum(g*y, last))` row by row.
pub(crate) fn softmax_last_backward(y: &Tensor, g: &Tensor) -> Tensor {
    let d = *y.shape().last().expect("rank >= 1");
    let rows = y.numel() / d;
    let (y, g) = (y.contiguous(), g.contiguous());
    let yd = y.data();
    let gd = g.data();
    let mut out = crate::workspace::take_reserve(y.numel());
    for r in 0..rows {
        let yr = &yd[r * d..(r + 1) * d];
        let gr = &gd[r * d..(r + 1) * d];
        let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
        out.extend(yr.iter().zip(gr).map(|(&yv, &gv)| yv * (gv - dot)));
    }
    Tensor::from_vec(out, y.shape())
}

/// Backward rule for [`log_softmax_last`]: `g - softmax(x) * sum(g, last)`,
/// where `y` is the saved log-softmax output.
pub(crate) fn log_softmax_last_backward(y: &Tensor, g: &Tensor) -> Tensor {
    let d = *y.shape().last().expect("rank >= 1");
    let rows = y.numel() / d;
    let (y, g) = (y.contiguous(), g.contiguous());
    let yd = y.data();
    let gd = g.data();
    let mut out = crate::workspace::take_reserve(y.numel());
    for r in 0..rows {
        let yr = &yd[r * d..(r + 1) * d];
        let gr = &gd[r * d..(r + 1) * d];
        let gsum: f32 = gr.iter().sum();
        out.extend(yr.iter().zip(gr).map(|(&yv, &gv)| gv - fastmath::exp(yv) * gsum));
    }
    Tensor::from_vec(out, y.shape())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean_axis() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let s0 = sum_axis(&t, 0, false);
        assert_eq!(s0.shape(), &[3]);
        assert_eq!(s0.data(), &[3.0, 5.0, 7.0]);
        let s1 = sum_axis(&t, 1, true);
        assert_eq!(s1.shape(), &[2, 1]);
        assert_eq!(s1.data(), &[3.0, 12.0]);
        let m1 = mean_axis(&t, 1, false);
        assert_eq!(m1.data(), &[1.0, 4.0]);
    }

    #[test]
    fn max_axis_picks_maxima() {
        let t = Tensor::from_vec(vec![1.0, 9.0, -3.0, 4.0, 0.0, 2.0], &[2, 3]);
        assert_eq!(max_axis(&t, 1, false).data(), &[9.0, 4.0]);
        assert_eq!(max_axis(&t, 0, false).data(), &[4.0, 9.0, 2.0]);
    }

    #[test]
    fn argmax_rows() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        let a = argmax_last(&t);
        assert_eq!(a.shape(), &[2]);
        assert_eq!(a.data(), &[1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_stable() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0, 999.0, -5.0, 0.0, 5.0], &[2, 3]);
        let s = softmax_last(&t);
        for r in 0..2 {
            let row: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((row - 1.0).abs() < 1e-5);
        }
        assert!(!s.has_non_finite());
        // Larger logit -> larger probability.
        assert!(s.at(&[0, 1]) > s.at(&[0, 0]));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]);
        let ls = log_softmax_last(&t);
        let s = softmax_last(&t);
        for i in 0..3 {
            assert!((ls.data()[i].exp() - s.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_numerical() {
        let x = Tensor::from_vec(vec![0.2, -0.5, 1.3, 0.0], &[1, 4]);
        let g = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[1, 4]);
        let y = softmax_last(&x);
        let analytic = softmax_last_backward(&y, &g);
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.data_mut()[i] += eps;
            xm.data_mut()[i] -= eps;
            let fp: f32 = softmax_last(&xp).data().iter().zip(g.data()).map(|(&a, &b)| a * b).sum();
            let fm: f32 = softmax_last(&xm).data().iter().zip(g.data()).map(|(&a, &b)| a * b).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - analytic.data()[i]).abs() < 1e-2);
        }
    }
}
