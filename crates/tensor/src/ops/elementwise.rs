//! Elementwise arithmetic and activation functions with NumPy broadcasting.
//!
//! The named entry points (`add`, `mul`, `exp`, `gelu`, …) pass their scalar
//! function as a `Copy` closure through generic dispatchers, so every op gets
//! its own monomorphized inner loop (no per-element indirection) on both the
//! serial path and the shared worker pool (see [`crate::pool`]) — a `Copy +
//! 'static` closure, unlike a borrowed one, can move into a pool job. Small
//! tensors, strided views, and broadcasts run on the calling thread.

use crate::fastmath;
use crate::pool;
use crate::shape;
use crate::Tensor;

/// Elementwise kernels with fewer elements than this stay serial: the work
/// per element is a handful of flops, so pool dispatch only pays off for
/// large tensors.
const ELEMWISE_SERIAL_BELOW: usize = 1 << 15;

/// Applies `f` elementwise, chunking large contiguous tensors over the
/// worker pool. Chunk boundaries cannot change any element's value (each
/// element is computed independently by the same scalar code), so results
/// are bit-identical for every pool size.
fn unary<F>(a: &Tensor, f: F) -> Tensor
where
    F: Fn(f32) -> f32 + Copy + Send + Sync + 'static,
{
    let _span = crate::metrics::span("op/elementwise");
    if a.is_contiguous() && pool::should_parallelize(a.numel(), ELEMWISE_SERIAL_BELOW) {
        let n = a.numel();
        let ad = a.raw_arc();
        let off = a.offset();
        let out = pool::parallel_rows_named(
            "elementwise",
            n,
            1,
            pool::num_threads(),
            move |first, out| {
                let src = &ad[off + first..off + first + out.len()];
                for (o, &x) in out.iter_mut().zip(src) {
                    *o = f(x);
                }
            },
        );
        Tensor::from_vec(out, a.shape())
    } else {
        a.map(f)
    }
}

/// Applies `f` over two operands, chunking the same-shape contiguous case
/// over the worker pool and deferring everything else (broadcasts, strided
/// views, small tensors) to the serial [`binary_broadcast`] engine.
fn binary<F>(a: &Tensor, b: &Tensor, f: F) -> Tensor
where
    F: Fn(f32, f32) -> f32 + Copy + Send + Sync + 'static,
{
    let _span = crate::metrics::span("op/elementwise");
    if a.shape() == b.shape()
        && a.is_contiguous()
        && b.is_contiguous()
        && pool::should_parallelize(a.numel(), ELEMWISE_SERIAL_BELOW)
    {
        let n = a.numel();
        let (ad, bd) = (a.raw_arc(), b.raw_arc());
        let (ao, bo) = (a.offset(), b.offset());
        let out = pool::parallel_rows_named(
            "elementwise",
            n,
            1,
            pool::num_threads(),
            move |first, out| {
                let xs = &ad[ao + first..ao + first + out.len()];
                let ys = &bd[bo + first..bo + first + out.len()];
                for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
                    *o = f(x, y);
                }
            },
        );
        return Tensor::from_vec(out, a.shape());
    }
    binary_broadcast(a, b, f)
}

/// Applies `f` elementwise over the broadcast of `a` and `b`.
///
/// This is the generic engine behind [`add`], [`sub`], [`mul`], and [`div`];
/// it is public so downstream crates can define their own broadcast kernels.
///
/// # Panics
///
/// Panics if the shapes do not broadcast together.
pub fn binary_broadcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    if a.shape() == b.shape() {
        return a.zip(b, f);
    }
    let out_shape = shape::broadcast(a.shape(), b.shape())
        .unwrap_or_else(|| panic!("shapes {:?} and {:?} do not broadcast", a.shape(), b.shape()));
    // Walk both operands through their *view* strides (0 on broadcast dims),
    // so strided views feed the kernel directly with no materialization.
    let sa = shape::broadcast_view_strides(a.shape(), a.strides(), &out_shape);
    let sb = shape::broadcast_view_strides(b.shape(), b.strides(), &out_shape);
    let n = shape::numel(&out_shape);
    let rank = out_shape.len();
    let ad = a.raw_data();
    let bd = b.raw_data();

    // Fast path: contiguous `a`, and `b` broadcasts along the last axis only
    // (bias-add pattern).
    let last = rank.saturating_sub(1);
    let contiguous_tail = rank > 0
        && a.shape() == out_shape.as_slice()
        && a.is_contiguous()
        && sb[..last].iter().all(|&s| s == 0)
        && sb[last] == 1
        && b.is_contiguous()
        && b.numel() == out_shape[last];
    if contiguous_tail {
        let d = out_shape[last];
        let a_flat = &ad[a.offset()..a.offset() + n];
        let b_flat = &bd[b.offset()..b.offset() + d];
        // Preallocated rows instead of per-element `push`: the zipped slice
        // loop has no capacity checks, so it vectorizes. Every element is
        // written, so recycled workspace contents are fine.
        let mut out = crate::workspace::take_uninit(n);
        for (orow, arow) in out.chunks_exact_mut(d).zip(a_flat.chunks_exact(d)) {
            for ((o, &x), &y) in orow.iter_mut().zip(arow).zip(b_flat) {
                *o = f(x, y);
            }
        }
        return Tensor::from_vec(out, &out_shape);
    }

    let mut out = crate::workspace::take_reserve(n);
    let mut ia = vec![0usize; rank];
    let mut offset_a = a.offset();
    let mut offset_b = b.offset();
    for _ in 0..n {
        out.push(f(ad[offset_a], bd[offset_b]));
        // Odometer increment, updating both offsets incrementally.
        for dim in (0..rank).rev() {
            ia[dim] += 1;
            offset_a += sa[dim];
            offset_b += sb[dim];
            if ia[dim] < out_shape[dim] {
                break;
            }
            offset_a -= sa[dim] * out_shape[dim];
            offset_b -= sb[dim] * out_shape[dim];
            ia[dim] = 0;
        }
    }
    Tensor::from_vec(out, &out_shape)
}

/// Broadcasting elementwise addition.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    binary(a, b, |x, y| x + y)
}

/// Elementwise in-place addition: `dst += rhs`, reusing `dst`'s buffer.
///
/// Shapes must match exactly — no broadcasting. When `dst` solely owns a
/// canonical buffer the sums land straight in it; a shared or strided `dst`
/// is first materialized by the copy-on-write machinery in
/// [`Tensor::data_mut`](crate::Tensor::data_mut). This is the autograd
/// accumulation fast path: a `+=` into an existing gradient costs zero
/// allocations instead of a fresh output tensor per contribution. Each
/// element is the same pairwise `f32` sum as [`add`] computes, so results
/// are bit-identical to the out-of-place op.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add_assign(dst: &mut Tensor, rhs: &Tensor) {
    assert_eq!(dst.shape(), rhs.shape(), "add_assign requires matching shapes");
    let _span = crate::metrics::span("op/elementwise");
    if rhs.is_contiguous() {
        let rd = rhs.raw_arc();
        let src = &rd[rhs.offset()..rhs.offset() + rhs.numel()];
        for (d, &x) in dst.data_mut().iter_mut().zip(src) {
            *d += x;
        }
    } else {
        // Strided `rhs`: walk it in row-major logical order, matching the
        // canonical layout `data_mut` guarantees for `dst`.
        for (d, x) in dst.data_mut().iter_mut().zip(rhs.iter_elems()) {
            *d += x;
        }
    }
}

/// Broadcasting elementwise subtraction.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    binary(a, b, |x, y| x - y)
}

/// Broadcasting elementwise multiplication.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    binary(a, b, |x, y| x * y)
}

/// Broadcasting elementwise division.
pub fn div(a: &Tensor, b: &Tensor) -> Tensor {
    binary(a, b, |x, y| x / y)
}

/// Multiplies every element by `c`.
pub fn scale(a: &Tensor, c: f32) -> Tensor {
    unary(a, move |x| x * c)
}

/// Adds `c` to every element.
pub fn add_scalar(a: &Tensor, c: f32) -> Tensor {
    unary(a, move |x| x + c)
}

/// Elementwise negation.
pub fn neg(a: &Tensor) -> Tensor {
    unary(a, |x| -x)
}

/// Elementwise natural exponential (via [`fastmath::exp`]).
pub fn exp(a: &Tensor) -> Tensor {
    unary(a, fastmath::exp)
}

/// Elementwise natural logarithm.
pub fn ln(a: &Tensor) -> Tensor {
    unary(a, |x| x.ln())
}

/// Elementwise square root.
pub fn sqrt(a: &Tensor) -> Tensor {
    unary(a, |x| x.sqrt())
}

/// Rectified linear unit: `max(x, 0)`.
pub fn relu(a: &Tensor) -> Tensor {
    unary(a, |x| x.max(0.0))
}

/// Gradient of [`relu`] given the op *input* and upstream gradient.
pub fn relu_backward(input: &Tensor, grad: &Tensor) -> Tensor {
    binary(input, grad, |x, g| if x > 0.0 { g } else { 0.0 })
}

/// Elementwise logistic sigmoid (via [`fastmath::sigmoid`]).
pub fn sigmoid(a: &Tensor) -> Tensor {
    unary(a, fastmath::sigmoid)
}

/// Elementwise hyperbolic tangent (via [`fastmath::tanh`]).
pub fn tanh(a: &Tensor) -> Tensor {
    unary(a, fastmath::tanh)
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

/// GELU activation (tanh approximation), as used in transformer MLPs.
pub fn gelu(a: &Tensor) -> Tensor {
    unary(a, |x| 0.5 * x * (1.0 + fastmath::tanh(GELU_C * (x + 0.044_715 * x * x * x))))
}

/// Gradient of [`gelu`] given the op *input* and upstream gradient.
pub fn gelu_backward(input: &Tensor, grad: &Tensor) -> Tensor {
    binary(input, grad, |x, g| {
        let u = GELU_C * (x + 0.044_715 * x * x * x);
        let t = fastmath::tanh(u);
        let du = GELU_C * (1.0 + 3.0 * 0.044_715 * x * x);
        g * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)
    })
}

/// Reduces `grad` (shaped like a broadcast result) back to `target_shape` by
/// summing over the dimensions that were expanded.
///
/// This is the adjoint of broadcasting and is used by every broadcasting
/// backward rule.
pub fn unbroadcast(grad: &Tensor, target_shape: &[usize]) -> Tensor {
    if grad.shape() == target_shape {
        return grad.clone();
    }
    let rank = grad.rank();
    let padded = shape::pad_rank(target_shape, rank);
    // Walk the (possibly non-contiguous) gradient through its view strides.
    let gs = grad.strides().to_vec();
    let n_out = shape::numel(&padded);
    let mut out = crate::workspace::take_zeroed(n_out);
    let ts = shape::strides(&padded);
    let gd = grad.raw_data();
    let gshape = grad.shape().to_vec();
    let mut idx = vec![0usize; rank];
    let mut goff = grad.offset();
    let mut toff = 0usize;
    // Map every grad element to its (possibly collapsed) target slot.
    for _ in 0..grad.numel() {
        out[toff] += gd[goff];
        for dim in (0..rank).rev() {
            idx[dim] += 1;
            goff += gs[dim];
            if padded[dim] != 1 {
                toff += ts[dim];
            }
            if idx[dim] < gshape[dim] {
                break;
            }
            goff -= gs[dim] * gshape[dim];
            if padded[dim] != 1 {
                toff -= ts[dim] * gshape[dim];
            }
            idx[dim] = 0;
        }
    }
    Tensor::from_vec(out, target_shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(add(&a, &b).data(), &[4.0, 7.0]);
    }

    #[test]
    fn bias_add_fast_path() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let c = add(&a, &b);
        assert_eq!(c.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn general_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]);
        let c = mul(&a, &b);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[10.0, 20.0, 30.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn scalar_broadcast() {
        let a = Tensor::arange(4).reshape(&[2, 2]);
        let s = Tensor::scalar(2.0);
        assert_eq!(mul(&a, &s).data(), &[0.0, 2.0, 4.0, 6.0]);
        assert_eq!(mul(&s, &a).data(), &[0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic]
    fn incompatible_shapes_panic() {
        add(&Tensor::zeros(&[2]), &Tensor::zeros(&[3]));
    }

    #[test]
    fn unbroadcast_sums_expanded_dims() {
        // grad of shape [2,3], original was [1,3] -> sum over rows
        let g = Tensor::arange(6).reshape(&[2, 3]);
        let r = unbroadcast(&g, &[1, 3]);
        assert_eq!(r.data(), &[3.0, 5.0, 7.0]);
        // original was [3] (rank padded) -> same sums
        let r2 = unbroadcast(&g, &[3]);
        assert_eq!(r2.data(), &[3.0, 5.0, 7.0]);
        // original was scalar
        let r3 = unbroadcast(&g, &[]);
        assert_eq!(r3.item(), 15.0);
        // original was [2,1]
        let r4 = unbroadcast(&g, &[2, 1]);
        assert_eq!(r4.data(), &[3.0, 12.0]);
    }

    #[test]
    fn activations_match_reference_values() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
        let s = sigmoid(&x);
        assert!((s.data()[0] - 0.268_941).abs() < 1e-5);
        assert!((s.data()[1] - 0.5).abs() < 1e-7);
        let g = gelu(&x);
        assert!((g.data()[0] - (-0.158_808)).abs() < 1e-4);
        assert!((g.data()[2] - 1.954_597).abs() < 1e-4);
    }

    #[test]
    fn gelu_backward_matches_numerical() {
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.7, 3.0], &[5]);
        let g1 = Tensor::ones(&[5]);
        let analytic = gelu_backward(&x, &g1);
        let eps = 1e-3;
        for i in 0..5 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.data_mut()[i] += eps;
            xm.data_mut()[i] -= eps;
            let num = (gelu(&xp).data()[i] - gelu(&xm).data()[i]) / (2.0 * eps);
            assert!(
                (num - analytic.data()[i]).abs() < 1e-3,
                "gelu grad mismatch at {i}: {num} vs {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn relu_backward_masks_negative_inputs() {
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2]);
        let g = Tensor::from_vec(vec![5.0, 5.0], &[2]);
        assert_eq!(relu_backward(&x, &g).data(), &[0.0, 5.0]);
    }
}
