//! Fused scaled-dot-product attention.
//!
//! Computes `softmax(scale * Q Kᵀ) V` one query row at a time: the score
//! vector for a row is O(Tk) scratch that never leaves the worker, so the
//! `[B, H, Tq, Tk]` probability tensor the composed path materializes (and
//! autograd additionally retains for backward) is never built. Backward
//! recomputes each row's probabilities from Q and K instead of loading them.

use crate::fastmath;
use crate::pool;
use crate::Tensor;

/// Attention problems below this many score elements (`batch * Tq * Tk`)
/// stay on the calling thread.
const ATTENTION_SERIAL_BELOW: usize = 1 << 14;

/// Dot product with four independent accumulators: breaking the serial
/// dependence on one running sum keeps the FMA pipeline full for the short
/// head-dim rows this kernel lives on. Every call site sums in this exact
/// order, serial and pooled alike, so chunking stays bit-identical.
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    for (x, y) in ca.zip(cb) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Validated geometry shared by forward and backward.
struct AttnDims {
    nb: usize,
    tq: usize,
    tk: usize,
    d: usize,
    dv: usize,
    out_shape: Vec<usize>,
}

fn attn_dims(q: &Tensor, k: &Tensor, v: &Tensor) -> AttnDims {
    let (qs, ks, vs) = (q.shape(), k.shape(), v.shape());
    assert!(qs.len() >= 2, "attention expects rank >= 2, got q {qs:?}");
    assert_eq!(qs.len(), ks.len(), "q/k rank mismatch: {qs:?} vs {ks:?}");
    assert_eq!(qs.len(), vs.len(), "q/v rank mismatch: {qs:?} vs {vs:?}");
    let r = qs.len();
    assert_eq!(qs[..r - 2], ks[..r - 2], "q/k batch dims differ");
    assert_eq!(qs[..r - 2], vs[..r - 2], "q/v batch dims differ");
    let d = qs[r - 1];
    assert_eq!(ks[r - 1], d, "q/k feature dims differ");
    let tk = ks[r - 2];
    assert_eq!(vs[r - 2], tk, "k/v sequence lengths differ");
    let tq = qs[r - 2];
    let dv = vs[r - 1];
    let nb: usize = qs[..r - 2].iter().product();
    let mut out_shape = qs[..r - 2].to_vec();
    out_shape.push(tq);
    out_shape.push(dv);
    AttnDims { nb, tq, tk, d, dv, out_shape }
}

/// A tensor's raw buffer paired with the base offset of every `[..., W]` row
/// whose elements are unit-stride. Lets the row kernels read permuted views
/// (head-split `[B, T, H, Dh]` → `[B, H, T, Dh]` is the canonical case) in
/// place, skipping the `contiguous()` copy the composed path never pays.
struct Rows {
    data: crate::workspace::ArcBuf,
    offsets: std::sync::Arc<Vec<usize>>,
}

impl Rows {
    /// Gathers row offsets from `t`'s view strides; copies to a contiguous
    /// buffer first only when the last dimension is not unit-stride.
    fn new(t: &Tensor) -> Rows {
        let t = if t.strides().last() == Some(&1) { t.clone() } else { t.contiguous() };
        let rank = t.rank();
        let sh = &t.shape()[..rank - 1];
        let st = &t.strides()[..rank - 1];
        let n: usize = sh.iter().product();
        let mut offsets = Vec::with_capacity(n);
        let mut idx = vec![0usize; sh.len()];
        let mut off = t.offset();
        for _ in 0..n {
            offsets.push(off);
            for dim in (0..sh.len()).rev() {
                idx[dim] += 1;
                off += st[dim];
                if idx[dim] < sh[dim] {
                    break;
                }
                off -= st[dim] * sh[dim];
                idx[dim] = 0;
            }
        }
        Rows { data: t.raw_arc(), offsets: std::sync::Arc::new(offsets) }
    }

    #[inline]
    fn row(&self, i: usize, width: usize) -> &[f32] {
        &self.data[self.offsets[i]..self.offsets[i] + width]
    }
}

/// Computes output rows `first_row ..` into `out` (`count * dv` elements).
/// `scores` is reusable scratch of length `tk`. Row-local accumulation order
/// is the determinism anchor shared by the serial and pooled paths.
#[allow(clippy::too_many_arguments)]
fn attention_rows(
    q: &Rows,
    k: &Rows,
    v: &Rows,
    scale: f32,
    dims: &AttnDims,
    first_row: usize,
    out: &mut [f32],
    scores: &mut [f32],
) {
    let (tq, tk, d, dv) = (dims.tq, dims.tk, dims.d, dims.dv);
    for (i, orow) in out.chunks_exact_mut(dv).enumerate() {
        let row = first_row + i;
        let (bi, ti) = (row / tq, row % tq);
        let qrow = q.row(bi * tq + ti, d);

        let mut max = f32::NEG_INFINITY;
        for (j, s) in scores.iter_mut().enumerate() {
            *s = scale * dot(qrow, k.row(bi * tk + j, d));
            if *s > max {
                max = *s;
            }
        }
        // Dependency-free exp pass (vectorizable), then a lane-accumulated
        // sum — both fixed functions of the row, so pool-size independent.
        for s in scores.iter_mut() {
            *s = fastmath::exp(*s - max);
        }
        let denom = super::reduce::sum4(scores);
        orow.fill(0.0);
        for (j, &p) in scores.iter().enumerate() {
            let vrow = v.row(bi * tk + j, dv);
            for (o, &vx) in orow.iter_mut().zip(vrow) {
                *o += p * vx;
            }
        }
        let inv = 1.0 / denom;
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
}

/// Fused scaled-dot-product attention: `softmax(scale * q kᵀ) v`.
///
/// `q` is `[..., Tq, D]`, `k` is `[..., Tk, D]`, `v` is `[..., Tk, Dv]` with
/// identical leading (batch) dimensions; the result is `[..., Tq, Dv]`.
/// Scores are streamed per query row, so peak scratch is O(Tk) per worker
/// rather than the O(Tq*Tk) per batch element of the composed
/// matmul/softmax/matmul path. Large problems partition their query rows
/// over the shared worker pool with bit-identical results for every pool
/// size.
///
/// # Panics
///
/// Panics on rank or dimension mismatches between `q`, `k`, and `v`.
pub fn attention(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32) -> Tensor {
    let _span = crate::metrics::span("op/attention");
    let dims = attn_dims(q, k, v);
    let (qr, kr, vr) = (Rows::new(q), Rows::new(k), Rows::new(v));
    let total_rows = dims.nb * dims.tq;
    let work = total_rows * dims.tk;

    if pool::should_parallelize(work, ATTENTION_SERIAL_BELOW) && total_rows > 1 {
        let dims = std::sync::Arc::new(dims);
        let d2 = std::sync::Arc::clone(&dims);
        let threads = pool::num_threads().min(total_rows);
        let out = pool::parallel_rows_named(
            "attention",
            total_rows,
            d2.dv,
            threads,
            move |first_row, chunk| {
                let mut scores = crate::workspace::Scratch::zeroed(d2.tk);
                attention_rows(&qr, &kr, &vr, scale, &d2, first_row, chunk, &mut scores);
            },
        );
        return Tensor::from_vec(out, &dims.out_shape);
    }

    // Every element of `out` is written by `attention_rows` (fill + scaled
    // accumulate per row), so recycled workspace contents never leak.
    let mut out = crate::workspace::take_uninit(total_rows * dims.dv);
    let mut scores = vec![0.0f32; dims.tk];
    attention_rows(&qr, &kr, &vr, scale, &dims, 0, &mut out, &mut scores);
    Tensor::from_vec(out, &dims.out_shape)
}

/// Computes `(dq, dk, dv)` slabs for batch elements `first_b ..` given the
/// upstream gradient. Probabilities are recomputed per query row; each batch
/// element is owned by exactly one job, so `dk`/`dv` accumulation order is
/// fixed and results are bit-identical for every pool size.
#[allow(clippy::too_many_arguments)]
fn attention_backward_batches(
    qd: &[f32],
    kd: &[f32],
    vd: &[f32],
    gd: &[f32],
    scale: f32,
    dims: &AttnDims,
    first_b: usize,
    count: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (tq, tk, d, dv) = (dims.tq, dims.tk, dims.d, dims.dv);
    let mut dq = crate::workspace::take_zeroed(count * tq * d);
    let mut dk = crate::workspace::take_zeroed(count * tk * d);
    let mut dvv = crate::workspace::take_zeroed(count * tk * dv);
    let mut scores = crate::workspace::Scratch::zeroed(tk);
    let mut dscores = crate::workspace::Scratch::zeroed(tk);
    for c in 0..count {
        let bi = first_b + c;
        let qb = &qd[bi * tq * d..(bi + 1) * tq * d];
        let kb = &kd[bi * tk * d..(bi + 1) * tk * d];
        let vb = &vd[bi * tk * dv..(bi + 1) * tk * dv];
        let gb = &gd[bi * tq * dv..(bi + 1) * tq * dv];
        let dqb = &mut dq[c * tq * d..(c + 1) * tq * d];
        let dkb = &mut dk[c * tk * d..(c + 1) * tk * d];
        let dvb = &mut dvv[c * tk * dv..(c + 1) * tk * dv];
        for ti in 0..tq {
            let qrow = &qb[ti * d..(ti + 1) * d];
            let grow = &gb[ti * dv..(ti + 1) * dv];

            // Recompute this row's probabilities (same order as forward).
            let mut max = f32::NEG_INFINITY;
            for (j, s) in scores.iter_mut().enumerate() {
                let krow = &kb[j * d..(j + 1) * d];
                *s = scale * dot(qrow, krow);
                if *s > max {
                    max = *s;
                }
            }
            for s in scores.iter_mut() {
                *s = fastmath::exp(*s - max);
            }
            let inv = 1.0 / super::reduce::sum4(&scores);
            for s in scores.iter_mut() {
                *s *= inv;
            }

            // dp_j = <g_i, v_j>; ds_j = p_j * (dp_j - sum_l p_l dp_l).
            let mut dsum = 0.0f32;
            for (j, ds) in dscores.iter_mut().enumerate() {
                let vrow = &vb[j * dv..(j + 1) * dv];
                let dp = dot(grow, vrow);
                *ds = dp;
                dsum += scores[j] * dp;
            }
            for (j, ds) in dscores.iter_mut().enumerate() {
                *ds = scores[j] * (*ds - dsum);
            }

            // dq_i = scale * sum_j ds_j k_j; dk_j += scale * ds_j * q_i;
            // dv_j += p_j * g_i.
            let dqrow = &mut dqb[ti * d..(ti + 1) * d];
            for j in 0..tk {
                let ds = scale * dscores[j];
                let krow = &kb[j * d..(j + 1) * d];
                for (o, &kx) in dqrow.iter_mut().zip(krow) {
                    *o += ds * kx;
                }
                let dkrow = &mut dkb[j * d..(j + 1) * d];
                for (o, &qx) in dkrow.iter_mut().zip(qrow) {
                    *o += ds * qx;
                }
                let p = scores[j];
                let dvrow = &mut dvb[j * dv..(j + 1) * dv];
                for (o, &gx) in dvrow.iter_mut().zip(grow) {
                    *o += p * gx;
                }
            }
        }
    }
    (dq, dk, dvv)
}

/// Backward of [`attention`]: gradients w.r.t. `q`, `k`, and `v` given the
/// upstream gradient `grad` of shape `[..., Tq, Dv]`.
///
/// Row probabilities are recomputed from `q` and `k` (the forward pass saves
/// nothing), trading O(batch * Tq * Tk) FLOPs for never holding the
/// probability tensor. Work parallelizes over batch slabs: `dk`/`dv`
/// accumulate across query rows, so a batch element is the smallest unit
/// that keeps accumulation order fixed.
///
/// # Panics
///
/// Panics on rank or dimension mismatches.
pub fn attention_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    scale: f32,
    grad: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let _span = crate::metrics::span("op/attention_bwd");
    let dims = attn_dims(q, k, v);
    assert_eq!(grad.shape(), &dims.out_shape[..], "attention grad shape mismatch");
    let (qc, kc, vc, gc) = (q.contiguous(), k.contiguous(), v.contiguous(), grad.contiguous());
    let work = dims.nb * dims.tq * dims.tk;

    let (dq, dk, dv) = if dims.nb > 1 && pool::should_parallelize(work, ATTENTION_SERIAL_BELOW) {
        let dims = std::sync::Arc::new(dims);
        let d2 = std::sync::Arc::clone(&dims);
        let (qd, kd, vd, gd) = (qc.raw_arc(), kc.raw_arc(), vc.raw_arc(), gc.raw_arc());
        let (qo, ko, vo, go) = (qc.offset(), kc.offset(), vc.offset(), gc.offset());
        let threads = pool::num_threads().min(d2.nb);
        let per = d2.nb.div_ceil(threads);
        let chunks = d2.nb.div_ceil(per);
        let nb = d2.nb;
        let parts = pool::map_chunks_named("attention_bwd", chunks, move |c| {
            let first = c * per;
            let count = per.min(nb - first);
            attention_backward_batches(
                &qd[qo..],
                &kd[ko..],
                &vd[vo..],
                &gd[go..],
                scale,
                &d2,
                first,
                count,
            )
        });
        let mut dq = crate::workspace::take_reserve(dims.nb * dims.tq * dims.d);
        let mut dk = crate::workspace::take_reserve(dims.nb * dims.tk * dims.d);
        let mut dv = crate::workspace::take_reserve(dims.nb * dims.tk * dims.dv);
        for (pq, pk, pv) in parts {
            dq.extend_from_slice(&pq);
            dk.extend_from_slice(&pk);
            dv.extend_from_slice(&pv);
            crate::workspace::give(pq);
            crate::workspace::give(pk);
            crate::workspace::give(pv);
        }
        (dq, dk, dv)
    } else {
        attention_backward_batches(
            qc.data(),
            kc.data(),
            vc.data(),
            gc.data(),
            scale,
            &dims,
            0,
            dims.nb,
        )
    };

    (
        Tensor::from_vec(dq, q.shape()),
        Tensor::from_vec(dk, k.shape()),
        Tensor::from_vec(dv, v.shape()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    /// Composed reference: softmax(scale * q kᵀ) v via the generic kernels.
    fn composed(q: &Tensor, k: &Tensor, v: &Tensor, scale: f32) -> Tensor {
        let kt = ops::transpose_last2(k);
        let s = ops::scale(&ops::matmul(q, &kt), scale);
        let p = ops::softmax_last(&s);
        ops::matmul(&p, v)
    }

    #[test]
    fn matches_composed_path() {
        let q = Tensor::from_fn(&[2, 3, 4, 5], |i| (i as f32 * 0.13).sin());
        let k = Tensor::from_fn(&[2, 3, 6, 5], |i| (i as f32 * 0.07).cos());
        let v = Tensor::from_fn(&[2, 3, 6, 7], |i| (i as f32 * 0.29).sin());
        let scale = 1.0 / (5.0f32).sqrt();
        let fused = attention(&q, &k, &v, scale);
        let reference = composed(&q, &k, &v, scale);
        assert_eq!(fused.shape(), &[2, 3, 4, 7]);
        assert!(fused.allclose(&reference, 1e-5), "fused diverged from composed");
    }

    #[test]
    fn rows_are_convex_combinations() {
        // With v = identity-ish rows, each output row must be a convex
        // combination: weights positive, summing to 1 via a constant v.
        let q = Tensor::from_fn(&[1, 4, 3], |i| (i as f32 * 0.41).sin());
        let k = Tensor::from_fn(&[1, 5, 3], |i| (i as f32 * 0.17).cos());
        let v = Tensor::ones(&[1, 5, 2]);
        let out = attention(&q, &k, &v, 0.7);
        for &x in out.data() {
            assert!((x - 1.0).abs() < 1e-5, "convex combination of ones must be 1, got {x}");
        }
    }

    #[test]
    fn works_on_permuted_views() {
        // [B, T, H, Dh] -> permute to [B, H, T, Dh]: rows contiguous in the
        // source but the view itself is not. The kernel reads such views in
        // place through per-row offsets (no materialization).
        let base = Tensor::from_fn(&[2, 4, 3, 5], |i| (i as f32 * 0.11).sin());
        let q = ops::permute(&base, &[0, 2, 1, 3]);
        let k = ops::permute(&base, &[0, 2, 1, 3]);
        let v = ops::permute(&base, &[0, 2, 1, 3]);
        let fused = attention(&q, &k, &v, 0.5);
        let reference = composed(&q.contiguous(), &k.contiguous(), &v.contiguous(), 0.5);
        assert!(fused.allclose(&reference, 1e-5));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let q = Tensor::from_fn(&[1, 3, 2], |i| (i as f32 * 0.31).sin() * 0.5);
        let k = Tensor::from_fn(&[1, 4, 2], |i| (i as f32 * 0.19).cos() * 0.5);
        let v = Tensor::from_fn(&[1, 4, 3], |i| (i as f32 * 0.23).sin() * 0.5);
        let scale = 0.8;
        // Loss = sum(attention(q, k, v)).
        let grad = Tensor::ones(&[1, 3, 3]);
        let (dq, dk, dv) = attention_backward(&q, &k, &v, scale, &grad);
        let eps = 1e-2f32;
        let check = |which: usize, analytic: &Tensor, base: &Tensor| {
            for idx in 0..base.numel() {
                let mut plus = base.to_vec();
                plus[idx] += eps;
                let mut minus = base.to_vec();
                minus[idx] -= eps;
                let make = |d: Vec<f32>| Tensor::from_vec(d, base.shape());
                let (tp, tm) = (make(plus), make(minus));
                let (fp, fm) = match which {
                    0 => (attention(&tp, &k, &v, scale), attention(&tm, &k, &v, scale)),
                    1 => (attention(&q, &tp, &v, scale), attention(&q, &tm, &v, scale)),
                    _ => (attention(&q, &k, &tp, scale), attention(&q, &k, &tm, scale)),
                };
                let num =
                    (fp.data().iter().sum::<f32>() - fm.data().iter().sum::<f32>()) / (2.0 * eps);
                let got = analytic.data()[idx];
                assert!(
                    (num - got).abs() < 1e-2,
                    "input {which} idx {idx}: numeric {num} vs analytic {got}"
                );
            }
        };
        check(0, &dq, &q);
        check(1, &dk, &k);
        check(2, &dv, &v);
    }
}
