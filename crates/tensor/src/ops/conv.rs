//! 2-D convolution (im2col-based) and pooling.

use crate::pool;
use crate::Tensor;

/// im2col outputs below this many elements stay on the calling thread.
const IM2COL_SERIAL_BELOW: usize = 1 << 15;

/// Geometry of a 2-D convolution: kernel size, stride, and zero padding.
///
/// Inputs are `[B, C, H, W]`, weights `[O, C, KH, KW]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride applied in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied on every spatial border.
    pub padding: usize,
}

impl Conv2dSpec {
    /// A square `k`×`k` kernel with the given stride and padding.
    pub fn new(k: usize, stride: usize, padding: usize) -> Self {
        Conv2dSpec { kh: k, kw: k, stride, padding }
    }

    /// Output spatial size for an `h`×`w` input.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let hp = h + 2 * self.padding;
        let wp = w + 2 * self.padding;
        assert!(hp >= self.kh && wp >= self.kw, "kernel larger than padded input");
        ((hp - self.kh) / self.stride + 1, (wp - self.kw) / self.stride + 1)
    }
}

/// Gathers the patches of a single `[C, H, W]` image into `out`
/// (`C*KH*KW * OH*OW` elements). Every element is stored — padding
/// positions write an explicit `0.0` — so callers may hand over
/// uninitialized (recycled) buffers. Shared by the serial and pooled
/// [`im2col`] paths so both produce bit-identical columns.
fn im2col_image(image: &[f32], out: &mut [f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec) {
    let (oh, ow) = spec.out_size(h, w);
    let cols = oh * ow;
    let pad = spec.padding as isize;
    let mut row = 0usize;
    for ci in 0..c {
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let orow = &mut out[row * cols..(row + 1) * cols];
                let mut p = 0usize;
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + ky as isize - pad;
                    let in_y = iy >= 0 && iy < h as isize;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kx as isize - pad;
                        orow[p] = if in_y && ix >= 0 && ix < w as isize {
                            image[ci * h * w + iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        p += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Unfolds image patches into columns.
///
/// Input `[B, C, H, W]` becomes `[B, C*KH*KW, OH*OW]`, where column `p`
/// holds the receptive field of output pixel `p`. Batches large enough to
/// beat the serial threshold are distributed image-by-image over the shared
/// worker pool; each image is gathered by exactly one job, so the result is
/// bit-identical for every pool size.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let sh = input.shape();
    assert_eq!(sh.len(), 4, "im2col expects [B, C, H, W]");
    let (b, c, h, w) = (sh[0], sh[1], sh[2], sh[3]);
    let (oh, ow) = spec.out_size(h, w);
    let cols = oh * ow;
    let rows = c * spec.kh * spec.kw;
    let input = input.contiguous(); // patch gather indexes the flat buffer
    let spec = *spec;

    if b > 1 && pool::should_parallelize(b * rows * cols, IM2COL_SERIAL_BELOW) {
        let data = input.raw_arc();
        let off = input.offset();
        let threads = pool::num_threads().min(b);
        let out =
            pool::parallel_rows_named("im2col", b, rows * cols, threads, move |first_b, chunk| {
                let count = chunk.len() / (rows * cols);
                for i in 0..count {
                    let bi = first_b + i;
                    let image = &data[off + bi * c * h * w..off + (bi + 1) * c * h * w];
                    let img_out = &mut chunk[i * rows * cols..(i + 1) * rows * cols];
                    im2col_image(image, img_out, c, h, w, &spec);
                }
            });
        return Tensor::from_vec(out, &[b, rows, cols]);
    }

    // `im2col_image` stores every element, padding included.
    let mut out = crate::workspace::take_uninit(b * rows * cols);
    let data = input.data();
    for bi in 0..b {
        let image = &data[bi * c * h * w..(bi + 1) * c * h * w];
        im2col_image(image, &mut out[bi * rows * cols..(bi + 1) * rows * cols], c, h, w, &spec);
    }
    Tensor::from_vec(out, &[b, rows, cols])
}

/// Adjoint of [`im2col`]: folds columns back into an image, accumulating
/// overlapping receptive fields.
pub fn col2im(cols_t: &Tensor, spec: &Conv2dSpec, c: usize, h: usize, w: usize) -> Tensor {
    let sh = cols_t.shape();
    assert_eq!(sh.len(), 3, "col2im expects [B, C*KH*KW, OH*OW]");
    let b = sh[0];
    let (oh, ow) = spec.out_size(h, w);
    let cols = oh * ow;
    let rows = c * spec.kh * spec.kw;
    assert_eq!(sh[1], rows, "col2im row mismatch");
    assert_eq!(sh[2], cols, "col2im column mismatch");
    let mut out = crate::workspace::take_zeroed(b * c * h * w);
    let cols_t = cols_t.contiguous();
    let data = cols_t.data();
    let pad = spec.padding as isize;
    for bi in 0..b {
        let out_base = bi * c * h * w;
        let in_base = bi * rows * cols;
        let mut row = 0usize;
        for ci in 0..c {
            for ky in 0..spec.kh {
                for kx in 0..spec.kw {
                    let irow = &data[in_base + row * cols..in_base + (row + 1) * cols];
                    let mut p = 0usize;
                    for oy in 0..oh {
                        let iy = (oy * spec.stride) as isize + ky as isize - pad;
                        for ox in 0..ow {
                            let ix = (ox * spec.stride) as isize + kx as isize - pad;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                out[out_base + ci * h * w + iy as usize * w + ix as usize] +=
                                    irow[p];
                            }
                            p += 1;
                        }
                    }
                    row += 1;
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, c, h, w])
}

/// 2-D convolution forward pass.
///
/// `input` is `[B, C, H, W]`, `weight` is `[O, C, KH, KW]`; the result is
/// `[B, O, OH, OW]`. Bias, if any, is added by the caller.
///
/// # Panics
///
/// Panics on shape mismatches between input, weight, and `spec`.
pub fn conv2d(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let _span = crate::metrics::span("op/conv2d");
    let ish = input.shape();
    let wsh = weight.shape();
    assert_eq!(ish.len(), 4, "conv2d input must be [B, C, H, W]");
    assert_eq!(wsh.len(), 4, "conv2d weight must be [O, C, KH, KW]");
    assert_eq!(ish[1], wsh[1], "channel mismatch");
    assert_eq!((wsh[2], wsh[3]), (spec.kh, spec.kw), "kernel/spec mismatch");
    let (b, o) = (ish[0], wsh[0]);
    let (oh, ow) = spec.out_size(ish[2], ish[3]);
    let cols = im2col(input, spec); // [B, CKK, OHOW]
    let wmat = weight.reshape(&[o, wsh[1] * spec.kh * spec.kw]); // [O, CKK]
                                                                 // Broadcast the weight matrix across the batch.
    let out = super::matmul(&wmat, &cols); // [B, O, OHOW]
    out.reshape(&[b, o, oh, ow])
}

/// Average pooling with a square `k`×`k` window and stride `k`.
///
/// # Panics
///
/// Panics if the spatial extents are not divisible by `k`.
pub fn avg_pool2d(input: &Tensor, k: usize) -> Tensor {
    let sh = input.shape();
    assert_eq!(sh.len(), 4, "avg_pool2d expects [B, C, H, W]");
    let (b, c, h, w) = (sh[0], sh[1], sh[2], sh[3]);
    assert!(h % k == 0 && w % k == 0, "pool size {k} must divide {h}x{w}");
    let (oh, ow) = (h / k, w / k);
    let input = input.contiguous();
    let data = input.data();
    // Every output pixel is stored below, so recycled contents are fine.
    let mut out = crate::workspace::take_uninit(b * c * oh * ow);
    let inv = 1.0 / (k * k) as f32;
    for bc in 0..b * c {
        let ibase = bc * h * w;
        let obase = bc * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for dy in 0..k {
                    let row = ibase + (oy * k + dy) * w + ox * k;
                    for dx in 0..k {
                        acc += data[row + dx];
                    }
                }
                out[obase + oy * ow + ox] = acc * inv;
            }
        }
    }
    Tensor::from_vec(out, &[b, c, oh, ow])
}

/// Max pooling with a square `k`×`k` window and stride `k`.
///
/// Returns the pooled tensor and the flat input index of each maximum
/// (needed by [`max_pool2d_backward`]).
///
/// # Panics
///
/// Panics if the spatial extents are not divisible by `k`.
pub fn max_pool2d(input: &Tensor, k: usize) -> (Tensor, Vec<usize>) {
    let sh = input.shape();
    assert_eq!(sh.len(), 4, "max_pool2d expects [B, C, H, W]");
    let (b, c, h, w) = (sh[0], sh[1], sh[2], sh[3]);
    assert!(h % k == 0 && w % k == 0, "pool size {k} must divide {h}x{w}");
    let (oh, ow) = (h / k, w / k);
    let input = input.contiguous();
    let data = input.data();
    let mut out = crate::workspace::take_reserve(b * c * oh * ow);
    let mut argmax = Vec::with_capacity(b * c * oh * ow);
    for bc in 0..b * c {
        let ibase = bc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best_idx = ibase + (oy * k) * w + ox * k;
                let mut best = data[best_idx];
                for dy in 0..k {
                    let row = ibase + (oy * k + dy) * w + ox * k;
                    for dx in 0..k {
                        let v = data[row + dx];
                        if v > best {
                            best = v;
                            best_idx = row + dx;
                        }
                    }
                }
                out.push(best);
                argmax.push(best_idx);
            }
        }
    }
    (Tensor::from_vec(out, &[b, c, oh, ow]), argmax)
}

/// Backward of [`max_pool2d`]: routes each output gradient to the input
/// position that produced the maximum.
pub fn max_pool2d_backward(grad: &Tensor, argmax: &[usize], input_numel: usize) -> Tensor {
    assert_eq!(grad.numel(), argmax.len(), "grad/argmax mismatch");
    let mut out = crate::workspace::take_zeroed(input_numel);
    for (g, &i) in grad.to_vec().iter().zip(argmax) {
        out[i] += g;
    }
    let sh = grad.shape();
    let k2 = input_numel / grad.numel();
    let k = (k2 as f32).sqrt() as usize;
    Tensor::from_vec(out, &[sh[0], sh[1], sh[2] * k, sh[3] * k])
}

/// Zero-pads the last two dimensions of a `[B, C, H, W]` tensor by `pad`
/// on every border.
pub fn pad2d(input: &Tensor, pad: usize) -> Tensor {
    let sh = input.shape();
    assert_eq!(sh.len(), 4, "pad2d expects [B, C, H, W]");
    let (b, c, h, w) = (sh[0], sh[1], sh[2], sh[3]);
    let (nh, nw) = (h + 2 * pad, w + 2 * pad);
    let mut out = crate::workspace::take_zeroed(b * c * nh * nw);
    let input = input.contiguous();
    let data = input.data();
    for bc in 0..b * c {
        for r in 0..h {
            let src = bc * h * w + r * w;
            let dst = bc * nh * nw + (r + pad) * nw + pad;
            out[dst..dst + w].copy_from_slice(&data[src..src + w]);
        }
    }
    Tensor::from_vec(out, &[b, c, nh, nw])
}

/// Backward of [`avg_pool2d`]: spreads each output gradient uniformly over
/// its `k`×`k` window.
pub fn avg_pool2d_backward(grad: &Tensor, k: usize, h: usize, w: usize) -> Tensor {
    let sh = grad.shape();
    let (b, c, oh, ow) = (sh[0], sh[1], sh[2], sh[3]);
    assert_eq!((oh * k, ow * k), (h, w), "pool backward geometry mismatch");
    let grad = grad.contiguous();
    let gd = grad.data();
    let mut out = crate::workspace::take_zeroed(b * c * h * w);
    let inv = 1.0 / (k * k) as f32;
    for bc in 0..b * c {
        let obase = bc * oh * ow;
        let ibase = bc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let g = gd[obase + oy * ow + ox] * inv;
                for dy in 0..k {
                    let row = ibase + (oy * k + dy) * w + ox * k;
                    for dx in 0..k {
                        out[row + dx] += g;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_out_size() {
        let s = Conv2dSpec::new(3, 1, 1);
        assert_eq!(s.out_size(8, 8), (8, 8));
        let s2 = Conv2dSpec::new(2, 2, 0);
        assert_eq!(s2.out_size(8, 6), (4, 3));
    }

    #[test]
    fn identity_kernel_preserves_image() {
        // 1x1 kernel of weight 1 is the identity.
        let img = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d(&img, &w, &Conv2dSpec::new(1, 1, 0));
        assert_eq!(out.reshape(&[16]).data(), img.reshape(&[16]).data());
    }

    #[test]
    fn box_filter_matches_hand_computation() {
        // 2x2 ones kernel, stride 2: sums each quadrant.
        let img = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let out = conv2d(&img, &w, &Conv2dSpec::new(2, 2, 0));
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[10.0, 18.0, 42.0, 50.0]);
    }

    #[test]
    fn padding_zero_extends() {
        let img = Tensor::ones(&[1, 1, 2, 2]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d(&img, &w, &Conv2dSpec::new(3, 1, 1));
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        // Each output sees the full 2x2 ones block (corners clipped by pad).
        assert_eq!(out.data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn multi_channel_multi_batch() {
        let img = Tensor::from_fn(&[2, 3, 4, 4], |i| (i % 7) as f32);
        let w = Tensor::from_fn(&[5, 3, 3, 3], |i| ((i % 5) as f32 - 2.0) * 0.1);
        let spec = Conv2dSpec::new(3, 1, 1);
        let out = conv2d(&img, &w, &spec);
        assert_eq!(out.shape(), &[2, 5, 4, 4]);
        // Reference: direct convolution at one position.
        let (bi, oi, oy, ox) = (1, 2, 2, 1);
        let mut acc = 0.0;
        for c in 0..3 {
            for ky in 0..3 {
                for kx in 0..3 {
                    let iy = oy + ky;
                    let ix = ox + kx;
                    // padding=1 shifts input coords by -1
                    let (iy, ix) = (iy as isize - 1, ix as isize - 1);
                    if (0..4).contains(&iy) && (0..4).contains(&ix) {
                        acc += img.at(&[bi, c, iy as usize, ix as usize]) * w.at(&[oi, c, ky, kx]);
                    }
                }
            }
        }
        assert!((out.at(&[bi, oi, oy, ox]) - acc).abs() < 1e-4);
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), y> == <x, col2im(y)> for the same geometry.
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| (i as f32 * 0.37).sin());
        let cols = im2col(&x, &spec);
        let y = Tensor::from_fn(cols.shape(), |i| (i as f32 * 0.11).cos());
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, &spec, 2, 4, 4);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn avg_pool_and_backward() {
        let img = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let p = avg_pool2d(&img, 2);
        assert_eq!(p.data(), &[2.5, 4.5, 10.5, 12.5]);
        let g = Tensor::ones(&[1, 1, 2, 2]);
        let back = avg_pool2d_backward(&g, 2, 4, 4);
        assert!(back.data().iter().all(|&v| (v - 0.25).abs() < 1e-7));
    }
}
