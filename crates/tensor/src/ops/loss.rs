//! Fused classification losses with analytic gradients.

use super::reduce::softmax_last;
use crate::Tensor;

/// Mean cross-entropy between `logits` (`[N, C]`) and integer `labels`
/// (`len N`), computed stably from raw logits.
///
/// Returns `(loss, probs)` where `probs` is the softmax of the logits, saved
/// so the backward pass is a single subtraction.
///
/// # Panics
///
/// Panics on shape mismatch or an out-of-range label.
pub fn cross_entropy_logits(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let _span = crate::metrics::span("op/cross_entropy");
    let sh = logits.shape();
    assert_eq!(sh.len(), 2, "cross_entropy_logits expects [N, C] logits");
    let (n, c) = (sh[0], sh[1]);
    assert_eq!(labels.len(), n, "label count mismatch");
    let probs = softmax_last(logits);
    let pd = probs.data();
    let mut loss = 0.0;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        // Clamp to avoid log(0) when the model is confidently wrong.
        loss -= pd[i * c + y].max(1e-12).ln();
    }
    (loss / n as f32, probs)
}

/// Gradient of [`cross_entropy_logits`] w.r.t. the logits:
/// `(probs - onehot(labels)) / N * upstream`.
pub fn cross_entropy_logits_backward(probs: &Tensor, labels: &[usize], upstream: f32) -> Tensor {
    let sh = probs.shape();
    let (n, c) = (sh[0], sh[1]);
    let scale = upstream / n as f32;
    let mut out = probs.data().to_vec();
    for (i, &y) in labels.iter().enumerate() {
        out[i * c + y] -= 1.0;
    }
    for v in &mut out {
        *v *= scale;
    }
    Tensor::from_vec(out, sh)
}

/// Mean binary cross-entropy with logits for multi-label targets.
///
/// `logits` and `targets` are both `[N, C]`; targets are 0/1 (soft targets
/// are accepted). Uses the stable formulation
/// `max(x,0) - x*t + ln(1 + e^{-|x|})`.
///
/// Returns `(loss, sigmoids)` with the sigmoid activations saved for the
/// backward pass.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    let _span = crate::metrics::span("op/bce");
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    let n = logits.numel();
    assert!(n > 0, "bce over empty tensor");
    let mut loss = 0.0;
    let mut sig = crate::workspace::take_reserve(n);
    let (logits, targets) = (logits.contiguous(), targets.contiguous());
    for (&x, &t) in logits.data().iter().zip(targets.data()) {
        loss += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        sig.push(1.0 / (1.0 + (-x).exp()));
    }
    (loss / n as f32, Tensor::from_vec(sig, logits.shape()))
}

/// Gradient of [`bce_with_logits`] w.r.t. the logits:
/// `(sigmoid(x) - t) / N * upstream`.
pub fn bce_with_logits_backward(sigmoids: &Tensor, targets: &Tensor, upstream: f32) -> Tensor {
    let n = sigmoids.numel() as f32;
    let scale = upstream / n;
    sigmoids.zip(targets, |s, t| (s - t) * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, probs) = cross_entropy_logits(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        assert!(probs.data().iter().all(|&p| (p - 0.25).abs() < 1e-6));
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]);
        let (loss, _) = cross_entropy_logits(&logits, &[0]);
        assert!(loss < 1e-3);
        let (bad, _) = cross_entropy_logits(&logits, &[1]);
        assert!(bad > 5.0);
    }

    #[test]
    fn ce_gradient_matches_numerical() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 1.2, -0.8, 0.1, 0.9], &[2, 3]);
        let labels = [2usize, 0];
        let (_, probs) = cross_entropy_logits(&logits, &labels);
        let grad = cross_entropy_logits_backward(&probs, &labels, 1.0);
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            let mut lm = logits.clone();
            lp.data_mut()[i] += eps;
            lm.data_mut()[i] -= eps;
            let (fp, _) = cross_entropy_logits(&lp, &labels);
            let (fm, _) = cross_entropy_logits(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "grad mismatch at {i}");
        }
    }

    #[test]
    fn bce_matches_hand_value_and_is_stable() {
        // x = 0 -> ln 2 regardless of target.
        let logits = Tensor::zeros(&[1, 2]);
        let targets = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let (loss, sig) = bce_with_logits(&logits, &targets);
        assert!((loss - (2.0f32).ln()).abs() < 1e-6);
        assert!(sig.data().iter().all(|&s| (s - 0.5).abs() < 1e-6));
        // Extreme logits stay finite.
        let big = Tensor::from_vec(vec![1e4, -1e4], &[1, 2]);
        let (l2, _) = bce_with_logits(&big, &targets);
        assert!(l2.is_finite());
        assert!(l2 < 1e-3);
    }

    #[test]
    fn bce_gradient_matches_numerical() {
        let logits = Tensor::from_vec(vec![0.3, -1.1, 2.0, 0.0], &[2, 2]);
        let targets = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let (_, sig) = bce_with_logits(&logits, &targets);
        let grad = bce_with_logits_backward(&sig, &targets, 1.0);
        let eps = 1e-3;
        for i in 0..4 {
            let mut lp = logits.clone();
            let mut lm = logits.clone();
            lp.data_mut()[i] += eps;
            lm.data_mut()[i] -= eps;
            let (fp, _) = bce_with_logits(&lp, &targets);
            let (fm, _) = bce_with_logits(&lm, &targets);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "grad mismatch at {i}");
        }
    }
}
