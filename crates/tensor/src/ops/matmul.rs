//! Batched matrix multiplication: register-tiled, parallel, stride-aware.
//!
//! The kernel reads both operands through their `(strides, offset)` view
//! metadata, so the transposed and permuted views produced by attention
//! (`q @ kᵀ`, head split/merge) multiply directly with no materialization:
//!
//! - `B` with unit column stride (row-major matrices, head-split views) runs
//!   a register-tiled kernel: each 4-row × 16-column output block
//!   accumulates in registers across the whole `k` loop and is stored once,
//!   so output rows are never re-read and each loaded `B` cache line feeds
//!   four accumulator rows.
//! - `B` with unit *row* stride (a `transpose_last2` view) runs a
//!   dot-product kernel where both the `A` row and the logical `B` column
//!   are contiguous slices.
//! - Anything else is materialized once with `contiguous()` and dispatched
//!   to the SAXPY kernel.
//!
//! Problems whose `B` matrix spills L1 take the **packed-panel path**
//! (PR 5): BLIS-style cache blocking where `B` is gathered once into
//! zero-padded `[k][16]` column tiles (any stride pattern, so transposed
//! and permuted views need no materialization) and each worker packs
//! `MC`×`KC` blocks of `A` into `[kc][4]` micro-panels in recycled
//! workspace, so the 4×16 micro-kernel streams unit-stride data from
//! L1-resident panels regardless of the input layout. Every output element
//! still accumulates in ascending-`k` order through exact `f32`
//! store/reload block boundaries, so the packed path is bit-identical to
//! the SAXPY kernel — for every pool size and block shape.
//!
//! Work is parallelized across the flattened batch×row space on the shared
//! persistent worker pool (see [`crate::pool`]): the thread count comes from
//! `TSDX_NUM_THREADS` when set, else from the machine's available
//! parallelism, and tiny problems stay on the calling thread.

use std::sync::Arc;

use crate::pool;
use crate::shape;
use crate::workspace::{self, ArcBuf, Buffer, Scratch};
use crate::Tensor;

/// Width of one output-column tile in the register-tiled kernel: 16 `f32`s
/// is exactly one cache line of each `B` row, and a 4×16 accumulator block
/// fits the architectural vector registers with room for the operands.
const J_TILE: usize = 16;

/// Below this many scalar multiply-adds, pool dispatch overhead exceeds the
/// kernel time and the multiply runs on the calling thread.
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

/// Packed-path micro-kernel height. An `MR`×`NR` f32 accumulator block is
/// 12 of the 16 architectural YMM registers, leaving room for the two
/// B-row vectors and the A broadcast — the deepest accumulator rotation
/// that fits, which is what hides the FMA latency.
const MR: usize = 6;

/// Packed-path B-tile width: two full AVX2 vectors of `f32`.
const NR: usize = 16;

/// Packed-path `k`-block depth: one `KC`×[`NR`] B tile is 16 KB —
/// half of a typical 32 KB L1D — and stays resident across a whole packed
/// A block.
const KC: usize = 256;

/// Packed-path row-block height: an `MC`×`KC` packed A block is 64 KB,
/// L2-resident while its [`J_TILE`]-wide B tiles stream through L1.
const MC: usize = 64;

/// Minimum `B`-matrix size (`k·n` elements) for the packed path. The floor
/// keeps tiny per-batch matrices — e.g. the per-head attention products,
/// where panel setup per batch element would dominate — on the unpacked
/// kernels; the arithmetic gate below does the real amortization check. The
/// training step's linear layers (`k·n` = 4–16K elements) all clear it: the
/// 6×16 micro-kernel's register reuse beats SAXPY even when `B` fits L1.
const PACK_MIN_B_ELEMS: usize = 2 * 1024;

/// ...and once there is enough arithmetic to amortize the O(mk + kn)
/// packing passes.
const PACK_MIN_MADDS: usize = 1 << 20;

/// Upper bound on the packed-B workspace in elements (32 MiB); batched
/// problems that would exceed it fall back to the unpacked kernels.
const PACK_B_CAP_ELEMS: usize = 1 << 23;

/// The worker-thread count [`matmul`] uses — the shared pool's size
/// ([`pool::num_threads`]): `TSDX_NUM_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
///
/// # Panics
///
/// Panics if `TSDX_NUM_THREADS` is set to a non-positive-integer value.
pub fn configured_threads() -> usize {
    pool::num_threads()
}

/// Batched matrix product `a @ b`.
///
/// Both operands must have rank ≥ 2. The trailing two dimensions are the
/// matrix dimensions (`[m, k] @ [k, n] -> [m, n]`); all leading dimensions
/// are batch dimensions and broadcast against each other under NumPy rules.
/// Strided views (transposes, permutes, narrows) are consumed directly.
///
/// # Panics
///
/// Panics on rank < 2, inner-dimension mismatch, or non-broadcastable batch
/// dimensions.
///
/// # Examples
///
/// ```
/// use tsdx_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(ops::matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (ash, bsh) = (a.shape(), b.shape());
    if ash.len() >= 2 && bsh.len() >= 2 {
        // Tiny multiplies stay on the calling thread: pool dispatch would
        // dominate the kernel.
        let flops = a.numel() / ash[ash.len() - 1] * bsh[bsh.len() - 1] * ash[ash.len() - 1];
        if !pool::should_parallelize(flops, PARALLEL_THRESHOLD) {
            return matmul_with_threads(a, b, 1);
        }
    }
    matmul_with_threads(a, b, configured_threads())
}

/// [`matmul`] with an explicit worker-thread count (1 = fully sequential).
///
/// The result is bit-identical for every `threads` value: threads partition
/// the output rows, and each row is always computed by exactly one thread in
/// the same order.
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    matmul_impl(a, b, threads, true)
}

/// [`matmul_with_threads`] restricted to the pre-packing (PR 2) kernels —
/// register-tiled SAXPY and the transposed-view dot kernel. The packed-GEMM
/// bit-parity tests compare the packed path against this one.
#[doc(hidden)]
pub fn matmul_unpacked(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    matmul_impl(a, b, threads, false)
}

fn matmul_impl(a: &Tensor, b: &Tensor, threads: usize, allow_packed: bool) -> Tensor {
    let _span = crate::metrics::span("op/matmul");
    assert!(a.rank() >= 2 && b.rank() >= 2, "matmul requires rank >= 2 operands");
    let (ash, bsh) = (a.shape().to_vec(), b.shape().to_vec());
    let (m, ka) = (ash[ash.len() - 2], ash[ash.len() - 1]);
    let (kb, n) = (bsh[bsh.len() - 2], bsh[bsh.len() - 1]);
    assert_eq!(ka, kb, "matmul inner dims: {ash:?} @ {bsh:?}");
    let k = ka;

    let batch_a = &ash[..ash.len() - 2];
    let batch_b = &bsh[..bsh.len() - 2];
    let batch = shape::broadcast(batch_a, batch_b)
        .unwrap_or_else(|| panic!("matmul batch dims do not broadcast: {ash:?} @ {bsh:?}"));
    let n_batch = shape::numel(&batch);

    let mut out_shape = batch.clone();
    out_shape.push(m);
    out_shape.push(n);
    let total = n_batch * m * n;
    if total == 0 || k == 0 {
        // An empty contraction sums nothing: the result is all zeros.
        return Tensor::from_vec(workspace::take_zeroed(total), &out_shape);
    }
    let total_rows = n_batch * m;
    let threads = threads.max(1).min(total_rows);

    // Packed-panel path: worth it once B spills L1 and the arithmetic
    // amortizes the packing. Reads both operands through arbitrary strides,
    // so views never materialize here. The decision depends only on the
    // problem shape — never on `threads` — keeping kernel selection (and
    // therefore bits) identical across pool sizes.
    if allow_packed && k * n >= PACK_MIN_B_ELEMS && total * k >= PACK_MIN_MADDS {
        let sa_batch =
            shape::broadcast_view_strides(batch_a, &a.strides()[..batch_a.len()], &batch);
        let sb_batch =
            shape::broadcast_view_strides(batch_b, &b.strides()[..batch_b.len()], &batch);
        let b_shared = sb_batch.iter().all(|&s| s == 0);
        let nb_eff = if b_shared { 1 } else { n_batch };
        let njt = n.div_ceil(NR);
        if nb_eff * njt * NR * k <= PACK_B_CAP_ELEMS {
            crate::metrics::counter_add("dispatch/matmul_packed", 1);
            let (acs, ars) = last2_strides(a);
            let bpack = pack_b(b, &batch, &sb_batch, nb_eff, njt, k, n);
            let ctx = PackedCtx {
                ad: a.raw_arc(),
                a_off: a.offset(),
                batch,
                sa_batch,
                bpack,
                b_shared,
                m,
                n,
                k,
                njt,
                ars,
                acs,
            };
            if threads == 1 {
                let mut out = workspace::take_uninit(total);
                packed_rows(&mut out, 0, &ctx);
                return Tensor::from_vec(out, &out_shape);
            }
            let ctx = Arc::new(ctx);
            let out = pool::parallel_rows_named(
                "matmul",
                total_rows,
                n,
                threads,
                move |first_row, chunk| packed_rows(chunk, first_row, &ctx),
            );
            return Tensor::from_vec(out, &out_shape);
        }
    }

    // Pick a kernel from B's last-two-dim strides, materializing an operand
    // only when no stride pattern fits (the clones are Arc-cheap otherwise).
    crate::metrics::counter_add("dispatch/matmul_unpacked", 1);
    let (bcs, brs) = last2_strides(b);
    let (b, use_dot) = if bcs == 1 {
        (b.clone(), false)
    } else if brs == 1 {
        (b.clone(), true)
    } else {
        (b.contiguous(), false)
    };
    let a = if use_dot && last2_strides(a).0 != 1 { a.contiguous() } else { a.clone() };

    let (acs, ars) = last2_strides(&a);
    let (bcs, brs) = last2_strides(&b);
    let sa_batch = shape::broadcast_view_strides(batch_a, &a.strides()[..batch_a.len()], &batch);
    let sb_batch = shape::broadcast_view_strides(batch_b, &b.strides()[..batch_b.len()], &batch);

    let ctx = KernelCtx {
        ad: a.raw_arc(),
        bd: b.raw_arc(),
        a_off: a.offset(),
        b_off: b.offset(),
        batch,
        sa_batch,
        sb_batch,
        m,
        n,
        k,
        ars,
        acs,
        brs,
        bcs,
        use_dot,
    };

    if threads == 1 {
        // Both kernels write every output element, so the buffer needs no
        // pre-zeroing (take_uninit is legal here).
        let mut out = workspace::take_uninit(total);
        compute_rows(&mut out, 0, &ctx);
        return Tensor::from_vec(out, &out_shape);
    }
    let ctx = Arc::new(ctx);
    let out =
        pool::parallel_rows_named("matmul", total_rows, n, threads, move |first_row, chunk| {
            compute_rows(chunk, first_row, &ctx)
        });
    Tensor::from_vec(out, &out_shape)
}

/// `(column stride, row stride)` of the trailing matrix dimensions.
fn last2_strides(t: &Tensor) -> (usize, usize) {
    let s = t.strides();
    (s[s.len() - 1], s[s.len() - 2])
}

/// Everything a worker needs to compute a span of output rows on the
/// packed-panel path. Shared by `Arc` across `'static` pool jobs; the
/// packed-B buffer recycles into the workspace arena when the last job
/// drops it.
struct PackedCtx {
    ad: ArcBuf,
    a_off: usize,
    batch: Vec<usize>,
    sa_batch: Vec<usize>,
    /// `B` gathered into zero-padded `[njt][k][NR]` column tiles, one
    /// block per distinct batch matrix (a single block when `B` broadcasts
    /// across the batch).
    bpack: ArcBuf,
    b_shared: bool,
    m: usize,
    n: usize,
    k: usize,
    njt: usize,
    ars: usize,
    acs: usize,
}

/// Gathers `B` into contiguous zero-padded column tiles: tile `jt` holds
/// `bp[kk*NR + j] = B[kk, jt*NR + j]` (0.0 past the column tail), read
/// through `B`'s stride metadata so transposed/permuted/narrowed views pack
/// at the same cost as contiguous ones.
fn pack_b(
    b: &Tensor,
    batch: &[usize],
    sb_batch: &[usize],
    nb_eff: usize,
    njt: usize,
    k: usize,
    n: usize,
) -> ArcBuf {
    let (bcs, brs) = last2_strides(b);
    let bd = b.raw_data();
    let b_off = b.offset();
    let per = njt * k * NR;
    // Every element is written below (real columns or explicit 0.0 pad).
    let mut pk = workspace::take_uninit(nb_eff * per);
    for (bi, block) in pk.chunks_exact_mut(per).enumerate() {
        let base = b_off + dot_idx(&shape::index_of(batch, bi), sb_batch);
        for (jt, tile) in block.chunks_exact_mut(k * NR).enumerate() {
            let j0 = jt * NR;
            let jn = NR.min(n - j0);
            for (kk, row) in tile.chunks_exact_mut(NR).enumerate() {
                let src = base + kk * brs + j0 * bcs;
                for (j, slot) in row[..jn].iter_mut().enumerate() {
                    *slot = bd[src + j * bcs];
                }
                row[jn..].fill(0.0);
            }
        }
    }
    Arc::new(Buffer::new(pk))
}

/// Computes the output rows `[start_row, start_row + chunk.len() / n)` of
/// the flattened batch×row space into `chunk` via the packed panels.
fn packed_rows(chunk: &mut [f32], start_row: usize, ctx: &PackedCtx) {
    let PackedCtx { m, n, k, njt, .. } = *ctx;
    let rows = chunk.len() / n;
    let per = njt * k * NR;
    let mut r = start_row;
    let end = start_row + rows;
    while r < end {
        let bi = r / m;
        let idx = shape::index_of(&ctx.batch, bi);
        let a_base = ctx.a_off + dot_idx(&idx, &ctx.sa_batch);
        let bsel = if ctx.b_shared { 0 } else { bi };
        let bp = &ctx.bpack[bsel * per..(bsel + 1) * per];
        let i0 = r % m;
        let i1 = (end - bi * m).min(m);
        let rows_here = i1 - i0;
        let o = &mut chunk[(r - start_row) * n..(r - start_row + rows_here) * n];
        packed_gemm(o, a_base, bp, i0, rows_here, ctx);
        r += rows_here;
    }
}

/// The BLIS loop nest over one batch matrix's row span: for each `MC`-row
/// block, pack `A` into `[kc][MR]` micro-panels (workspace scratch, reused
/// across calls), then stream every L1-resident B tile through the `MR`×`NR`
/// micro-kernel. `k` is blocked by `KC`; partial accumulators round-trip
/// through the output buffer between `k`-blocks, which is exact for `f32`,
/// so each element's summation chain is plain ascending-`k` — bit-identical
/// to the unpacked SAXPY kernel.
fn packed_gemm(o: &mut [f32], a_base: usize, bp: &[f32], i0: usize, rows: usize, ctx: &PackedCtx) {
    let PackedCtx { n, k, njt, ars, acs, .. } = *ctx;
    let ad: &[f32] = &ctx.ad;
    let mut apack = Scratch::uninit(MC.div_ceil(MR) * MR * KC);
    for mb in (0..rows).step_by(MC) {
        let mc = MC.min(rows - mb);
        let mcp = mc.div_ceil(MR) * MR;
        for (kbi, kb) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - kb);
            // Pack the A block: `MR`-row micro-panels interleaved k-major
            // (`ap[kk*MR + r]`), rows past the tail zero-filled so the
            // micro-kernel never branches on row validity.
            let ap = &mut apack[..mcp * kc];
            for (mp, panel) in ap.chunks_exact_mut(kc * MR).enumerate() {
                for r in 0..MR {
                    let row = mb + mp * MR + r;
                    if row < rows {
                        let ab = a_base + (i0 + row) * ars + kb * acs;
                        for kk in 0..kc {
                            panel[kk * MR + r] = ad[ab + kk * acs];
                        }
                    } else {
                        for kk in 0..kc {
                            panel[kk * MR + r] = 0.0;
                        }
                    }
                }
            }
            for jt in 0..njt {
                let bt = &bp[jt * k * NR + kb * NR..][..kc * NR];
                let j0 = jt * NR;
                let jn = NR.min(n - j0);
                for (mp, panel) in ap.chunks_exact(kc * MR).enumerate() {
                    let rv = MR.min(rows - (mb + mp * MR));
                    let mut acc = [[0.0f32; NR]; MR];
                    if kbi > 0 {
                        // Resume this block's partial sums (exact reload).
                        for (r, arow) in acc.iter_mut().enumerate().take(rv) {
                            let ob = (mb + mp * MR + r) * n + j0;
                            arow[..jn].copy_from_slice(&o[ob..ob + jn]);
                        }
                    }
                    micro_mrxnr(panel, bt, &mut acc);
                    for (r, arow) in acc.iter().enumerate().take(rv) {
                        let ob = (mb + mp * MR + r) * n + j0;
                        o[ob..ob + jn].copy_from_slice(&arow[..jn]);
                    }
                }
            }
        }
    }
}

/// `MR`×`NR` register block over packed unit-stride panels: `ap` is
/// `[kc][MR]` A-interleave, `bp` is `[kc][NR]` B-tile. One accumulator per
/// output element, ascending `kk` — the same per-element chain as the
/// SAXPY kernel, whatever the blocking.
#[inline]
fn micro_mrxnr(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ar, br) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (arow, &av) in acc.iter_mut().zip(ar) {
            for (ov, &bv) in arow.iter_mut().zip(br) {
                *ov += av * bv;
            }
        }
    }
}

/// Everything a worker needs to compute a span of output rows. Buffers are
/// held by `Arc` so the context can move into `'static` pool jobs.
struct KernelCtx {
    ad: ArcBuf,
    bd: ArcBuf,
    a_off: usize,
    b_off: usize,
    batch: Vec<usize>,
    sa_batch: Vec<usize>,
    sb_batch: Vec<usize>,
    m: usize,
    n: usize,
    k: usize,
    ars: usize,
    acs: usize,
    brs: usize,
    bcs: usize,
    use_dot: bool,
}

/// Computes the output rows `[start_row, start_row + chunk.len() / n)` of
/// the flattened batch×row space into `chunk`.
fn compute_rows(chunk: &mut [f32], start_row: usize, ctx: &KernelCtx) {
    let KernelCtx { m, n, .. } = *ctx;
    let rows = chunk.len() / n;
    let mut r = start_row;
    let end = start_row + rows;
    while r < end {
        // All rows of one batch matrix share their operand base offsets.
        let bi = r / m;
        let idx = shape::index_of(&ctx.batch, bi);
        let a_base = ctx.a_off + dot_idx(&idx, &ctx.sa_batch);
        let b_base = ctx.b_off + dot_idx(&idx, &ctx.sb_batch);
        let i0 = r % m;
        let i1 = (end - bi * m).min(m);
        let rows_here = i1 - i0;
        let o = &mut chunk[(r - start_row) * n..(r - start_row + rows_here) * n];
        if ctx.use_dot {
            dot_kernel(o, a_base, b_base, i0, rows_here, ctx);
        } else {
            saxpy_kernel(o, a_base, b_base, i0, rows_here, ctx);
        }
        r += rows_here;
    }
}

fn dot_idx(idx: &[usize], strides: &[usize]) -> usize {
    idx.iter().zip(strides).map(|(&i, &s)| i * s).sum()
}

/// Register-tiled kernel for unit-column-stride `B`: each 4-row ×
/// [`J_TILE`]-column block of the output accumulates in a stack array across
/// the whole `k` loop and is stored exactly once, so output rows are never
/// re-read, and each loaded `B` cache line feeds four accumulator rows.
/// Every output element accumulates `av * bv` from zero in ascending `kk`
/// order whatever the tiling, so chunk boundaries (and hence pool sizes)
/// cannot change a single bit of the result.
fn saxpy_kernel(
    o: &mut [f32],
    a_base: usize,
    b_base: usize,
    i0: usize,
    rows: usize,
    ctx: &KernelCtx,
) {
    let KernelCtx { n, k, ars, acs, brs, .. } = *ctx;
    let (ad, bd): (&[f32], &[f32]) = (&ctx.ad, &ctx.bd);
    let mut row = 0;
    while row + 3 < rows {
        let i = i0 + row;
        let mut jt = 0;
        while jt + J_TILE <= n {
            let mut acc = [[0.0f32; J_TILE]; 4];
            for kk in 0..k {
                let ab = a_base + kk * acs;
                let av = [
                    ad[ab + i * ars],
                    ad[ab + (i + 1) * ars],
                    ad[ab + (i + 2) * ars],
                    ad[ab + (i + 3) * ars],
                ];
                let bt = &bd[b_base + kk * brs + jt..b_base + kk * brs + jt + J_TILE];
                for (arow, &a) in acc.iter_mut().zip(&av) {
                    for (ov, &bv) in arow.iter_mut().zip(bt) {
                        *ov += a * bv;
                    }
                }
            }
            for (r, arow) in acc.iter().enumerate() {
                o[(row + r) * n + jt..(row + r) * n + jt + J_TILE].copy_from_slice(arow);
            }
            jt += J_TILE;
        }
        // Narrow column tail: plain per-element dot products.
        for r in 0..4 {
            for j in jt..n {
                let mut s = 0.0f32;
                for kk in 0..k {
                    s += ad[a_base + (i + r) * ars + kk * acs] * bd[b_base + kk * brs + j];
                }
                o[(row + r) * n + j] = s;
            }
        }
        row += 4;
    }
    while row < rows {
        let i = i0 + row;
        let mut jt = 0;
        while jt + J_TILE <= n {
            let mut acc = [0.0f32; J_TILE];
            for kk in 0..k {
                let av = ad[a_base + i * ars + kk * acs];
                let bt = &bd[b_base + kk * brs + jt..b_base + kk * brs + jt + J_TILE];
                for (ov, &bv) in acc.iter_mut().zip(bt) {
                    *ov += av * bv;
                }
            }
            o[row * n + jt..row * n + jt + J_TILE].copy_from_slice(&acc);
            jt += J_TILE;
        }
        for j in jt..n {
            let mut s = 0.0f32;
            for kk in 0..k {
                s += ad[a_base + i * ars + kk * acs] * bd[b_base + kk * brs + j];
            }
            o[row * n + j] = s;
        }
        row += 1;
    }
}

/// Dot-product kernel for unit-row-stride `B` (a transposed view): both the
/// `A` row and the logical `B` column are contiguous `k`-long slices.
fn dot_kernel(
    o: &mut [f32],
    a_base: usize,
    b_base: usize,
    i0: usize,
    rows: usize,
    ctx: &KernelCtx,
) {
    let KernelCtx { n, k, ars, bcs, .. } = *ctx;
    let (ad, bd): (&[f32], &[f32]) = (&ctx.ad, &ctx.bd);
    for row in 0..rows {
        let i = i0 + row;
        let arow = &ad[a_base + i * ars..a_base + i * ars + k];
        let orow = &mut o[row * n..(row + 1) * n];
        for (j, ov) in orow.iter_mut().enumerate() {
            let bcol = &bd[b_base + j * bcs..b_base + j * bcs + k];
            // Four independent accumulators keep the FMA pipeline busy; the
            // summation order is fixed per element, so chunking stays
            // bit-identical.
            let mut acc = [0.0f32; 4];
            let ca = arow.chunks_exact(4);
            let cb = bcol.chunks_exact(4);
            let mut tail = 0.0f32;
            for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
                tail += x * y;
            }
            for (x, y) in ca.zip(cb) {
                acc[0] += x[0] * y[0];
                acc[1] += x[1] * y[1];
                acc[2] += x[2] * y[2];
                acc[3] += x[3] * y[3];
            }
            *ov = (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_metrics;
    use crate::ops::{permute, transpose_last2};

    #[test]
    fn two_by_two() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular() {
        // [1,3] @ [3,2]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.data(), &[14.0, 32.0]);
    }

    #[test]
    fn batched_same_batch() {
        // Two independent 2x2 multiplications.
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn broadcast_batch_dims() {
        // a: [2,2,2] batch of two, b: [2,2] broadcast across batch.
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn matches_naive_reference() {
        // Pseudo-random but deterministic inputs.
        let a = Tensor::from_fn(&[3, 5], |i| ((i * 7 + 3) % 11) as f32 - 5.0);
        let b = Tensor::from_fn(&[5, 4], |i| ((i * 5 + 1) % 13) as f32 - 6.0);
        let c = matmul(&a, &b);
        for i in 0..3 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..5 {
                    acc += a.at(&[i, k]) * b.at(&[k, j]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn transposed_view_operand_needs_no_copy() {
        let a = Tensor::from_fn(&[4, 6], |i| (i as f32).sin());
        let b = Tensor::from_fn(&[5, 6], |i| (i as f32).cos());
        let bt = transpose_last2(&b); // [6,5] view, unit row stride
        let _scope = crate::metrics::scope();
        let c = matmul(&a, &bt);
        assert_eq!(copy_metrics::copies(), 0, "dot kernel must consume the view directly");
        for i in 0..4 {
            for j in 0..5 {
                let mut acc = 0.0;
                for k in 0..6 {
                    acc += a.at(&[i, k]) * b.at(&[j, k]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn head_split_views_multiply_without_copies() {
        // The attention layout: [B,T,H,Dh] permuted to [B,H,T,Dh].
        let x = Tensor::from_fn(&[2, 3, 2, 4], |i| ((i % 17) as f32) * 0.25 - 2.0);
        let q = permute(&x, &[0, 2, 1, 3]); // [2,2,3,4]
        let kt = transpose_last2(&q); // [2,2,4,3]
        let _scope = crate::metrics::scope();
        let scores = matmul(&q, &kt); // [2,2,3,3]
        assert_eq!(copy_metrics::copies(), 0);
        assert_eq!(scores.shape(), &[2, 2, 3, 3]);
        let scores_ref = matmul(&q.contiguous(), &kt.contiguous());
        assert!(scores.allclose(&scores_ref, 1e-5));
    }

    #[test]
    fn thread_counts_agree() {
        let a = Tensor::from_fn(&[3, 7, 9], |i| ((i * 31 + 5) % 23) as f32 - 11.0);
        let b = Tensor::from_fn(&[3, 9, 8], |i| ((i * 13 + 2) % 19) as f32 - 9.0);
        let c1 = matmul_with_threads(&a, &b, 1);
        for threads in [2, 3, 8] {
            let ct = matmul_with_threads(&a, &b, threads);
            assert_eq!(c1, ct, "thread count {threads} changed the result");
        }
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
