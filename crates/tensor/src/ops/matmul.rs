//! Batched matrix multiplication.

use crate::shape;
use crate::Tensor;

/// Batched matrix product `a @ b`.
///
/// Both operands must have rank ≥ 2. The trailing two dimensions are the
/// matrix dimensions (`[m, k] @ [k, n] -> [m, n]`); all leading dimensions
/// are batch dimensions and broadcast against each other under NumPy rules.
///
/// # Panics
///
/// Panics on rank < 2, inner-dimension mismatch, or non-broadcastable batch
/// dimensions.
///
/// # Examples
///
/// ```
/// use tsdx_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(ops::matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert!(a.rank() >= 2 && b.rank() >= 2, "matmul requires rank >= 2 operands");
    let (ash, bsh) = (a.shape(), b.shape());
    let (m, ka) = (ash[ash.len() - 2], ash[ash.len() - 1]);
    let (kb, n) = (bsh[bsh.len() - 2], bsh[bsh.len() - 1]);
    assert_eq!(ka, kb, "matmul inner dims: {:?} @ {:?}", ash, bsh);
    let k = ka;

    let batch_a = &ash[..ash.len() - 2];
    let batch_b = &bsh[..bsh.len() - 2];
    let batch = shape::broadcast(batch_a, batch_b)
        .unwrap_or_else(|| panic!("matmul batch dims do not broadcast: {ash:?} @ {bsh:?}"));
    let n_batch = shape::numel(&batch);

    // Per-batch offsets honoring broadcasting (stride 0 on expanded dims).
    let sa = shape::broadcast_strides(batch_a, &batch);
    let sb = shape::broadcast_strides(batch_b, &batch);

    let mut out_shape = batch.clone();
    out_shape.push(m);
    out_shape.push(n);
    let mut out = vec![0.0f32; n_batch * m * n];

    let ad = a.data();
    let bd = b.data();
    let (am, bm) = (m * k, k * n);

    for bi in 0..n_batch {
        let idx = shape::index_of(&batch, bi);
        let aoff = matrix_offset(&idx, &sa) * am;
        let boff = matrix_offset(&idx, &sb) * bm;
        let a_mat = &ad[aoff..aoff + am];
        let b_mat = &bd[boff..boff + bm];
        let o = &mut out[bi * m * n..(bi + 1) * m * n];
        // ikj loop order: the inner j-loop is a contiguous SAXPY.
        for i in 0..m {
            let arow = &a_mat[i * k..(i + 1) * k];
            let orow = &mut o[i * n..(i + 1) * n];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b_mat[kk * n..(kk + 1) * n];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
    }
    Tensor::from_vec(out, &out_shape)
}

/// Flat matrix index of batch coordinate `idx` under batch strides `strides`
/// (strides measured in matrices, with 0 on broadcast dims).
fn matrix_offset(idx: &[usize], strides: &[usize]) -> usize {
    idx.iter().zip(strides).map(|(&i, &s)| i * s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular() {
        // [1,3] @ [3,2]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.data(), &[14.0, 32.0]);
    }

    #[test]
    fn batched_same_batch() {
        // Two independent 2x2 multiplications.
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn broadcast_batch_dims() {
        // a: [2,2,2] batch of two, b: [2,2] broadcast across batch.
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn matches_naive_reference() {
        // Pseudo-random but deterministic inputs.
        let a = Tensor::from_fn(&[3, 5], |i| ((i * 7 + 3) % 11) as f32 - 5.0);
        let b = Tensor::from_fn(&[5, 4], |i| ((i * 5 + 1) % 13) as f32 - 6.0);
        let c = matmul(&a, &b);
        for i in 0..3 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..5 {
                    acc += a.at(&[i, k]) * b.at(&[k, j]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
