//! Batched matrix multiplication: cache-blocked, parallel, stride-aware.
//!
//! The kernel reads both operands through their `(strides, offset)` view
//! metadata, so the transposed and permuted views produced by attention
//! (`q @ kᵀ`, head split/merge) multiply directly with no materialization:
//!
//! - `B` with unit column stride (row-major matrices, head-split views) runs
//!   a k-blocked `ikj` SAXPY kernel — the inner loop is a contiguous AXPY
//!   over an output row, and blocking over `k` keeps the active slab of `B`
//!   in cache while it is reused across output rows.
//! - `B` with unit *row* stride (a `transpose_last2` view) runs a
//!   dot-product kernel where both the `A` row and the logical `B` column
//!   are contiguous slices.
//! - Anything else is materialized once with `contiguous()` and dispatched
//!   to the SAXPY kernel.
//!
//! Work is parallelized across the flattened batch×row space with scoped
//! threads. The thread count comes from the `TSDX_NUM_THREADS` environment
//! variable when set, else from the machine's available parallelism; tiny
//! problems stay on the calling thread.

use std::sync::OnceLock;

use crate::shape;
use crate::Tensor;

/// Block size over the shared dimension `k`: 64 rows of `B` at f32 keep the
/// active slab within L1/L2 for the row widths this workspace uses.
const K_BLOCK: usize = 64;

/// Below this many scalar multiply-adds, thread spawn overhead exceeds the
/// kernel time and the multiply runs on the calling thread.
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

/// The number of worker threads [`matmul`] uses: `TSDX_NUM_THREADS` if set
/// to a positive integer, else the machine's available parallelism.
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("TSDX_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Batched matrix product `a @ b`.
///
/// Both operands must have rank ≥ 2. The trailing two dimensions are the
/// matrix dimensions (`[m, k] @ [k, n] -> [m, n]`); all leading dimensions
/// are batch dimensions and broadcast against each other under NumPy rules.
/// Strided views (transposes, permutes, narrows) are consumed directly.
///
/// # Panics
///
/// Panics on rank < 2, inner-dimension mismatch, or non-broadcastable batch
/// dimensions.
///
/// # Examples
///
/// ```
/// use tsdx_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(ops::matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (ash, bsh) = (a.shape(), b.shape());
    if ash.len() >= 2 && bsh.len() >= 2 {
        // Tiny multiplies stay on the calling thread: spawn overhead would
        // dominate the kernel.
        let flops = a.numel() / ash[ash.len() - 1] * bsh[bsh.len() - 1] * ash[ash.len() - 1];
        if flops < PARALLEL_THRESHOLD {
            return matmul_with_threads(a, b, 1);
        }
    }
    matmul_with_threads(a, b, configured_threads())
}

/// [`matmul`] with an explicit worker-thread count (1 = fully sequential).
///
/// The result is bit-identical for every `threads` value: threads partition
/// the output rows, and each row is always computed by exactly one thread in
/// the same order.
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert!(a.rank() >= 2 && b.rank() >= 2, "matmul requires rank >= 2 operands");
    let (ash, bsh) = (a.shape().to_vec(), b.shape().to_vec());
    let (m, ka) = (ash[ash.len() - 2], ash[ash.len() - 1]);
    let (kb, n) = (bsh[bsh.len() - 2], bsh[bsh.len() - 1]);
    assert_eq!(ka, kb, "matmul inner dims: {ash:?} @ {bsh:?}");
    let k = ka;

    let batch_a = &ash[..ash.len() - 2];
    let batch_b = &bsh[..bsh.len() - 2];
    let batch = shape::broadcast(batch_a, batch_b)
        .unwrap_or_else(|| panic!("matmul batch dims do not broadcast: {ash:?} @ {bsh:?}"));
    let n_batch = shape::numel(&batch);

    let mut out_shape = batch.clone();
    out_shape.push(m);
    out_shape.push(n);
    let mut out = vec![0.0f32; n_batch * m * n];
    if out.is_empty() || k == 0 {
        return Tensor::from_vec(out, &out_shape);
    }

    // Pick a kernel from B's last-two-dim strides, materializing an operand
    // only when no stride pattern fits (the clones are Arc-cheap otherwise).
    let (bcs, brs) = last2_strides(b);
    let (b, use_dot) = if bcs == 1 {
        (b.clone(), false)
    } else if brs == 1 {
        (b.clone(), true)
    } else {
        (b.contiguous(), false)
    };
    let a = if use_dot && last2_strides(a).0 != 1 { a.contiguous() } else { a.clone() };

    let (acs, ars) = last2_strides(&a);
    let (bcs, brs) = last2_strides(&b);
    let sa_batch = shape::broadcast_view_strides(batch_a, &a.strides()[..batch_a.len()], &batch);
    let sb_batch = shape::broadcast_view_strides(batch_b, &b.strides()[..batch_b.len()], &batch);

    let ctx = KernelCtx {
        ad: a.raw_data(),
        bd: b.raw_data(),
        a_off: a.offset(),
        b_off: b.offset(),
        batch: &batch,
        sa_batch: &sa_batch,
        sb_batch: &sb_batch,
        m,
        n,
        k,
        ars,
        acs,
        brs,
        bcs,
        use_dot,
    };

    let total_rows = n_batch * m;
    let threads = threads.max(1).min(total_rows);
    if threads == 1 {
        compute_rows(&mut out, 0, &ctx);
    } else {
        let rows_per = total_rows.div_ceil(threads);
        std::thread::scope(|s| {
            for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let ctx = &ctx;
                s.spawn(move || compute_rows(chunk, t * rows_per, ctx));
            }
        });
    }
    Tensor::from_vec(out, &out_shape)
}

/// `(column stride, row stride)` of the trailing matrix dimensions.
fn last2_strides(t: &Tensor) -> (usize, usize) {
    let s = t.strides();
    (s[s.len() - 1], s[s.len() - 2])
}

/// Everything a worker needs to compute a span of output rows.
struct KernelCtx<'a> {
    ad: &'a [f32],
    bd: &'a [f32],
    a_off: usize,
    b_off: usize,
    batch: &'a [usize],
    sa_batch: &'a [usize],
    sb_batch: &'a [usize],
    m: usize,
    n: usize,
    k: usize,
    ars: usize,
    acs: usize,
    brs: usize,
    bcs: usize,
    use_dot: bool,
}

/// Computes the output rows `[start_row, start_row + chunk.len() / n)` of
/// the flattened batch×row space into `chunk`.
fn compute_rows(chunk: &mut [f32], start_row: usize, ctx: &KernelCtx<'_>) {
    let KernelCtx { m, n, .. } = *ctx;
    let rows = chunk.len() / n;
    let mut r = start_row;
    let end = start_row + rows;
    while r < end {
        // All rows of one batch matrix share their operand base offsets.
        let bi = r / m;
        let idx = shape::index_of(ctx.batch, bi);
        let a_base = ctx.a_off + dot_idx(&idx, ctx.sa_batch);
        let b_base = ctx.b_off + dot_idx(&idx, ctx.sb_batch);
        let i0 = r % m;
        let i1 = (end - bi * m).min(m);
        let rows_here = i1 - i0;
        let o = &mut chunk[(r - start_row) * n..(r - start_row + rows_here) * n];
        if ctx.use_dot {
            dot_kernel(o, a_base, b_base, i0, rows_here, ctx);
        } else {
            saxpy_kernel(o, a_base, b_base, i0, rows_here, ctx);
        }
        r += rows_here;
    }
}

fn dot_idx(idx: &[usize], strides: &[usize]) -> usize {
    idx.iter().zip(strides).map(|(&i, &s)| i * s).sum()
}

/// k-blocked `ikj` kernel for unit-column-stride `B`: the inner loop is a
/// contiguous AXPY over the output row, and each `K_BLOCK`-row slab of `B`
/// is reused across all `rows` output rows before moving on.
fn saxpy_kernel(
    o: &mut [f32],
    a_base: usize,
    b_base: usize,
    i0: usize,
    rows: usize,
    ctx: &KernelCtx<'_>,
) {
    let KernelCtx { ad, bd, n, k, ars, acs, brs, .. } = *ctx;
    let mut kb = 0;
    while kb < k {
        let kend = (kb + K_BLOCK).min(k);
        for row in 0..rows {
            let i = i0 + row;
            let orow = &mut o[row * n..(row + 1) * n];
            for kk in kb..kend {
                let av = ad[a_base + i * ars + kk * acs];
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[b_base + kk * brs..b_base + kk * brs + n];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
        kb = kend;
    }
}

/// Dot-product kernel for unit-row-stride `B` (a transposed view): both the
/// `A` row and the logical `B` column are contiguous `k`-long slices.
fn dot_kernel(
    o: &mut [f32],
    a_base: usize,
    b_base: usize,
    i0: usize,
    rows: usize,
    ctx: &KernelCtx<'_>,
) {
    let KernelCtx { ad, bd, n, k, ars, bcs, .. } = *ctx;
    for row in 0..rows {
        let i = i0 + row;
        let arow = &ad[a_base + i * ars..a_base + i * ars + k];
        let orow = &mut o[row * n..(row + 1) * n];
        for (j, ov) in orow.iter_mut().enumerate() {
            let bcol = &bd[b_base + j * bcs..b_base + j * bcs + k];
            *ov = arow.iter().zip(bcol).map(|(&x, &y)| x * y).sum();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_metrics;
    use crate::ops::{permute, transpose_last2};

    #[test]
    fn two_by_two() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular() {
        // [1,3] @ [3,2]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.data(), &[14.0, 32.0]);
    }

    #[test]
    fn batched_same_batch() {
        // Two independent 2x2 multiplications.
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn broadcast_batch_dims() {
        // a: [2,2,2] batch of two, b: [2,2] broadcast across batch.
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn matches_naive_reference() {
        // Pseudo-random but deterministic inputs.
        let a = Tensor::from_fn(&[3, 5], |i| ((i * 7 + 3) % 11) as f32 - 5.0);
        let b = Tensor::from_fn(&[5, 4], |i| ((i * 5 + 1) % 13) as f32 - 6.0);
        let c = matmul(&a, &b);
        for i in 0..3 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..5 {
                    acc += a.at(&[i, k]) * b.at(&[k, j]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn transposed_view_operand_needs_no_copy() {
        let a = Tensor::from_fn(&[4, 6], |i| (i as f32).sin());
        let b = Tensor::from_fn(&[5, 6], |i| (i as f32).cos());
        let bt = transpose_last2(&b); // [6,5] view, unit row stride
        let before = copy_metrics::copies();
        let c = matmul(&a, &bt);
        assert_eq!(copy_metrics::copies(), before, "dot kernel must consume the view directly");
        for i in 0..4 {
            for j in 0..5 {
                let mut acc = 0.0;
                for k in 0..6 {
                    acc += a.at(&[i, k]) * b.at(&[j, k]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn head_split_views_multiply_without_copies() {
        // The attention layout: [B,T,H,Dh] permuted to [B,H,T,Dh].
        let x = Tensor::from_fn(&[2, 3, 2, 4], |i| ((i % 17) as f32) * 0.25 - 2.0);
        let q = permute(&x, &[0, 2, 1, 3]); // [2,2,3,4]
        let kt = transpose_last2(&q); // [2,2,4,3]
        let before = copy_metrics::copies();
        let scores = matmul(&q, &kt); // [2,2,3,3]
        assert_eq!(copy_metrics::copies(), before);
        assert_eq!(scores.shape(), &[2, 2, 3, 3]);
        let scores_ref = matmul(&q.contiguous(), &kt.contiguous());
        assert!(scores.allclose(&scores_ref, 1e-5));
    }

    #[test]
    fn thread_counts_agree() {
        let a = Tensor::from_fn(&[3, 7, 9], |i| ((i * 31 + 5) % 23) as f32 - 11.0);
        let b = Tensor::from_fn(&[3, 9, 8], |i| ((i * 13 + 2) % 19) as f32 - 9.0);
        let c1 = matmul_with_threads(&a, &b, 1);
        for threads in [2, 3, 8] {
            let ct = matmul_with_threads(&a, &b, threads);
            assert_eq!(c1, ct, "thread count {threads} changed the result");
        }
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
