//! Shape-rearranging operations: permute, transpose, concat, narrow, gather.

use crate::shape;
use crate::Tensor;

/// Reorders dimensions according to `perm` (a permutation of `0..rank`).
///
/// The result is materialized contiguously.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of the dimension indices.
///
/// # Examples
///
/// ```
/// use tsdx_tensor::{ops, Tensor};
/// let t = Tensor::arange(6).reshape(&[2, 3]);
/// let p = ops::permute(&t, &[1, 0]);
/// assert_eq!(p.shape(), &[3, 2]);
/// assert_eq!(p.at(&[2, 1]), t.at(&[1, 2]));
/// ```
pub fn permute(a: &Tensor, perm: &[usize]) -> Tensor {
    let rank = a.rank();
    assert_eq!(perm.len(), rank, "permutation rank mismatch");
    let mut seen = vec![false; rank];
    for &p in perm {
        assert!(p < rank && !seen[p], "invalid permutation {perm:?}");
        seen[p] = true;
    }
    let in_shape = a.shape();
    let out_shape: Vec<usize> = perm.iter().map(|&p| in_shape[p]).collect();
    let in_strides = shape::strides(in_shape);
    // Stride to step in the *input* for each output dimension.
    let step: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
    let n = a.numel();
    let data = a.data();
    let mut out = Vec::with_capacity(n);
    let mut idx = vec![0usize; rank];
    let mut in_off = 0usize;
    for _ in 0..n {
        out.push(data[in_off]);
        for dim in (0..rank).rev() {
            idx[dim] += 1;
            in_off += step[dim];
            if idx[dim] < out_shape[dim] {
                break;
            }
            in_off -= step[dim] * out_shape[dim];
            idx[dim] = 0;
        }
    }
    Tensor::from_vec(out, &out_shape)
}

/// Swaps the last two dimensions (matrix transpose over the batch).
///
/// # Panics
///
/// Panics if `a.rank() < 2`.
pub fn transpose_last2(a: &Tensor) -> Tensor {
    let rank = a.rank();
    assert!(rank >= 2, "transpose_last2 requires rank >= 2");
    let mut perm: Vec<usize> = (0..rank).collect();
    perm.swap(rank - 2, rank - 1);
    permute(a, &perm)
}

/// Concatenates tensors along dimension `axis`.
///
/// All inputs must agree on every dimension except `axis`.
///
/// # Panics
///
/// Panics on an empty input list, mismatched shapes, or `axis` out of range.
pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
    assert!(!tensors.is_empty(), "concat of zero tensors");
    let first = tensors[0].shape();
    assert!(axis < first.len(), "concat axis out of range");
    let mut axis_total = 0;
    for t in tensors {
        let sh = t.shape();
        assert_eq!(sh.len(), first.len(), "concat rank mismatch");
        for (d, (&a, &b)) in sh.iter().zip(first).enumerate() {
            assert!(d == axis || a == b, "concat shape mismatch on dim {d}");
        }
        axis_total += sh[axis];
    }
    let mut out_shape = first.to_vec();
    out_shape[axis] = axis_total;

    let outer: usize = first[..axis].iter().product();
    let inner: usize = first[axis + 1..].iter().product();
    let mut out = Vec::with_capacity(shape::numel(&out_shape));
    for o in 0..outer {
        for t in tensors {
            let d = t.shape()[axis];
            let chunk = d * inner;
            let src = &t.data()[o * chunk..(o + 1) * chunk];
            out.extend_from_slice(src);
        }
    }
    Tensor::from_vec(out, &out_shape)
}

/// Extracts `len` consecutive slices starting at `start` along `axis`.
///
/// # Panics
///
/// Panics if the range exceeds the dimension extent.
pub fn narrow(a: &Tensor, axis: usize, start: usize, len: usize) -> Tensor {
    let sh = a.shape();
    assert!(axis < sh.len(), "narrow axis out of range");
    assert!(start + len <= sh[axis], "narrow range {start}..{} exceeds dim {}", start + len, sh[axis]);
    let outer: usize = sh[..axis].iter().product();
    let inner: usize = sh[axis + 1..].iter().product();
    let d = sh[axis];
    let mut out = Vec::with_capacity(outer * len * inner);
    let data = a.data();
    for o in 0..outer {
        let base = (o * d + start) * inner;
        out.extend_from_slice(&data[base..base + len * inner]);
    }
    let mut out_shape = sh.to_vec();
    out_shape[axis] = len;
    Tensor::from_vec(out, &out_shape)
}

/// Adjoint of [`narrow`]: scatters `grad` back into a zero tensor shaped like
/// the original input.
pub(crate) fn narrow_backward(
    grad: &Tensor,
    orig_shape: &[usize],
    axis: usize,
    start: usize,
) -> Tensor {
    let outer: usize = orig_shape[..axis].iter().product();
    let inner: usize = orig_shape[axis + 1..].iter().product();
    let d = orig_shape[axis];
    let len = grad.shape()[axis];
    let mut out = vec![0.0f32; shape::numel(orig_shape)];
    let gd = grad.data();
    for o in 0..outer {
        let dst = (o * d + start) * inner;
        let src = o * len * inner;
        out[dst..dst + len * inner].copy_from_slice(&gd[src..src + len * inner]);
    }
    Tensor::from_vec(out, orig_shape)
}

/// Stacks same-shaped tensors along a new leading dimension.
///
/// # Panics
///
/// Panics on an empty list or mismatched shapes.
pub fn stack(tensors: &[&Tensor]) -> Tensor {
    assert!(!tensors.is_empty(), "stack of zero tensors");
    let shape = tensors[0].shape();
    let mut out = Vec::with_capacity(tensors.len() * tensors[0].numel());
    for t in tensors {
        assert_eq!(t.shape(), shape, "stack shape mismatch");
        out.extend_from_slice(t.data());
    }
    let mut out_shape = vec![tensors.len()];
    out_shape.extend_from_slice(shape);
    Tensor::from_vec(out, &out_shape)
}

/// Splits a tensor into `parts` equal chunks along `axis` (inverse of a
/// same-axis [`concat`] of equal parts).
///
/// # Panics
///
/// Panics if `parts` does not divide the axis extent.
pub fn split(a: &Tensor, axis: usize, parts: usize) -> Vec<Tensor> {
    let sh = a.shape();
    assert!(axis < sh.len(), "split axis out of range");
    assert!(parts > 0 && sh[axis] % parts == 0, "{parts} parts must divide dim {}", sh[axis]);
    let chunk = sh[axis] / parts;
    (0..parts).map(|i| narrow(a, axis, i * chunk, chunk)).collect()
}

/// Gathers slices along dimension 0: `out[i] = a[indices[i]]`.
///
/// This doubles as an embedding lookup for integer token ids.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn index_select(a: &Tensor, indices: &[usize]) -> Tensor {
    let sh = a.shape();
    assert!(!sh.is_empty(), "index_select requires rank >= 1");
    let inner: usize = sh[1..].iter().product();
    let data = a.data();
    let mut out = Vec::with_capacity(indices.len() * inner);
    for &i in indices {
        assert!(i < sh[0], "index {i} out of bounds for dim {}", sh[0]);
        out.extend_from_slice(&data[i * inner..(i + 1) * inner]);
    }
    let mut out_shape = sh.to_vec();
    out_shape[0] = indices.len();
    Tensor::from_vec(out, &out_shape)
}

/// Adjoint of [`index_select`]: scatter-adds `grad` rows back to their
/// source rows (duplicated indices accumulate).
pub(crate) fn index_select_backward(grad: &Tensor, orig_shape: &[usize], indices: &[usize]) -> Tensor {
    let inner: usize = orig_shape[1..].iter().product();
    let mut out = vec![0.0f32; shape::numel(orig_shape)];
    let gd = grad.data();
    for (row, &i) in indices.iter().enumerate() {
        let dst = &mut out[i * inner..(i + 1) * inner];
        let src = &gd[row * inner..(row + 1) * inner];
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
    Tensor::from_vec(out, orig_shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permute_3d() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let p = permute(&t, &[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p.at(&[k, i, j]), t.at(&[i, j, k]));
                }
            }
        }
    }

    #[test]
    fn permute_identity_roundtrip() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        let back = permute(&permute(&t, &[1, 0]), &[1, 0]);
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic]
    fn permute_rejects_duplicates() {
        permute(&Tensor::zeros(&[2, 2]), &[0, 0]);
    }

    #[test]
    fn transpose_matrix() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = transpose_last2(&t);
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn concat_middle_axis() {
        let a = Tensor::arange(4).reshape(&[2, 1, 2]);
        let b = Tensor::from_vec(vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0], &[2, 2, 2]);
        let c = concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 3, 2]);
        assert_eq!(c.data(), &[0.0, 1.0, 10.0, 11.0, 12.0, 13.0, 2.0, 3.0, 14.0, 15.0, 16.0, 17.0]);
    }

    #[test]
    fn narrow_and_backward_roundtrip() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        let n = narrow(&t, 1, 1, 2);
        assert_eq!(n.shape(), &[3, 2]);
        assert_eq!(n.data(), &[1.0, 2.0, 5.0, 6.0, 9.0, 10.0]);
        let back = narrow_backward(&n, &[3, 4], 1, 1);
        assert_eq!(back.data(), &[0.0, 1.0, 2.0, 0.0, 0.0, 5.0, 6.0, 0.0, 0.0, 9.0, 10.0, 0.0]);
    }

    #[test]
    fn narrow_axis0() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        let n = narrow(&t, 0, 2, 1);
        assert_eq!(n.shape(), &[1, 4]);
        assert_eq!(n.data(), &[8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn index_select_and_scatter_add() {
        let t = Tensor::arange(6).reshape(&[3, 2]);
        let g = index_select(&t, &[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        let grad = Tensor::ones(&[3, 2]);
        let back = index_select_backward(&grad, &[3, 2], &[2, 0, 2]);
        // Row 2 selected twice -> accumulates to 2.
        assert_eq!(back.data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }
}
