//! Shape-rearranging operations: permute, transpose, concat, narrow, gather.
//!
//! With the strided-view execution layer, `permute`, `transpose_last2`,
//! `narrow`, `slice`, and `split` are O(1) metadata edits returning views
//! over the input's buffer — no elements move. Operations that genuinely
//! rearrange memory (`concat`, `stack`, `index_select`) materialize their
//! inputs with [`Tensor::contiguous`] where their kernels need flat slices.

use std::ops::Range;

use crate::shape;
use crate::Tensor;

/// Reorders dimensions according to `perm` (a permutation of `0..rank`).
///
/// Returns a zero-copy view: the result shares the input's buffer with
/// permuted shape and strides.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of the dimension indices.
///
/// # Examples
///
/// ```
/// use tsdx_tensor::{ops, Tensor};
/// let t = Tensor::arange(6).reshape(&[2, 3]);
/// let p = ops::permute(&t, &[1, 0]);
/// assert_eq!(p.shape(), &[3, 2]);
/// assert_eq!(p.at(&[2, 1]), t.at(&[1, 2]));
/// ```
pub fn permute(a: &Tensor, perm: &[usize]) -> Tensor {
    let rank = a.rank();
    assert_eq!(perm.len(), rank, "permutation rank mismatch");
    let mut seen = vec![false; rank];
    for &p in perm {
        assert!(p < rank && !seen[p], "invalid permutation {perm:?}");
        seen[p] = true;
    }
    let out_shape: Vec<usize> = perm.iter().map(|&p| a.shape()[p]).collect();
    let out_strides: Vec<usize> = perm.iter().map(|&p| a.strides()[p]).collect();
    Tensor::view_of(a, out_shape, out_strides, a.offset())
}

/// Swaps the last two dimensions (matrix transpose over the batch) as a
/// zero-copy view.
///
/// # Panics
///
/// Panics if `a.rank() < 2`.
pub fn transpose_last2(a: &Tensor) -> Tensor {
    let rank = a.rank();
    assert!(rank >= 2, "transpose_last2 requires rank >= 2");
    let mut perm: Vec<usize> = (0..rank).collect();
    perm.swap(rank - 2, rank - 1);
    permute(a, &perm)
}

/// Concatenates tensors along dimension `axis`.
///
/// All inputs must agree on every dimension except `axis`.
///
/// # Panics
///
/// Panics on an empty input list, mismatched shapes, or `axis` out of range.
pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
    assert!(!tensors.is_empty(), "concat of zero tensors");
    let first = tensors[0].shape();
    assert!(axis < first.len(), "concat axis out of range");
    let mut axis_total = 0;
    for t in tensors {
        let sh = t.shape();
        assert_eq!(sh.len(), first.len(), "concat rank mismatch");
        for (d, (&a, &b)) in sh.iter().zip(first).enumerate() {
            assert!(d == axis || a == b, "concat shape mismatch on dim {d}");
        }
        axis_total += sh[axis];
    }
    let mut out_shape = first.to_vec();
    out_shape[axis] = axis_total;

    // The chunk-copy kernel wants flat slices; views are gathered once here.
    let owned: Vec<Tensor> = tensors.iter().map(|t| t.contiguous()).collect();
    let outer: usize = first[..axis].iter().product();
    let inner: usize = first[axis + 1..].iter().product();
    let mut out = crate::workspace::take_reserve(shape::numel(&out_shape));
    for o in 0..outer {
        for t in &owned {
            let d = t.shape()[axis];
            let chunk = d * inner;
            let src = &t.data()[o * chunk..(o + 1) * chunk];
            out.extend_from_slice(src);
        }
    }
    Tensor::from_vec(out, &out_shape)
}

/// Extracts `len` consecutive slices starting at `start` along `axis`.
///
/// Returns a zero-copy view: only the offset and the `axis` extent change.
///
/// # Panics
///
/// Panics if the range exceeds the dimension extent.
pub fn narrow(a: &Tensor, axis: usize, start: usize, len: usize) -> Tensor {
    let sh = a.shape();
    assert!(axis < sh.len(), "narrow axis out of range");
    assert!(
        start + len <= sh[axis],
        "narrow range {start}..{} exceeds dim {}",
        start + len,
        sh[axis]
    );
    let mut out_shape = sh.to_vec();
    out_shape[axis] = len;
    let offset = a.offset() + start * a.strides()[axis];
    Tensor::view_of(a, out_shape, a.strides().to_vec(), offset)
}

/// Extracts the index range `r` along `axis` as a zero-copy view.
///
/// Sugar over [`narrow`] with a `Range` instead of start/length.
///
/// # Panics
///
/// Panics if the range is reversed or exceeds the dimension extent.
pub fn slice(a: &Tensor, axis: usize, r: Range<usize>) -> Tensor {
    assert!(r.start <= r.end, "reversed slice range {r:?}");
    narrow(a, axis, r.start, r.end - r.start)
}

/// Adjoint of [`narrow`]: scatters `grad` back into a zero tensor shaped like
/// the original input.
pub(crate) fn narrow_backward(
    grad: &Tensor,
    orig_shape: &[usize],
    axis: usize,
    start: usize,
) -> Tensor {
    let outer: usize = orig_shape[..axis].iter().product();
    let inner: usize = orig_shape[axis + 1..].iter().product();
    let d = orig_shape[axis];
    let len = grad.shape()[axis];
    let mut out = crate::workspace::take_zeroed(shape::numel(orig_shape));
    let grad = grad.contiguous();
    let gd = grad.data();
    for o in 0..outer {
        let dst = (o * d + start) * inner;
        let src = o * len * inner;
        out[dst..dst + len * inner].copy_from_slice(&gd[src..src + len * inner]);
    }
    Tensor::from_vec(out, orig_shape)
}

/// Stacks same-shaped tensors along a new leading dimension.
///
/// # Panics
///
/// Panics on an empty list or mismatched shapes.
pub fn stack(tensors: &[&Tensor]) -> Tensor {
    assert!(!tensors.is_empty(), "stack of zero tensors");
    let shape = tensors[0].shape();
    let mut out = crate::workspace::take_reserve(tensors.len() * tensors[0].numel());
    for t in tensors {
        assert_eq!(t.shape(), shape, "stack shape mismatch");
        let c = t.contiguous();
        out.extend_from_slice(c.data());
    }
    let mut out_shape = vec![tensors.len()];
    out_shape.extend_from_slice(shape);
    Tensor::from_vec(out, &out_shape)
}

/// Splits a tensor into `parts` equal chunks along `axis` (inverse of a
/// same-axis [`concat`] of equal parts). Each chunk is a zero-copy view.
///
/// # Panics
///
/// Panics if `parts` does not divide the axis extent.
pub fn split(a: &Tensor, axis: usize, parts: usize) -> Vec<Tensor> {
    let sh = a.shape();
    assert!(axis < sh.len(), "split axis out of range");
    assert!(
        parts > 0 && sh[axis].is_multiple_of(parts),
        "{parts} parts must divide dim {}",
        sh[axis]
    );
    let chunk = sh[axis] / parts;
    (0..parts).map(|i| narrow(a, axis, i * chunk, chunk)).collect()
}

/// Gathers slices along dimension 0: `out[i] = a[indices[i]]`.
///
/// This doubles as an embedding lookup for integer token ids.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn index_select(a: &Tensor, indices: &[usize]) -> Tensor {
    let sh = a.shape();
    assert!(!sh.is_empty(), "index_select requires rank >= 1");
    let inner: usize = sh[1..].iter().product();
    let a = a.contiguous();
    let data = a.data();
    let mut out = crate::workspace::take_reserve(indices.len() * inner);
    for &i in indices {
        assert!(i < sh[0], "index {i} out of bounds for dim {}", sh[0]);
        out.extend_from_slice(&data[i * inner..(i + 1) * inner]);
    }
    let mut out_shape = sh.to_vec();
    out_shape[0] = indices.len();
    Tensor::from_vec(out, &out_shape)
}

/// Adjoint of [`index_select`]: scatter-adds `grad` rows back to their
/// source rows (duplicated indices accumulate).
pub(crate) fn index_select_backward(
    grad: &Tensor,
    orig_shape: &[usize],
    indices: &[usize],
) -> Tensor {
    let inner: usize = orig_shape[1..].iter().product();
    let mut out = crate::workspace::take_zeroed(shape::numel(orig_shape));
    let grad = grad.contiguous();
    let gd = grad.data();
    for (row, &i) in indices.iter().enumerate() {
        let dst = &mut out[i * inner..(i + 1) * inner];
        let src = &gd[row * inner..(row + 1) * inner];
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
    Tensor::from_vec(out, orig_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_metrics;

    #[test]
    fn permute_3d() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let p = permute(&t, &[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p.at(&[k, i, j]), t.at(&[i, j, k]));
                }
            }
        }
    }

    #[test]
    fn permute_identity_roundtrip() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        let back = permute(&permute(&t, &[1, 0]), &[1, 0]);
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic]
    fn permute_rejects_duplicates() {
        permute(&Tensor::zeros(&[2, 2]), &[0, 0]);
    }

    #[test]
    fn view_ops_copy_nothing() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let _scope = crate::metrics::scope();
        let p = permute(&t, &[2, 0, 1]);
        let tr = transpose_last2(&t);
        let nr = narrow(&t, 1, 1, 2);
        let sl = slice(&t, 2, 1..3);
        let parts = split(&t, 2, 2);
        assert_eq!(
            copy_metrics::copies(),
            0,
            "permute/transpose/narrow/slice/split must be zero-copy views"
        );
        // The views still read the right elements.
        assert_eq!(p.at(&[3, 1, 2]), t.at(&[1, 2, 3]));
        assert_eq!(tr.at(&[0, 3, 2]), t.at(&[0, 2, 3]));
        assert_eq!(nr.at(&[1, 0, 0]), t.at(&[1, 1, 0]));
        assert_eq!(sl.at(&[0, 0, 1]), t.at(&[0, 0, 2]));
        assert_eq!(parts[1].at(&[0, 0, 0]), t.at(&[0, 0, 2]));
    }

    #[test]
    fn transpose_matrix() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = transpose_last2(&t);
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.to_vec(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn concat_middle_axis() {
        let a = Tensor::arange(4).reshape(&[2, 1, 2]);
        let b = Tensor::from_vec(vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0], &[2, 2, 2]);
        let c = concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 3, 2]);
        assert_eq!(c.data(), &[0.0, 1.0, 10.0, 11.0, 12.0, 13.0, 2.0, 3.0, 14.0, 15.0, 16.0, 17.0]);
    }

    #[test]
    fn concat_accepts_views() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        let left = narrow(&t, 1, 0, 2);
        let right = narrow(&t, 1, 2, 2);
        let c = concat(&[&left, &right], 1);
        assert_eq!(c, t);
    }

    #[test]
    fn narrow_and_backward_roundtrip() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        let n = narrow(&t, 1, 1, 2);
        assert_eq!(n.shape(), &[3, 2]);
        assert_eq!(n.to_vec(), &[1.0, 2.0, 5.0, 6.0, 9.0, 10.0]);
        let back = narrow_backward(&n, &[3, 4], 1, 1);
        assert_eq!(back.data(), &[0.0, 1.0, 2.0, 0.0, 0.0, 5.0, 6.0, 0.0, 0.0, 9.0, 10.0, 0.0]);
    }

    #[test]
    fn narrow_axis0() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        let n = narrow(&t, 0, 2, 1);
        assert_eq!(n.shape(), &[1, 4]);
        // An axis-0 narrow of a contiguous tensor is itself contiguous.
        assert!(n.is_contiguous());
        assert_eq!(n.data(), &[8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn index_select_and_scatter_add() {
        let t = Tensor::arange(6).reshape(&[3, 2]);
        let g = index_select(&t, &[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        let grad = Tensor::ones(&[3, 2]);
        let back = index_select_backward(&grad, &[3, 2], &[2, 0, 2]);
        // Row 2 selected twice -> accumulates to 2.
        assert_eq!(back.data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }
}
