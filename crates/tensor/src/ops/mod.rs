//! Pure (non-autograd) tensor operations.
//!
//! Every function here is a pure forward computation: inputs are borrowed,
//! a fresh [`Tensor`](crate::Tensor) is returned. The autograd layer in
//! [`Graph`](crate::Graph) builds on these kernels and adds the corresponding
//! backward rules.

mod attention;
mod conv;
mod elementwise;
mod loss;
mod matmul;
mod norm;
mod reduce;
mod shapeops;

pub use attention::{attention, attention_backward};
pub use conv::{
    avg_pool2d, avg_pool2d_backward, col2im, conv2d, im2col, max_pool2d, max_pool2d_backward,
    pad2d, Conv2dSpec,
};
pub use elementwise::{
    add, add_assign, add_scalar, binary_broadcast, div, exp, gelu, gelu_backward, ln, mul, neg,
    relu, relu_backward, scale, sigmoid, sqrt, sub, tanh, unbroadcast,
};
pub use loss::{
    bce_with_logits, bce_with_logits_backward, cross_entropy_logits, cross_entropy_logits_backward,
};
pub use matmul::{configured_threads, matmul, matmul_unpacked, matmul_with_threads};
pub use norm::layer_norm_forward;
pub use reduce::{
    argmax_last, log_softmax_last, max_axis, mean_all, mean_axis, softmax_last, sum_all, sum_axis,
};
pub use shapeops::{concat, index_select, narrow, permute, slice, split, stack, transpose_last2};

pub(crate) use reduce::{log_softmax_last_backward, softmax_last_backward};
pub(crate) use shapeops::{index_select_backward, narrow_backward};
