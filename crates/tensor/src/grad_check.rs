//! Numerical gradient checking utilities.
//!
//! These are the workhorse of the test suite: any differentiable function
//! built on a [`crate::Graph`] can be validated against a
//! central-difference approximation.

use crate::{Graph, Tensor, Var};

/// Result of a gradient check: the largest absolute and relative errors seen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numerical gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by magnitude, floored at 1).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True when both error measures are under `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Checks the analytic gradient of `f` at `inputs` against central
/// differences.
///
/// `f` receives a fresh [`Graph`] and leaf [`Var`]s for each input (in the
/// same order) and must return a scalar loss variable. `eps` is the
/// perturbation step (1e-2..1e-3 works well in `f32`).
///
/// Returns one report per input tensor.
///
/// # Panics
///
/// Panics if `f` does not return a scalar, or if any analytic gradient is
/// missing for an input.
pub fn check_gradients(
    inputs: &[Tensor],
    eps: f32,
    f: impl Fn(&mut Graph, &[Var]) -> Var,
) -> Vec<GradCheckReport> {
    // Analytic pass.
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.leaf(t.clone())).collect();
    let loss = f(&mut g, &vars);
    let grads = g.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .map(|&v| grads.get(v).cloned().unwrap_or_else(|| panic!("missing gradient for input")))
        .collect();

    let eval = |perturbed: &[Tensor]| -> f32 {
        let mut g = Graph::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| g.leaf(t.clone())).collect();
        let loss = f(&mut g, &vars);
        g.value(loss).item()
    };

    let mut reports = Vec::with_capacity(inputs.len());
    for (ti, t) in inputs.iter().enumerate() {
        let mut max_abs: f32 = 0.0;
        let mut max_rel: f32 = 0.0;
        for i in 0..t.numel() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            let mut minus: Vec<Tensor> = inputs.to_vec();
            plus[ti].data_mut()[i] += eps;
            minus[ti].data_mut()[i] -= eps;
            let num = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let ana = analytic[ti].data()[i];
            let abs = (num - ana).abs();
            let rel = abs / num.abs().max(ana.abs()).max(1.0);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
        reports.push(GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel });
    }
    reports
}

/// Asserts that every input's gradient check passes with tolerance `tol`.
///
/// # Panics
///
/// Panics with a diagnostic when any check fails.
pub fn assert_gradients(
    inputs: &[Tensor],
    eps: f32,
    tol: f32,
    f: impl Fn(&mut Graph, &[Var]) -> Var,
) {
    let reports = check_gradients(inputs, eps, f);
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.passes(tol),
            "gradient check failed for input {i}: abs={} rel={} (tol={tol})",
            r.max_abs_err,
            r.max_rel_err
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Conv2dSpec;

    fn pseudo(shape: &[usize], seed: u32) -> Tensor {
        // Deterministic pseudo-random values in roughly [-1, 1].
        Tensor::from_fn(shape, |i| {
            let x = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(seed.wrapping_mul(40_503));
            ((x >> 8) as f32 / (1u32 << 24) as f32) * 2.0 - 1.0
        })
    }

    #[test]
    fn elementwise_composite() {
        let x = pseudo(&[2, 3], 1);
        let y = pseudo(&[2, 3], 2);
        assert_gradients(&[x, y], 1e-2, 1e-2, |g, v| {
            let p = g.mul(v[0], v[1]);
            let q = g.tanh(p);
            let r = g.sigmoid(v[0]);
            let s = g.add(q, r);
            g.mean_all(s)
        });
    }

    #[test]
    fn division_and_exp() {
        let x = pseudo(&[4], 3).map(|v| v + 2.5); // keep away from zero
        let y = pseudo(&[4], 4).map(|v| v + 3.0);
        assert_gradients(&[x, y], 1e-3, 1e-2, |g, v| {
            let d = g.div(v[0], v[1]);
            let e = g.exp(d);
            g.sum_all(e)
        });
    }

    #[test]
    fn matmul_chain() {
        let a = pseudo(&[3, 4], 5);
        let b = pseudo(&[4, 2], 6);
        assert_gradients(&[a, b], 1e-2, 1e-2, |g, v| {
            let c = g.matmul(v[0], v[1]);
            let r = g.relu(c);
            g.sum_all(r)
        });
    }

    #[test]
    fn softmax_and_log_softmax() {
        let x = pseudo(&[2, 5], 7);
        assert_gradients(std::slice::from_ref(&x), 1e-2, 1e-2, |g, v| {
            let s = g.softmax_last(v[0]);
            let sq = g.mul(s, s);
            g.sum_all(sq)
        });
        assert_gradients(&[x], 1e-2, 1e-2, |g, v| {
            let s = g.log_softmax_last(v[0]);
            g.mean_all(s)
        });
    }

    #[test]
    fn layer_norm_all_three_grads() {
        let x = pseudo(&[3, 6], 8);
        let gamma = pseudo(&[6], 9).map(|v| v + 1.5);
        let beta = pseudo(&[6], 10);
        assert_gradients(&[x, gamma, beta], 1e-2, 2e-2, |g, v| {
            let y = g.layer_norm(v[0], v[1], v[2], 1e-5);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        });
    }

    #[test]
    fn shape_ops_grads() {
        let x = pseudo(&[2, 3, 4], 11);
        assert_gradients(&[x], 1e-2, 1e-2, |g, v| {
            let p = g.permute(v[0], &[2, 0, 1]);
            let r = g.reshape(p, &[4, 6]);
            let n = g.narrow(r, 1, 1, 3);
            let t = g.transpose_last2(n);
            g.sum_all(t)
        });
    }

    #[test]
    fn concat_and_index_select_grads() {
        let a = pseudo(&[2, 3], 12);
        let b = pseudo(&[2, 3], 13);
        assert_gradients(&[a, b], 1e-2, 1e-2, |g, v| {
            let c = g.concat(&[v[0], v[1]], 0); // [4,3]
            let sel = g.index_select(c, &[0, 3, 3]);
            let sq = g.mul(sel, sel);
            g.sum_all(sq)
        });
    }

    #[test]
    fn reductions_grads() {
        let x = pseudo(&[3, 4], 14);
        assert_gradients(&[x], 1e-2, 1e-2, |g, v| {
            let s = g.sum_axis(v[0], 0, false);
            let m = g.mean_axis(v[0], 1, true);
            let ms = g.sum_all(m);
            let ss = g.sum_all(s);
            let sq = g.mul(ss, ss);
            g.add(sq, ms)
        });
    }

    #[test]
    fn cross_entropy_grad() {
        let logits = pseudo(&[3, 4], 15);
        assert_gradients(&[logits], 1e-2, 1e-2, |g, v| g.cross_entropy(v[0], &[1, 0, 3]));
    }

    #[test]
    fn bce_grad() {
        let logits = pseudo(&[2, 3], 16);
        let targets = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0], &[2, 3]);
        assert_gradients(&[logits], 1e-2, 1e-2, |g, v| g.bce_logits(v[0], &targets));
    }

    #[test]
    fn conv_and_pool_grads() {
        let x = pseudo(&[1, 2, 4, 4], 17);
        let w = pseudo(&[3, 2, 3, 3], 18);
        assert_gradients(&[x, w], 1e-2, 2e-2, |g, v| {
            let c = g.conv2d(v[0], v[1], Conv2dSpec::new(3, 1, 1));
            let r = g.relu(c);
            let p = g.avg_pool2d(r, 2);
            g.sum_all(p)
        });
    }

    #[test]
    fn gelu_composite_grad() {
        let x = pseudo(&[2, 4], 19);
        assert_gradients(&[x], 1e-2, 1e-2, |g, v| {
            let y = g.gelu(v[0]);
            g.mean_all(y)
        });
    }
}
