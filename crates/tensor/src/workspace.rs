//! Thread-local workspace-reuse allocator for kernel and tape buffers.
//!
//! The fwd/bwd hot path allocates and frees the same few dozen buffer
//! shapes every step (activation tensors, gradient accumulators, GEMM
//! packing panels, attention score rows). Those buffers are large enough
//! that the system allocator serves them with `mmap`/`munmap` pairs, so
//! every step pays page faults for memory it just released. This module
//! keeps freed buffers in a **thread-local, size-bucketed arena** and hands
//! them back to the next request of a compatible size.
//!
//! Design points (DESIGN.md §6.5):
//!
//! - **Buckets by power of two.** A freed `Vec<f32>` is filed under
//!   `floor(log2(capacity))`, so every vector in bucket `j` has capacity
//!   ≥ `2^j`. A request for `n` elements searches the bucket of
//!   `next_power_of_two(n)` (and the one above), guaranteeing any hit can
//!   hold `n` elements without reallocating.
//! - **Determinism contract.** Recycled memory is never observable:
//!   [`take_zeroed`]/[`take_filled`] overwrite every element before
//!   returning, and [`take_uninit`] is reserved for call sites that
//!   provably write every element before reading any. Results are
//!   therefore bit-identical with the arena on or off.
//! - **RAII.** Tensor buffers live in a [`Buffer`] whose `Drop` returns
//!   the allocation to the arena of whichever thread drops it; kernel
//!   scratch uses the [`Scratch`] guard, which returns its buffer even on
//!   panic unwind.
//! - **Kill switch.** `TSDX_WORKSPACE=0` (read once per process) disables
//!   recycling entirely; [`with_mode`] overrides it per thread so one
//!   process can A/B both modes (the parity and allocation-regression
//!   tests do exactly that).
//! - **Observability.** `workspace/hit`, `workspace/miss`, and
//!   `workspace/bytes_recycled` count into every open [`crate::metrics`]
//!   scope; the `profile` binary prints them.
//!
//! The arena is bounded (per-bucket entry cap and a total byte cap per
//! thread); overflow simply frees to the system allocator.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::metrics;

/// Smallest recycled allocation, in elements (2^6 × 4 B = 256 B). Smaller
/// vectors are cheaper to malloc than to bucket.
const MIN_CLASS: u32 = 6;
/// Largest recycled allocation class (2^26 elements = 256 MiB).
const MAX_CLASS: u32 = 26;
const BUCKETS: usize = (MAX_CLASS - MIN_CLASS + 1) as usize;
/// At most this many free vectors per bucket. The autograd tape keeps every
/// activation of a training step alive until the graph drops, so the whole
/// step's buffer population of a class floods back at once and must fit here
/// to be reusable next step; `TOTAL_BYTE_CAP` is the real memory bound.
const PER_BUCKET_CAP: usize = 512;
/// At most this many free bytes per thread arena.
const TOTAL_BYTE_CAP: usize = 192 << 20;

struct Arena {
    buckets: [Vec<Vec<f32>>; BUCKETS],
    free_bytes: usize,
}

impl Arena {
    const fn new() -> Self {
        Arena { buckets: [const { Vec::new() }; BUCKETS], free_bytes: 0 }
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = const { RefCell::new(Arena::new()) };
    /// Per-thread override of the process-wide kill switch (tests).
    static FORCED_MODE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Steady-state arena effectiveness, readable without a metrics scope (the
/// `profile` binary and the allocation-regression test use these).
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BYTES_RECYCLED: AtomicU64 = AtomicU64::new(0);

fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("TSDX_WORKSPACE").map_or(true, |v| v != "0"))
}

/// True when buffer recycling is active on this thread: the
/// `TSDX_WORKSPACE` kill switch (read once per process; `0` disables),
/// unless overridden by [`with_mode`].
pub fn enabled() -> bool {
    FORCED_MODE.with(|f| f.get()).unwrap_or_else(env_enabled)
}

/// Runs `f` with recycling forced on or off **on this thread**, restoring
/// the previous mode afterwards (also on panic).
///
/// `TSDX_WORKSPACE` is read once per process, so tests that need to compare
/// both modes in one process use this instead of `set_var`. The mode only
/// changes where buffers come from and go to — never their contents — so
/// results are bit-identical across modes by construction.
pub fn with_mode<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_MODE.with(|f| f.set(self.0));
        }
    }
    let _restore = Restore(FORCED_MODE.with(|f| f.replace(Some(enabled))));
    f()
}

/// Lifetime totals: `(hits, misses, bytes_recycled)` across all threads.
pub fn stats() -> (u64, u64, u64) {
    (
        HITS.load(Ordering::Relaxed),
        MISSES.load(Ordering::Relaxed),
        BYTES_RECYCLED.load(Ordering::Relaxed),
    )
}

/// Bucket index for a capacity: `floor(log2(cap))`, clamped to the class
/// range; `None` when the capacity is too small or too large to recycle.
fn bucket_of_capacity(cap: usize) -> Option<usize> {
    if cap == 0 {
        return None;
    }
    let class = usize::BITS - 1 - cap.leading_zeros(); // floor(log2)
    (MIN_CLASS..=MAX_CLASS).contains(&class).then(|| (class - MIN_CLASS) as usize)
}

/// Bucket index that can satisfy a request for `n` elements:
/// `ceil(log2(n))` (so every resident vector's capacity covers `n`).
fn bucket_of_request(n: usize) -> Option<usize> {
    let class = (usize::BITS - n.next_power_of_two().leading_zeros() - 1).max(MIN_CLASS);
    (class <= MAX_CLASS).then(|| (class - MIN_CLASS) as usize)
}

/// Pops a free vector able to hold `n` elements, or `None` on miss. Hits
/// and misses are counted here so every `take_*` flavor shares the
/// bookkeeping.
fn pop(n: usize) -> Option<Vec<f32>> {
    if n == 0 || !enabled() {
        return None;
    }
    let hit = bucket_of_request(n).and_then(|b| {
        ARENA
            .try_with(|a| {
                let a = &mut *a.borrow_mut();
                // Returned buffers live at floor(log2(capacity)) while
                // requests look from ceil(log2(n)), so a buffer whose
                // capacity is not a power of two sits one class *below*
                // where same-size requests start. Peek that class first —
                // under the LIFO discipline its most recent entry is
                // typically the exact buffer a same-size round-trip just
                // returned — taking it only when it genuinely fits.
                if b > 0 && a.buckets[b - 1].last().is_some_and(|v| v.capacity() >= n) {
                    let v = a.buckets[b - 1].pop().expect("peeked entry");
                    a.free_bytes -= v.capacity() * 4;
                    return Some(v);
                }
                // Then the guaranteed-fit classes: exact, and one above
                // (covers requests that straddle a power of two without
                // fragmenting).
                for idx in [Some(b), (b + 1 < BUCKETS).then_some(b + 1)].into_iter().flatten() {
                    if let Some(v) = a.buckets[idx].pop() {
                        a.free_bytes -= v.capacity() * 4;
                        return Some(v);
                    }
                }
                None
            })
            .ok()
            .flatten()
    });
    match &hit {
        Some(_) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            BYTES_RECYCLED.fetch_add(n as u64 * 4, Ordering::Relaxed);
            metrics::counter_add("workspace/hit", 1);
            metrics::counter_add("workspace/bytes_recycled", n as u64 * 4);
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            metrics::counter_add("workspace/miss", 1);
        }
    }
    hit
}

/// Capacity for a miss-path allocation: rounded up to the size class's
/// power of two whenever the arena could later adopt the buffer, so that
/// `bucket_of_capacity` on [`give`] files it into exactly the class
/// [`bucket_of_request`] searches. Without the rounding, a buffer of
/// non-power-of-two capacity lands at floor(log2) — one class below where
/// same-size requests look — and never recycles.
fn miss_capacity(n: usize) -> usize {
    if enabled() && bucket_of_request(n).is_some() {
        n.next_power_of_two().max(1 << MIN_CLASS)
    } else {
        n
    }
}

/// A buffer of `n` zeros (bit-identical to `vec![0.0; n]`).
pub(crate) fn take_zeroed(n: usize) -> Vec<f32> {
    take_filled(n, 0.0)
}

/// A buffer of `n` copies of `fill`.
pub(crate) fn take_filled(n: usize, fill: f32) -> Vec<f32> {
    match pop(n) {
        Some(mut v) => {
            v.clear();
            v.resize(n, fill);
            v
        }
        None => {
            let mut v = Vec::with_capacity(miss_capacity(n));
            v.resize(n, fill);
            v
        }
    }
}

/// A buffer of length `n` with **arbitrary (but initialized) contents**:
/// recycled buffers keep their stale values. Only for call sites that
/// overwrite every element before any element is read — otherwise results
/// would depend on the arena state and break the determinism contract.
pub(crate) fn take_uninit(n: usize) -> Vec<f32> {
    match pop(n) {
        Some(mut v) => {
            if v.len() >= n {
                v.truncate(n);
            } else {
                v.resize(n, 0.0);
            }
            v
        }
        None => {
            let mut v = Vec::with_capacity(miss_capacity(n));
            v.resize(n, 0.0);
            v
        }
    }
}

/// An **empty** buffer with capacity for at least `n` elements, for
/// `push`/`extend` assembly (the workspace analogue of
/// `Vec::with_capacity`).
pub(crate) fn take_reserve(n: usize) -> Vec<f32> {
    match pop(n) {
        Some(mut v) => {
            v.clear();
            v
        }
        None => Vec::with_capacity(miss_capacity(n)),
    }
}

/// Returns a no-longer-needed buffer to this thread's arena (or frees it
/// when recycling is off, the size is out of range, or the arena is full).
pub(crate) fn give(v: Vec<f32>) {
    if !enabled() {
        return; // drop: freed to the system allocator
    }
    let Some(bucket) = bucket_of_capacity(v.capacity()) else {
        return;
    };
    let bytes = v.capacity() * 4;
    // try_with: during thread teardown the arena TLS may already be gone;
    // dropping the vector normally is always correct.
    let _ = ARENA.try_with(|a| {
        let a = &mut *a.borrow_mut();
        if a.buckets[bucket].len() < PER_BUCKET_CAP && a.free_bytes + bytes <= TOTAL_BYTE_CAP {
            a.free_bytes += bytes;
            a.buckets[bucket].push(v);
        }
    });
}

/// The reference-counted backing store of every [`crate::Tensor`]: a plain
/// `Vec<f32>` whose allocation returns to the dropping thread's arena when
/// the last reference goes away. Dereferences to the full `[f32]` slice.
pub(crate) struct Buffer {
    data: Vec<f32>,
}

/// Shared tensor storage. Parallel kernels move clones of this into
/// `'static` pool jobs instead of borrowing the tensor.
pub(crate) type ArcBuf = Arc<Buffer>;

impl Buffer {
    pub(crate) fn new(data: Vec<f32>) -> Self {
        Buffer { data }
    }

    /// A private copy of the contents (the copy-on-write slow path).
    pub(crate) fn duplicate(&self) -> Buffer {
        let mut v = take_uninit(self.data.len());
        v.copy_from_slice(&self.data);
        Buffer { data: v }
    }

    /// Takes the underlying vector out; the emptied `Buffer` recycles
    /// nothing on drop.
    pub(crate) fn into_inner(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }
}

impl std::ops::Deref for Buffer {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        give(std::mem::take(&mut self.data));
    }
}

/// RAII kernel scratch: a workspace buffer that returns to the arena when
/// the guard drops (including on panic unwind). Dereferences to `[f32]`.
pub(crate) struct Scratch {
    data: Vec<f32>,
}

impl Scratch {
    /// Scratch of `n` zeros.
    pub(crate) fn zeroed(n: usize) -> Self {
        Scratch { data: take_zeroed(n) }
    }

    /// Scratch of length `n` with arbitrary initialized contents; see
    /// [`take_uninit`] for the overwrite-before-read obligation.
    pub(crate) fn uninit(n: usize) -> Self {
        Scratch { data: take_uninit(n) }
    }
}

impl std::ops::Deref for Scratch {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl std::ops::DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        give(std::mem::take(&mut self.data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_the_allocation() {
        with_mode(true, || {
            let v = take_zeroed(1024);
            let p = v.as_ptr();
            give(v);
            let v2 = take_zeroed(1000); // same power-of-two class
            assert_eq!(v2.as_ptr(), p, "a compatible request must reuse the freed buffer");
            assert!(v2.iter().all(|&x| x == 0.0));
            assert_eq!(v2.len(), 1000);
        });
    }

    #[test]
    fn take_zeroed_zeroes_recycled_garbage() {
        with_mode(true, || {
            let mut v = take_uninit(512);
            v.iter_mut().for_each(|x| *x = f32::NAN);
            give(v);
            assert!(take_zeroed(512).iter().all(|&x| x == 0.0));
        });
    }

    #[test]
    fn take_filled_fills_every_element() {
        with_mode(true, || {
            let mut v = take_uninit(300);
            v.iter_mut().for_each(|x| *x = 7.0);
            give(v);
            let f = take_filled(300, 2.5);
            assert_eq!(f.len(), 300);
            assert!(f.iter().all(|&x| x == 2.5));
        });
    }

    #[test]
    fn disabled_mode_never_recycles() {
        // A give under disabled mode frees instead of filing, so the next
        // take in this thread's (fresh, test-private) arena must miss.
        with_mode(false, || give(take_zeroed(2048)));
        with_mode(true, || {
            let scope = metrics::scope();
            let _v = take_zeroed(2048);
            let snap = scope.snapshot();
            assert_eq!(snap.counter("workspace/hit"), 0, "disabled give must not file the buffer");
            assert_eq!(snap.counter("workspace/miss"), 1);
        });
    }

    #[test]
    fn scratch_guard_returns_on_drop() {
        with_mode(true, || {
            let p = {
                let s = Scratch::zeroed(4096);
                s.as_ptr()
            };
            let v = take_zeroed(4096);
            assert_eq!(v.as_ptr(), p, "scratch must return its buffer to the arena");
        });
    }

    #[test]
    fn tiny_and_huge_requests_bypass_the_arena() {
        with_mode(true, || {
            give(Vec::with_capacity(8)); // below MIN_CLASS: freed
            let v = take_reserve(8);
            assert!(v.capacity() < 64 || v.capacity() >= 8);
        });
    }
}
