//! The dense, contiguous, row-major `f32` tensor value type.

use std::fmt;
use std::sync::Arc;

use crate::shape;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` has value semantics: operations return new tensors and never
/// mutate their inputs. Cloning is cheap — the buffer is behind an [`Arc`]
/// and is copied lazily on mutation ([`Tensor::data_mut`]).
///
/// # Examples
///
/// ```
/// use tsdx_tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the element count of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape::numel(shape),
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape: shape.to_vec(), data: Arc::new(data) }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(vec![v], &[])
    }

    /// Creates a tensor filled with `v`.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Tensor::from_vec(vec![v; shape::numel(shape)], shape)
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = shape::numel(shape);
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            data.push(f(i));
        }
        Tensor::from_vec(data, shape)
    }

    /// Creates a rank-1 tensor holding `0.0, 1.0, ..., (n-1).0`.
    pub fn arange(n: usize) -> Self {
        Tensor::from_fn(&[n], |i| i as f32)
    }

    /// The dimension extents of this tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        shape::numel(&self.shape)
    }

    /// The extent of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.rank()`.
    pub fn dim(&self, dim: usize) -> usize {
        self.shape[dim]
    }

    /// Read-only view of the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer, copying if the buffer is shared.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor, returning its flat buffer (cloning if shared).
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Element at a multi-dimensional `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or coordinates are invalid.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[shape::offset_of(&self.shape, index)]
    }

    /// Sets the element at `index` to `v`.
    pub fn set(&mut self, index: &[usize], v: f32) {
        let off = shape::offset_of(&self.shape, index);
        self.data_mut()[off] = v;
    }

    /// The value of a scalar (single-element) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a single-element tensor, shape {:?}", self.shape);
        self.data[0]
    }

    /// Returns a tensor with the same buffer and a new shape.
    ///
    /// A `usize::MAX` entry acts as a wildcard inferred from the remaining
    /// extents (at most one wildcard).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ or inference is impossible.
    pub fn reshape(&self, new_shape: &[usize]) -> Tensor {
        let resolved = resolve_wildcard(new_shape, self.numel());
        assert_eq!(
            shape::numel(&resolved),
            self.numel(),
            "reshape from {:?} to {:?} changes element count",
            self.shape,
            resolved
        );
        Tensor { shape: resolved, data: Arc::clone(&self.data) }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.data.iter().map(|&x| f(x)).collect(), &self.shape)
    }

    /// Combines two same-shaped tensors elementwise (no broadcasting; see
    /// [`crate::ops`] for broadcasting arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip requires identical shapes");
        Tensor::from_vec(
            self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
            &self.shape,
        )
    }

    /// True when all elements of `self` and `other` differ by at most `tol`.
    ///
    /// Shapes must match exactly; returns `false` otherwise.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`NaN` for empty tensors).
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element (`-inf` for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// True if any element is `NaN` or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Default for Tensor {
    /// The scalar `0.0`.
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

fn resolve_wildcard(shape: &[usize], numel: usize) -> Vec<usize> {
    let wilds = shape.iter().filter(|&&d| d == usize::MAX).count();
    assert!(wilds <= 1, "at most one wildcard dimension allowed in reshape");
    if wilds == 0 {
        return shape.to_vec();
    }
    let known: usize = shape.iter().filter(|&&d| d != usize::MAX).product();
    assert!(known > 0 && numel.is_multiple_of(known), "cannot infer wildcard dimension for {numel} elements");
    shape.iter().map(|&d| if d == usize::MAX { numel / known } else { d }).collect()
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ", self.shape)?;
        const LIMIT: usize = 16;
        if self.numel() <= LIMIT {
            write!(f, "{:?}", &self.data[..])
        } else {
            write!(f, "{:?}...", &self.data[..LIMIT])
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f32> for Tensor {
    fn from(v: f32) -> Self {
        Tensor::scalar(v)
    }
}

impl From<Vec<f32>> for Tensor {
    /// Builds a rank-1 tensor from a flat vector.
    fn from(v: Vec<f32>) -> Self {
        let n = v.len();
        Tensor::from_vec(v, &[n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.dim(1), 3);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_wrong_length() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn clone_is_cow() {
        let a = Tensor::zeros(&[4]);
        let mut b = a.clone();
        b.set(&[0], 9.0);
        assert_eq!(a.at(&[0]), 0.0);
        assert_eq!(b.at(&[0]), 9.0);
    }

    #[test]
    fn reshape_shares_buffer_and_infers_wildcard() {
        let t = Tensor::arange(12);
        let r = t.reshape(&[3, usize::MAX]);
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.at(&[2, 3]), 11.0);
    }

    #[test]
    #[should_panic]
    fn reshape_rejects_bad_count() {
        Tensor::arange(12).reshape(&[5, 3]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn allclose_tolerates_small_diffs() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0 + 1e-7, 2.0], &[2]);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b.reshape(&[2, 1]), 1e-5));
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[11.0, 22.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.set(&[1], f32::NAN);
        assert!(t.has_non_finite());
    }
}
