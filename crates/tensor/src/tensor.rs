//! The dense, row-major `f32` tensor value type with strided views.

use std::fmt;
use std::sync::Arc;

use crate::shape;
use crate::workspace::{self, ArcBuf, Buffer};

/// Scoped counting of buffer materializations.
///
/// Every time a tensor's elements are physically copied to satisfy a layout
/// requirement (a `contiguous()` gather, a copy-on-write in
/// [`Tensor::data_mut`], a reshape of a non-contiguous view), the counter
/// [`KEY`](copy_metrics::KEY) increments in every open [`crate::metrics`]
/// scope on the calling thread. View operations — `reshape` of contiguous
/// tensors, `permute`, `transpose`, `narrow`, `slice`, `split` — must not
/// move data and therefore must not bump this counter; tests assert exactly
/// that by opening a fresh scope and asserting the absolute count, which
/// cannot race with concurrently running tests (scopes are thread-local).
pub mod copy_metrics {
    use crate::metrics;

    /// Metric key under which buffer materializations are counted.
    pub const KEY: &str = "tensor/copies";

    /// Number of buffer materializations observed by the innermost open
    /// [`crate::metrics`] scope on this thread (0 when no scope is open).
    ///
    /// Open a fresh [`metrics::scope`] around the code under test and read
    /// the absolute value — never diff two reads of an ambient counter.
    pub fn copies() -> usize {
        metrics::current_counter(KEY) as usize
    }

    // Copies are recorded on the thread that calls the op — the parallel
    // matmul materializes operands before dispatching to workers.
    pub(crate) fn record_copy() {
        metrics::counter_add(KEY, 1);
    }
}

/// A dense, row-major tensor of `f32` values, possibly a strided view.
///
/// `Tensor` has value semantics: operations return new tensors and never
/// mutate their inputs. Cloning is cheap — the buffer is behind an [`Arc`]
/// and is copied lazily on mutation ([`Tensor::data_mut`]).
///
/// A tensor is a `(shape, strides, offset)` window over its shared buffer.
/// Freshly constructed tensors are contiguous; layout ops like `permute` and
/// `narrow` return views that reinterpret the same buffer without copying.
/// Kernels that need a flat slice call [`Tensor::contiguous`] (cheap when
/// already contiguous) or read through the stride metadata directly.
///
/// # Examples
///
/// ```
/// use tsdx_tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// ```
#[derive(Clone)]
pub struct Tensor {
    shape: Vec<usize>,
    strides: Vec<usize>,
    offset: usize,
    data: ArcBuf,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the element count of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape::numel(shape),
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            strides: shape::strides(shape),
            offset: 0,
            data: Arc::new(Buffer::new(data)),
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(vec![v], &[])
    }

    /// Creates a tensor filled with `v`.
    ///
    /// The buffer comes from the [`crate::workspace`] arena when recycling
    /// is on; the fresh-allocation path is `vec![v; n]`, which for `0.0`
    /// the allocator serves from calloc-backed zero pages instead of a
    /// push-loop.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Tensor::from_vec(workspace::take_filled(shape::numel(shape), v), shape)
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = shape::numel(shape);
        let mut data = workspace::take_reserve(n);
        for i in 0..n {
            data.push(f(i));
        }
        Tensor::from_vec(data, shape)
    }

    /// Creates a rank-1 tensor holding `0.0, 1.0, ..., (n-1).0`.
    pub fn arange(n: usize) -> Self {
        Tensor::from_fn(&[n], |i| i as f32)
    }

    /// Builds a view over `base`'s buffer with explicit layout metadata.
    ///
    /// Callers (the shape ops) are responsible for choosing `shape`,
    /// `strides`, and `offset` such that every reachable element lies inside
    /// the buffer; this is checked in debug builds.
    pub(crate) fn view_of(
        base: &Tensor,
        shape: Vec<usize>,
        strides: Vec<usize>,
        offset: usize,
    ) -> Tensor {
        debug_assert_eq!(shape.len(), strides.len(), "view rank mismatch");
        debug_assert!(
            shape::numel(&shape) == 0
                || offset + shape.iter().zip(&strides).map(|(&d, &s)| (d - 1) * s).sum::<usize>()
                    < base.data.len(),
            "view escapes buffer: shape {shape:?} strides {strides:?} offset {offset}"
        );
        Tensor { shape, strides, offset, data: Arc::clone(&base.data) }
    }

    /// The dimension extents of this tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The per-dimension element strides into the backing buffer.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// The starting offset of this view in the backing buffer.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The backing buffer, ignoring this view's window. Kernels that walk
    /// strides index `raw_data()[offset + Σ idxᵢ·strideᵢ]`.
    pub(crate) fn raw_data(&self) -> &[f32] {
        &self.data
    }

    /// A cheap `Arc` clone of the backing buffer. Parallel kernels move
    /// these into `'static` pool jobs instead of borrowing the tensor.
    pub(crate) fn raw_arc(&self) -> ArcBuf {
        Arc::clone(&self.data)
    }

    /// The rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        shape::numel(&self.shape)
    }

    /// The extent of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.rank()`.
    pub fn dim(&self, dim: usize) -> usize {
        self.shape[dim]
    }

    /// True when elements are laid out densely in row-major order, so the
    /// logical element sequence is a single slice of the buffer.
    ///
    /// Dimensions of extent 1 (and empty tensors) place no constraint on
    /// their stride.
    pub fn is_contiguous(&self) -> bool {
        if self.numel() == 0 {
            return true;
        }
        let mut acc = 1;
        for i in (0..self.shape.len()).rev() {
            if self.shape[i] == 1 {
                continue;
            }
            if self.strides[i] != acc {
                return false;
            }
            acc *= self.shape[i];
        }
        true
    }

    /// Returns a contiguous tensor with the same logical contents.
    ///
    /// Cheap (an `Arc` clone) when `self` is already contiguous; otherwise
    /// gathers into a fresh buffer and records a copy in
    /// [`copy_metrics`].
    pub fn contiguous(&self) -> Tensor {
        if self.is_contiguous() {
            return self.clone();
        }
        copy_metrics::record_copy();
        Tensor::from_vec(self.to_vec(), &self.shape)
    }

    /// The logical elements in row-major order as a fresh vector.
    pub fn to_vec(&self) -> Vec<f32> {
        let mut v = workspace::take_reserve(self.numel());
        if self.is_contiguous() {
            v.extend_from_slice(&self.data[self.offset..self.offset + self.numel()]);
        } else {
            v.extend(self.iter_elems());
        }
        v
    }

    /// Read-only view of the flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is a non-contiguous view; call
    /// [`Tensor::contiguous`] first (or iterate through the stride
    /// metadata).
    pub fn data(&self) -> &[f32] {
        assert!(
            self.is_contiguous(),
            "data() requires a contiguous tensor; this is a view with shape {:?} and strides \
             {:?} — call contiguous() first",
            self.shape,
            self.strides
        );
        &self.data[self.offset..self.offset + self.numel()]
    }

    /// Mutable view of the flat buffer.
    ///
    /// Copies only when necessary: a uniquely-owned contiguous tensor hands
    /// out its buffer directly (`Arc::get_mut` fast path); a shared or
    /// non-contiguous one first materializes a private copy.
    pub fn data_mut(&mut self) -> &mut [f32] {
        let n = self.numel();
        let canonical = self.offset == 0 && self.data.len() == n && self.is_contiguous();
        if !canonical {
            // A view (or a window into a larger buffer): gather into a
            // fresh, exactly-sized private buffer.
            copy_metrics::record_copy();
            let v = self.to_vec();
            self.data = Arc::new(Buffer::new(v));
            self.offset = 0;
            self.strides = shape::strides(&self.shape);
        } else if Arc::get_mut(&mut self.data).is_none() {
            // Shared buffer: clone-on-write.
            copy_metrics::record_copy();
            self.data = Arc::new(self.data.duplicate());
        }
        Arc::get_mut(&mut self.data).expect("buffer is uniquely owned here").as_mut_slice()
    }

    /// Consumes the tensor, returning its flat row-major buffer (copying if
    /// the buffer is shared or the tensor is a view).
    pub fn into_vec(self) -> Vec<f32> {
        if self.offset == 0 && self.data.len() == self.numel() && self.is_contiguous() {
            match Arc::try_unwrap(self.data) {
                Ok(buf) => buf.into_inner(),
                Err(arc) => {
                    let mut v = workspace::take_uninit(arc.len());
                    v.copy_from_slice(&arc);
                    v
                }
            }
        } else {
            self.to_vec()
        }
    }

    /// Element at a multi-dimensional `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or coordinates are invalid.
    pub fn at(&self, index: &[usize]) -> f32 {
        assert_eq!(index.len(), self.rank(), "rank mismatch in at()");
        let mut off = self.offset;
        for (d, (&i, &s)) in index.iter().zip(&self.strides).enumerate() {
            assert!(i < self.shape[d], "index {i} out of bounds for dim {d} in at()");
            off += i * s;
        }
        self.data[off]
    }

    /// Sets the element at `index` to `v`.
    pub fn set(&mut self, index: &[usize], v: f32) {
        // data_mut() canonicalizes the layout, so row-major offsets apply.
        let off = shape::offset_of(&self.shape, index);
        self.data_mut()[off] = v;
    }

    /// The value of a scalar (single-element) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() requires a single-element tensor, shape {:?}",
            self.shape
        );
        self.data[self.offset]
    }

    /// Returns a tensor with the same elements and a new shape.
    ///
    /// A `usize::MAX` entry acts as a wildcard inferred from the remaining
    /// extents (at most one wildcard). On a contiguous tensor this is a
    /// zero-copy view; a non-contiguous view is first materialized.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ or inference is impossible.
    pub fn reshape(&self, new_shape: &[usize]) -> Tensor {
        let resolved = resolve_wildcard(new_shape, self.numel());
        assert_eq!(
            shape::numel(&resolved),
            self.numel(),
            "reshape from {:?} to {:?} changes element count",
            self.shape,
            resolved
        );
        let src = self.contiguous();
        let strides = shape::strides(&resolved);
        Tensor { shape: resolved, strides, offset: src.offset, data: src.data }
    }

    /// Iterates the logical elements in row-major order.
    pub(crate) fn iter_elems(&self) -> ElemIter<'_> {
        ElemIter {
            data: &self.data,
            shape: &self.shape,
            strides: &self.strides,
            idx: vec![0; self.shape.len()],
            off: self.offset,
            remaining: self.numel(),
        }
    }

    /// Applies `f` elementwise, returning a new (contiguous) tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut v = workspace::take_reserve(self.numel());
        if self.is_contiguous() {
            let d = &self.data[self.offset..self.offset + self.numel()];
            v.extend(d.iter().map(|&x| f(x)));
        } else {
            v.extend(self.iter_elems().map(f));
        }
        Tensor::from_vec(v, &self.shape)
    }

    /// Combines two same-shaped tensors elementwise (no broadcasting; see
    /// [`crate::ops`] for broadcasting arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip requires identical shapes");
        let mut v = workspace::take_reserve(self.numel());
        if self.is_contiguous() && other.is_contiguous() {
            let a = &self.data[self.offset..self.offset + self.numel()];
            let b = &other.data[other.offset..other.offset + other.numel()];
            v.extend(a.iter().zip(b).map(|(&x, &y)| f(x, y)));
        } else {
            v.extend(self.iter_elems().zip(other.iter_elems()).map(|(x, y)| f(x, y)));
        }
        Tensor::from_vec(v, &self.shape)
    }

    /// True when all elements of `self` and `other` differ by at most `tol`.
    ///
    /// Shapes must match exactly; returns `false` otherwise.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .iter_elems()
                .zip(other.iter_elems())
                .all(|(a, b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        if self.is_contiguous() {
            self.data[self.offset..self.offset + self.numel()].iter().sum()
        } else {
            self.iter_elems().sum()
        }
    }

    /// Mean of all elements (`NaN` for empty tensors).
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element (`-inf` for empty tensors).
    pub fn max(&self) -> f32 {
        self.iter_elems().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for empty tensors).
    pub fn min(&self) -> f32 {
        self.iter_elems().fold(f32::INFINITY, f32::min)
    }

    /// True if any element is `NaN` or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.iter_elems().any(|x| !x.is_finite())
    }
}

/// Row-major traversal of a (possibly strided) tensor's elements.
pub(crate) struct ElemIter<'a> {
    data: &'a [f32],
    shape: &'a [usize],
    strides: &'a [usize],
    idx: Vec<usize>,
    off: usize,
    remaining: usize,
}

impl Iterator for ElemIter<'_> {
    type Item = f32;

    fn next(&mut self) -> Option<f32> {
        if self.remaining == 0 {
            return None;
        }
        let v = self.data[self.off];
        self.remaining -= 1;
        // Odometer increment over the index, updating the offset in place.
        for dim in (0..self.shape.len()).rev() {
            self.idx[dim] += 1;
            self.off += self.strides[dim];
            if self.idx[dim] < self.shape[dim] {
                break;
            }
            self.off -= self.strides[dim] * self.shape[dim];
            self.idx[dim] = 0;
        }
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ElemIter<'_> {}

impl PartialEq for Tensor {
    /// Logical equality: same shape and identical elements, regardless of
    /// the underlying layout (a transposed view equals its materialization).
    fn eq(&self, other: &Tensor) -> bool {
        self.shape == other.shape && self.iter_elems().zip(other.iter_elems()).all(|(a, b)| a == b)
    }
}

impl Default for Tensor {
    /// The scalar `0.0`.
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

fn resolve_wildcard(shape: &[usize], numel: usize) -> Vec<usize> {
    let wilds = shape.iter().filter(|&&d| d == usize::MAX).count();
    assert!(wilds <= 1, "at most one wildcard dimension allowed in reshape");
    if wilds == 0 {
        return shape.to_vec();
    }
    let known: usize = shape.iter().filter(|&&d| d != usize::MAX).product();
    assert!(
        known > 0 && numel.is_multiple_of(known),
        "cannot infer wildcard dimension for {numel} elements"
    );
    shape.iter().map(|&d| if d == usize::MAX { numel / known } else { d }).collect()
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ", self.shape)?;
        const LIMIT: usize = 16;
        let preview: Vec<f32> = self.iter_elems().take(LIMIT + 1).collect();
        if preview.len() <= LIMIT {
            write!(f, "{preview:?}")
        } else {
            write!(f, "{:?}...", &preview[..LIMIT])
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f32> for Tensor {
    fn from(v: f32) -> Self {
        Tensor::scalar(v)
    }
}

impl From<Vec<f32>> for Tensor {
    /// Builds a rank-1 tensor from a flat vector.
    fn from(v: Vec<f32>) -> Self {
        let n = v.len();
        Tensor::from_vec(v, &[n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.dim(1), 3);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_wrong_length() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn clone_is_cow() {
        let a = Tensor::zeros(&[4]);
        let mut b = a.clone();
        b.set(&[0], 9.0);
        assert_eq!(a.at(&[0]), 0.0);
        assert_eq!(b.at(&[0]), 9.0);
    }

    #[test]
    fn data_mut_skips_copy_when_unique() {
        let mut t = Tensor::arange(64);
        let _scope = crate::metrics::scope();
        t.data_mut()[0] = 5.0;
        t.data_mut()[1] = 6.0;
        assert_eq!(
            copy_metrics::copies(),
            0,
            "uniquely-owned contiguous buffer must mutate in place"
        );
        assert_eq!(t.at(&[0]), 5.0);
    }

    #[test]
    fn data_mut_copies_when_shared() {
        let mut t = Tensor::arange(8);
        let keep = t.clone();
        let _scope = crate::metrics::scope();
        t.data_mut()[0] = -1.0;
        assert_eq!(copy_metrics::copies(), 1);
        assert_eq!(keep.at(&[0]), 0.0);
    }

    #[test]
    fn reshape_shares_buffer_and_infers_wildcard() {
        let t = Tensor::arange(12);
        let r = t.reshape(&[3, usize::MAX]);
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.at(&[2, 3]), 11.0);
    }

    #[test]
    fn reshape_of_contiguous_is_zero_copy() {
        let t = Tensor::arange(24);
        let _scope = crate::metrics::scope();
        let r = t.reshape(&[2, 3, 4]).reshape(&[6, 4]).reshape(&[24]);
        assert_eq!(copy_metrics::copies(), 0);
        assert_eq!(r, t);
    }

    #[test]
    #[should_panic]
    fn reshape_rejects_bad_count() {
        Tensor::arange(12).reshape(&[5, 3]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn allclose_tolerates_small_diffs() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0 + 1e-7, 2.0], &[2]);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b.reshape(&[2, 1]), 1e-5));
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[11.0, 22.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.set(&[1], f32::NAN);
        assert!(t.has_non_finite());
    }

    #[test]
    fn views_report_layout() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        assert!(t.is_contiguous());
        // A transposed view: shape [4,3], strides [1,4].
        let v = Tensor::view_of(&t, vec![4, 3], vec![1, 4], 0);
        assert!(!v.is_contiguous());
        assert_eq!(v.at(&[1, 2]), t.at(&[2, 1]));
        assert_eq!(v.to_vec(), vec![0.0, 4.0, 8.0, 1.0, 5.0, 9.0, 2.0, 6.0, 10.0, 3.0, 7.0, 11.0]);
        let c = v.contiguous();
        assert!(c.is_contiguous());
        assert_eq!(c.data(), v.to_vec().as_slice());
    }

    #[test]
    #[should_panic]
    fn data_panics_on_non_contiguous_view() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let v = Tensor::view_of(&t, vec![3, 2], vec![1, 3], 0);
        let _ = v.data();
    }

    #[test]
    fn logical_equality_ignores_layout() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let v = Tensor::view_of(&t, vec![3, 2], vec![1, 3], 0);
        assert_eq!(v, v.contiguous());
        assert_ne!(v, t);
    }

    #[test]
    fn set_on_view_materializes_first() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let mut v = Tensor::view_of(&t, vec![3, 2], vec![1, 3], 0);
        v.set(&[0, 1], 99.0);
        assert_eq!(v.at(&[0, 1]), 99.0);
        // The original buffer is untouched.
        assert_eq!(t.at(&[1, 0]), 3.0);
    }
}
