//! Scoped runtime metrics: counters, span timers, and latency histograms.
//!
//! This is the observability substrate for the whole stack. Three primitives
//! are collected:
//!
//! - **Counters** — monotonically increasing event counts
//!   ([`counter_add`]), e.g. buffer materializations or pool dispatches.
//! - **Spans** — wall-time intervals with *self-time* accounting
//!   ([`span`]/[`span_dyn`]): nested spans subtract child time from their
//!   parent, so a per-kernel/per-layer table of self times sums to the
//!   instrumented wall time instead of double-counting nesting.
//! - **Histograms** — log₂-bucketed nanosecond latency distributions
//!   ([`observe_ns`], [`stage`]) with approximate quantiles.
//!
//! # Scopes: race-free collection
//!
//! All records land in **thread-local collectors**, never in process
//! globals, so concurrently running tests (and concurrent request handlers)
//! can each open a [`scope`] and observe *only their own* activity:
//!
//! ```
//! use tsdx_tensor::{metrics, ops, Tensor};
//! let scope = metrics::scope();
//! let a = Tensor::ones(&[8, 8]);
//! let _ = ops::matmul(&a, &a);
//! let snap = scope.snapshot();
//! assert_eq!(snap.counter(tsdx_tensor::copy_metrics::KEY), 0); // no copies
//! ```
//!
//! Scopes nest: every record goes to *all* scopes open on the recording
//! thread, so an outer scope still sees activity that an inner test scope
//! also measured. Worker-pool timings are aggregated by the dispatching
//! thread (see [`crate::pool`]), so pool parallelism does not leak records
//! onto foreign threads.
//!
//! # Zero cost when disabled
//!
//! When no scope is open and `TSDX_METRICS` is not `1`, every recording
//! function reduces to **one branch on one static atomic** — no allocation,
//! no syscalls, no thread-local initialization (`tests/metrics_scopes.rs`
//! proves zero allocations and the `profile` bench binary quantifies the
//! wall-time cost). `TSDX_METRICS=1` additionally enables a per-thread root
//! collector readable via [`thread_snapshot`] without opening scopes; it is
//! read once, at the first metrics call of the process.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

/// Number of log₂ nanosecond buckets a [`Histogram`] keeps: bucket `i`
/// counts observations in `[2^i, 2^(i+1))` ns, so 40 buckets span ~1 ns to
/// ~18 minutes.
pub const HIST_BUCKETS: usize = 40;

// Count of reasons to record anywhere in the process: +1 per open scope on
// any thread, +1 (permanently) when TSDX_METRICS=1. The hot-path check in
// `active()` is a single relaxed load of this static.
static ACTIVE_SINKS: AtomicUsize = AtomicUsize::new(0);

// 0 = env not yet read, 1 = read. Flips exactly once.
static ENV_READ: AtomicU8 = AtomicU8::new(0);

#[cold]
fn read_env_once() {
    // Multiple threads may race here; `fetch_or` makes exactly one of them
    // apply the +1 for the env-enabled root collector.
    if ENV_READ.fetch_or(1, Ordering::SeqCst) == 0
        && std::env::var("TSDX_METRICS").is_ok_and(|v| v.trim() == "1")
    {
        ACTIVE_SINKS.fetch_add(1, Ordering::SeqCst);
    }
}

/// True when at least one metrics sink (a [`scope`] on some thread, or the
/// `TSDX_METRICS=1` process root) is live. The disabled path is a single
/// branch on a static: recording functions call this and return immediately.
#[inline]
pub fn active() -> bool {
    if ENV_READ.load(Ordering::Relaxed) == 0 {
        read_env_once();
    }
    ACTIVE_SINKS.load(Ordering::Relaxed) != 0
}

/// True when `TSDX_METRICS=1` enabled the per-thread root collectors.
fn env_enabled() -> bool {
    static CACHED: AtomicU8 = AtomicU8::new(2);
    match CACHED.load(Ordering::Relaxed) {
        2 => {
            let on = std::env::var("TSDX_METRICS").is_ok_and(|v| v.trim() == "1");
            CACHED.store(on as u8, Ordering::Relaxed);
            on
        }
        v => v == 1,
    }
}

/// Aggregate statistics of one span key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time, including child spans.
    pub total_ns: u64,
    /// Wall time minus time spent in child spans.
    pub self_ns: u64,
}

/// A log₂-bucketed nanosecond latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts observations in `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed durations in nanoseconds.
    pub sum_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum_ns: 0 }
    }
}

impl Histogram {
    fn observe(&mut self, ns: u64) {
        let b = (u64::BITS - 1 - ns.max(1).leading_zeros()) as usize;
        self.buckets[b.min(HIST_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum_ns += ns;
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) in nanoseconds: the geometric
    /// midpoint of the bucket holding the `q`-th observation.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)).
                return (1u64 << i) + (1u64 << i) / 2;
            }
        }
        1u64 << (HIST_BUCKETS - 1)
    }
}

/// A point-in-time copy of one collector's contents.
///
/// Returned by [`ScopeGuard::snapshot`] and [`thread_snapshot`]; all maps
/// are keyed by the flat metric key (`"pool/exec/matmul"`,
/// `"layer/encoder.spatial.block0"` ...).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Completed-span statistics.
    pub spans: BTreeMap<String, SpanStat>,
    /// Latency histograms.
    pub hists: BTreeMap<String, Histogram>,
    /// Number of recording calls that reached this collector (one per
    /// `counter_add`/`observe_ns`/span close, independent of the amount a
    /// counter was bumped by).
    pub records: u64,
}

impl Snapshot {
    /// Counter value, 0 when never recorded.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Span statistics, zeroed when never recorded.
    pub fn span(&self, key: &str) -> SpanStat {
        self.spans.get(key).copied().unwrap_or_default()
    }

    /// Total recording calls across all three primitives (used by the
    /// overhead bench to count instrumentation call sites per step). A
    /// `counter_add(key, n)` is one record regardless of `n`: quantity
    /// counters like `workspace/bytes_recycled` bump by thousands per call.
    pub fn total_records(&self) -> u64 {
        self.records
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "counter {k} = {v}")?;
        }
        for (k, s) in &self.spans {
            writeln!(
                f,
                "span    {k}: n={} total={:.3}ms self={:.3}ms",
                s.count,
                s.total_ns as f64 / 1e6,
                s.self_ns as f64 / 1e6
            )?;
        }
        for (k, h) in &self.hists {
            writeln!(
                f,
                "hist    {k}: n={} mean={}ns p50={}ns p99={}ns",
                h.count,
                h.mean_ns(),
                h.quantile_ns(0.5),
                h.quantile_ns(0.99)
            )?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct Collector {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStat>,
    hists: BTreeMap<String, Histogram>,
    records: u64,
}

impl Collector {
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            spans: self.spans.clone(),
            hists: self.hists.clone(),
            records: self.records,
        }
    }
}

/// One frame of the thread's span stack: accumulated child wall time, used
/// for self-time accounting.
struct SpanFrame {
    child_ns: u64,
}

thread_local! {
    // Innermost-last stack of open scopes plus (at index 0, when
    // TSDX_METRICS=1) the thread's root collector.
    static COLLECTORS: RefCell<Vec<Rc<RefCell<Collector>>>> = RefCell::new(init_thread_collectors());
    static SPAN_STACK: RefCell<Vec<SpanFrame>> = const { RefCell::new(Vec::new()) };
}

fn init_thread_collectors() -> Vec<Rc<RefCell<Collector>>> {
    if env_enabled() {
        vec![Rc::new(RefCell::new(Collector::default()))]
    } else {
        Vec::new()
    }
}

/// Applies `f` to every collector open on this thread.
fn with_collectors(f: impl Fn(&mut Collector)) {
    COLLECTORS.with(|c| {
        for rc in c.borrow().iter() {
            f(&mut rc.borrow_mut());
        }
    });
}

/// RAII guard for a metrics collection scope (see [`scope`]).
///
/// Dropping the guard closes the scope; [`ScopeGuard::snapshot`] reads its
/// current totals at any point. The guard is `!Send`: a scope belongs to
/// the thread that opened it.
pub struct ScopeGuard {
    collector: Rc<RefCell<Collector>>,
}

impl ScopeGuard {
    /// A copy of everything this scope has collected so far.
    pub fn snapshot(&self) -> Snapshot {
        self.collector.borrow().snapshot()
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        COLLECTORS.with(|c| {
            let mut stack = c.borrow_mut();
            let pos = stack
                .iter()
                .rposition(|rc| Rc::ptr_eq(rc, &self.collector))
                .expect("scope collector still registered");
            stack.remove(pos);
        });
        ACTIVE_SINKS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Opens a collection scope on the calling thread.
///
/// Until the returned guard is dropped, every metric recorded **by this
/// thread** (plus pool-worker timings aggregated back by dispatches this
/// thread issues) is collected and readable via [`ScopeGuard::snapshot`].
/// Other threads' scopes are unaffected — concurrent tests cannot observe
/// each other. Scopes nest; inner activity is visible to outer scopes.
pub fn scope() -> ScopeGuard {
    // Touch the env first so the +1 below is never double-counted by the
    // lazy read in `active()`.
    if ENV_READ.load(Ordering::Relaxed) == 0 {
        read_env_once();
    }
    let collector = Rc::new(RefCell::new(Collector::default()));
    COLLECTORS.with(|c| c.borrow_mut().push(Rc::clone(&collector)));
    ACTIVE_SINKS.fetch_add(1, Ordering::SeqCst);
    ScopeGuard { collector }
}

/// Snapshot of the calling thread's `TSDX_METRICS=1` root collector.
///
/// Empty when the variable is not set (open a [`scope`] instead).
pub fn thread_snapshot() -> Snapshot {
    if !env_enabled() {
        return Snapshot::default();
    }
    COLLECTORS.with(|c| c.borrow().first().map(|rc| rc.borrow().snapshot())).unwrap_or_default()
}

/// Adds `n` to the counter `key` in every open collector on this thread.
/// A no-op (single static branch, no allocation) when metrics are disabled.
#[inline]
pub fn counter_add(key: &str, n: u64) {
    if !active() {
        return;
    }
    counter_add_slow(key, n);
}

#[cold]
fn counter_add_slow(key: &str, n: u64) {
    with_collectors(|c| {
        c.records += 1;
        match c.counters.get_mut(key) {
            Some(v) => *v += n,
            None => {
                c.counters.insert(key.to_string(), n);
            }
        }
    });
}

/// Current value of counter `key` in the innermost open collector on this
/// thread (0 when no collector is open or the counter never fired).
pub fn current_counter(key: &str) -> u64 {
    COLLECTORS.with(|c| {
        c.borrow().last().map_or(0, |rc| rc.borrow().counters.get(key).copied().unwrap_or(0))
    })
}

/// Records one observation of `ns` nanoseconds into histogram `key`.
/// A no-op (single static branch) when metrics are disabled.
#[inline]
pub fn observe_ns(key: &str, ns: u64) {
    if !active() {
        return;
    }
    observe_ns_slow(key, ns);
}

#[cold]
fn observe_ns_slow(key: &str, ns: u64) {
    with_collectors(|c| {
        c.records += 1;
        c.hists.entry(key.to_string()).or_default().observe(ns);
    });
}

/// An open span timer; created by [`span`]/[`span_dyn`], recorded on drop.
///
/// Inert (`None` payload, nothing allocated) when metrics were disabled at
/// creation.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    key: SpanKey,
    start: Instant,
    also_hist: bool,
}

enum SpanKey {
    Static(&'static str),
    Owned(String),
}

impl SpanKey {
    fn as_str(&self) -> &str {
        match self {
            SpanKey::Static(s) => s,
            SpanKey::Owned(s) => s,
        }
    }
}

/// Opens a wall-time span named `key`. The elapsed time is recorded when
/// the returned guard drops; nested spans subtract their time from this
/// span's *self* time. Single static branch and no allocation when
/// metrics are disabled.
#[inline]
pub fn span(key: &'static str) -> Span {
    if !active() {
        return Span { inner: None };
    }
    open_span(SpanKey::Static(key), false)
}

/// [`span`] with a lazily built dynamic name (e.g. a per-layer label). The
/// closure only runs — and the `String` is only allocated — when metrics
/// are enabled.
#[inline]
pub fn span_dyn(key: impl FnOnce() -> String) -> Span {
    if !active() {
        return Span { inner: None };
    }
    open_span(SpanKey::Owned(key()), false)
}

/// Times `f` under span `key` and additionally records the elapsed time
/// into the histogram of the same key — the per-stage latency primitive
/// used on the inference path.
#[inline]
pub fn stage<R>(key: &'static str, f: impl FnOnce() -> R) -> R {
    if !active() {
        return f();
    }
    let _span = open_span(SpanKey::Static(key), true);
    f()
}

/// Times `f` under span `key` (no histogram).
#[inline]
pub fn time<R>(key: &'static str, f: impl FnOnce() -> R) -> R {
    if !active() {
        return f();
    }
    let _span = open_span(SpanKey::Static(key), false);
    f()
}

#[cold]
fn open_span(key: SpanKey, also_hist: bool) -> Span {
    SPAN_STACK.with(|s| s.borrow_mut().push(SpanFrame { child_ns: 0 }));
    Span { inner: Some(SpanInner { key, start: Instant::now(), also_hist }) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let elapsed = inner.start.elapsed().as_nanos() as u64;
        let child_ns = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let frame = stack.pop().expect("span frame pushed at open");
            // Credit our wall time to the parent frame's child accumulator.
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += elapsed;
            }
            frame.child_ns
        });
        let self_ns = elapsed.saturating_sub(child_ns);
        let key = inner.key.as_str();
        with_collectors(|c| {
            c.records += 1;
            let stat = c.spans.entry(key.to_string()).or_default();
            stat.count += 1;
            stat.total_ns += elapsed;
            stat.self_ns += self_ns;
            if inner.also_hist {
                c.hists.entry(key.to_string()).or_default().observe(elapsed);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_current_counter_is_zero() {
        // No scope here (and TSDX_METRICS unset in the test env): recording
        // is a no-op.
        counter_add("test/never", 3);
        observe_ns("test/never", 100);
        assert_eq!(current_counter("test/never"), 0);
    }

    #[test]
    fn scope_collects_and_closes() {
        let s = scope();
        counter_add("test/a", 2);
        counter_add("test/a", 1);
        observe_ns("test/lat", 1500);
        {
            let _sp = span("test/span");
            std::hint::black_box(0);
        }
        let snap = s.snapshot();
        assert_eq!(snap.counter("test/a"), 3);
        assert_eq!(snap.hists["test/lat"].count, 1);
        assert_eq!(snap.span("test/span").count, 1);
        drop(s);
        counter_add("test/a", 10);
        assert_eq!(current_counter("test/a"), 0, "closed scope must stop collecting");
    }

    #[test]
    fn nested_scopes_both_observe() {
        let outer = scope();
        counter_add("test/n", 1);
        {
            let inner = scope();
            counter_add("test/n", 5);
            assert_eq!(inner.snapshot().counter("test/n"), 5);
        }
        counter_add("test/n", 1);
        assert_eq!(outer.snapshot().counter("test/n"), 7);
    }

    #[test]
    fn span_self_time_excludes_children() {
        let s = scope();
        {
            let _outer = span("test/outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("test/inner");
                std::thread::sleep(std::time::Duration::from_millis(8));
            }
        }
        let snap = s.snapshot();
        let outer = snap.span("test/outer");
        let inner = snap.span("test/inner");
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns < outer.total_ns,
            "child time must be subtracted: self={} total={}",
            outer.self_ns,
            outer.total_ns
        );
        assert_eq!(inner.self_ns, inner.total_ns, "leaf span is all self time");
        // Self times of a nest sum to the outer total.
        let sum = outer.self_ns + inner.self_ns;
        assert!(sum.abs_diff(outer.total_ns) < outer.total_ns / 10 + 1_000_000);
    }

    #[test]
    fn scopes_are_thread_isolated() {
        let s = scope();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let t = scope();
                    counter_add("test/iso", i + 1);
                    t.snapshot().counter("test/iso")
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), i as u64 + 1);
        }
        assert_eq!(s.snapshot().counter("test/iso"), 0, "other threads' records must not leak");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.observe(1_000); // bucket 9 (512..1024? no: 2^9=512, 2^10=1024 -> bucket 9)
        }
        for _ in 0..10 {
            h.observe(1_000_000);
        }
        assert_eq!(h.count, 100);
        assert!(h.quantile_ns(0.5) < 10_000);
        assert!(h.quantile_ns(0.99) > 500_000);
        assert_eq!(h.mean_ns(), (90 * 1_000 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn display_formats_every_kind() {
        let s = scope();
        counter_add("test/c", 1);
        observe_ns("test/h", 42);
        time("test/t", || ());
        let text = s.snapshot().to_string();
        assert!(text.contains("counter test/c"));
        assert!(text.contains("hist    test/h"));
        assert!(text.contains("span    test/t"));
    }
}
