//! Per-channel symmetric int8 weight quantization and the packed i8 GEMM
//! behind the `TSDX_PRECISION=int8` inference plane.
//!
//! # Scheme
//!
//! Weights quantize **per output channel** (per column `j` of a `[k, n]`
//! matrix): `scale[j] = max_k |w[k, j]| / 127`, `q[k, j] =
//! round_ties_even(w[k, j] / scale[j])` in `[-127, 127]`. Activations
//! quantize **per row** at call time with the same symmetric rule, so a
//! row's quantized form depends only on that row — the property that keeps
//! quantized linear layers row-wise and therefore lets the streaming
//! KV-prefix reuse of PR 6 stay bit-identical under int8.
//!
//! The product accumulates in `i32` — exactly, since `|q| ≤ 127` bounds
//! every partial sum by `127² · k`, far inside `i32` for any model shape —
//! and dequantizes once per output element at the panel boundary:
//! `out[i, j] = fma(acc as f32, sa[i] · sb[j], bias[j])`. Exact integer
//! accumulation is what makes the kernel deterministic: every code path
//! (scalar, AVX2) and every pool size produces identical accumulators, so
//! int8 results are bit-identical across threads by construction.
//!
//! # Panel layout
//!
//! `B` packs once at [`QuantMatrix::quantize`] time into the same BLIS
//! column-tile geometry as the f32 packed path (`NR = 16` columns per
//! tile), but **pair-interleaved** along `k` for the `pmaddwd` kernel:
//! tile element order is `[k/2][half][8 columns][2 k-consecutive values]`,
//! so one 16-lane `i16` vector load yields eight columns' `k`-pairs and
//! `_mm256_madd_epi16` contracts each pair into an `i32` lane. Panels
//! store `i8` (the weight-side memory-traffic win) and widen to a
//! L1-resident `i16` tile per column block inside the kernel.
//!
//! # Unsafe policy
//!
//! LLVM does not form integer dot-product instructions (`vpmaddwd`,
//! `vpdpwssd`) from safe scalar loops — measured here, every safe
//! formulation of this kernel emits `vpmulld`+`vpaddd` at roughly half the
//! f32 FMA path's throughput. The micro-kernels in [`simd`] are therefore
//! the crate's single `#[allow(unsafe_code)]` island (the crate is
//! otherwise `deny(unsafe_code)`): raw loads/stores over slices whose
//! bounds are checked at the call boundary, with a safe scalar
//! reference implementation asserted bit-identical by the quant proptests
//! (and used on non-x86_64 targets or when AVX2 is absent).
//!
//! # Observability
//!
//! [`linear_q8`] runs under an `op/matmul_i8` span, counts quantized and
//! dequantized rows into `quant/quant_rows` / `quant/dequant_rows`, and
//! bumps `dispatch/matmul_i8` (the f32 kernels count
//! `dispatch/matmul_packed` / `dispatch/matmul_unpacked`), so the
//! `profile` binary can print the precision dispatch mix.

use std::cell::RefCell;
use std::sync::Arc;

use crate::{metrics, pool, workspace, Tensor};

/// Micro-kernel height; matches the f32 packed path (`ops::matmul`).
const MR: usize = 6;
/// Column-tile width; matches the f32 packed path.
const NR: usize = 16;
/// Symmetric int8 range bound. `-128` is excluded so negation stays in
/// range and the scheme is symmetric around zero.
const QMAX: f32 = 127.0;
/// Below this many `m·k·n` multiply-adds the product stays on the calling
/// thread (same rationale and value as the f32 matmul threshold).
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

/// A weight matrix quantized per output channel and prepacked into
/// pair-interleaved int8 column tiles, ready for [`linear_q8`].
///
/// Quantize once (at model-quantization time), multiply many times:
/// steady-state inference never re-quantizes or re-packs weights.
///
/// # Examples
///
/// ```
/// use tsdx_tensor::{quant::QuantMatrix, Tensor};
/// let w = Tensor::from_vec(vec![0.5, -1.0, 0.25, 2.0], &[2, 2]);
/// let q = QuantMatrix::quantize(&w);
/// let dq = q.dequantize();
/// // Round-trip error is bounded by half a quantization step per channel.
/// for j in 0..2 {
///     for k in 0..2 {
///         assert!((w.at(&[k, j]) - dq.at(&[k, j])).abs() <= q.scales()[j] / 2.0 + 1e-6);
///     }
/// }
/// ```
#[derive(Clone)]
pub struct QuantMatrix {
    k: usize,
    n: usize,
    /// Per-column scales, zero-padded to `njt * NR` so the epilogue can
    /// load full vectors on the tail tile.
    scales: Arc<Vec<f32>>,
    /// Pair-interleaved `[jt][k2][half][8][2]` int8 tiles, zero-padded in
    /// both the column tail and the odd-`k` pad position.
    panels: Arc<Vec<i8>>,
}

impl std::fmt::Debug for QuantMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantMatrix")
            .field("k", &self.k)
            .field("n", &self.n)
            .field("packed_bytes", &self.packed_bytes())
            .finish()
    }
}

impl QuantMatrix {
    /// Quantizes a rank-2 `[k, n]` weight tensor (views are read through
    /// their strides).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank 2 or has a zero dimension.
    pub fn quantize(w: &Tensor) -> QuantMatrix {
        assert_eq!(w.rank(), 2, "QuantMatrix::quantize expects [k, n], got {:?}", w.shape());
        let (k, n) = (w.shape()[0], w.shape()[1]);
        assert!(k > 0 && n > 0, "cannot quantize an empty matrix {:?}", w.shape());
        let wc = w.contiguous();
        let wd = wc.data();
        let njt = n.div_ceil(NR);
        let k2 = k.div_ceil(2);
        let mut scales = vec![0f32; njt * NR];
        let mut panels = vec![0i8; njt * k2 * 2 * NR];
        for j in 0..n {
            let mut amax = 0f32;
            for kk in 0..k {
                amax = amax.max(wd[kk * n + j].abs());
            }
            let (scale, inv) = if amax > 0.0 { (amax / QMAX, QMAX / amax) } else { (0.0, 0.0) };
            scales[j] = scale;
            let (jt, jc) = (j / NR, j % NR);
            let tile = &mut panels[jt * k2 * 2 * NR..(jt + 1) * k2 * 2 * NR];
            for kk in 0..k {
                let q = (wd[kk * n + j] * inv).round_ties_even().clamp(-QMAX, QMAX) as i8;
                tile[(kk / 2) * 2 * NR + (jc / 8) * 16 + (jc % 8) * 2 + (kk & 1)] = q;
            }
        }
        QuantMatrix { k, n, scales: Arc::new(scales), panels: Arc::new(panels) }
    }

    /// Input width (`k`, rows of the original matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width (`n`, columns / quantization channels).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-output-channel scales (`n` entries).
    pub fn scales(&self) -> &[f32] {
        &self.scales[..self.n]
    }

    /// Bytes held by the packed panels plus scales.
    pub fn packed_bytes(&self) -> usize {
        self.panels.len() + self.scales.len() * 4
    }

    /// Reconstructs the `[k, n]` f32 matrix `q[k, j] · scale[j]`.
    ///
    /// The reconstruction differs from the original by at most
    /// [`QuantMatrix::error_bound`] per element of the worst channel
    /// (`scale[j] / 2` per element of channel `j`).
    pub fn dequantize(&self) -> Tensor {
        let (k, n) = (self.k, self.n);
        let mut out = vec![0f32; k * n];
        for j in 0..n {
            let jt = j / NR;
            let jc = j % NR;
            let tile = &self.panels[jt * self.tile_len()..];
            let s = self.scales[j];
            for kk in 0..k {
                let q = tile[(kk / 2) * 2 * NR + (jc / 8) * 16 + (jc % 8) * 2 + (kk & 1)];
                out[kk * n + j] = q as f32 * s;
            }
        }
        Tensor::from_vec(out, &[k, n])
    }

    /// Worst-case per-element round-trip error: `max_j scale[j] / 2`.
    pub fn error_bound(&self) -> f32 {
        self.scales.iter().fold(0f32, |a, &s| a.max(s)) / 2.0
    }

    fn tile_len(&self) -> usize {
        self.k.div_ceil(2) * 2 * NR
    }
}

thread_local! {
    /// Per-thread quantized-activation scratch (`i16` rows, row scales)
    /// and widened B-tile scratch, recycled across calls so steady-state
    /// int8 inference performs no heap allocation beyond the output
    /// buffer (which comes from the workspace arena like every kernel).
    static SCRATCH: RefCell<(Vec<i16>, Vec<f32>, Vec<i16>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// Force the safe scalar kernels for the duration of `f` (parity tests).
pub fn with_forced_scalar<R>(force: bool, f: impl FnOnce() -> R) -> R {
    simd::FORCE_SCALAR.with(|c| {
        let prev = c.replace(force);
        let out = f();
        c.set(prev);
        out
    })
}

/// True when the AVX2 micro-kernels are compiled in and the CPU supports
/// them (the scalar reference runs otherwise — bit-identical results).
pub fn simd_available() -> bool {
    simd::available()
}

/// Quantized affine map `out = a @ dequant(w) + bias` with per-row dynamic
/// activation quantization (`[.., k] @ [k, n] -> [.., n]`).
///
/// `a` may have any rank ≥ 1 with last dimension `w.k()`; leading
/// dimensions are batch dimensions. `bias`, when present, must be `[n]`.
/// The result is bit-identical for every pool size and for the scalar and
/// SIMD kernels (integer accumulation is exact; the dequant epilogue uses
/// fused multiply-add on both paths).
///
/// # Panics
///
/// Panics on a shape mismatch.
///
/// # Examples
///
/// ```
/// use tsdx_tensor::{ops, quant, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let w = Tensor::from_vec(vec![0.5, -0.5, 1.0, 0.25], &[2, 2]);
/// let q = quant::QuantMatrix::quantize(&w);
/// let exact = ops::matmul(&a, &q.dequantize());
/// let approx = quant::linear_q8(&a, &q, None);
/// assert!(exact.allclose(&approx, 0.05));
/// ```
pub fn linear_q8(a: &Tensor, w: &QuantMatrix, bias: Option<&Tensor>) -> Tensor {
    let _span = metrics::span("op/matmul_i8");
    let ash = a.shape().to_vec();
    let k = *ash.last().unwrap_or_else(|| panic!("linear_q8 input must have rank >= 1"));
    assert_eq!(k, w.k(), "linear_q8 inner dims: {ash:?} @ [{}, {}]", w.k(), w.n());
    let n = w.n();
    if let Some(b) = bias {
        assert_eq!(b.shape(), [n], "linear_q8 bias must be [{n}], got {:?}", b.shape());
    }
    let m = a.numel() / k;
    let mut out_shape = ash;
    *out_shape.last_mut().unwrap() = n;
    if m == 0 {
        return Tensor::from_vec(Vec::new(), &out_shape);
    }
    metrics::counter_add("dispatch/matmul_i8", 1);
    metrics::counter_add("quant/quant_rows", m as u64);
    metrics::counter_add("quant/dequant_rows", m as u64);

    let a = a.contiguous();
    let bias = bias.map(|b| b.contiguous());
    let total = m * n;
    let threads = if pool::should_parallelize(total * k, PARALLEL_THRESHOLD) {
        pool::num_threads()
    } else {
        1
    };
    if threads <= 1 {
        let mut out = workspace::take_uninit(total);
        q8_rows(&mut out, 0, &a, k, w, bias.as_ref());
        return Tensor::from_vec(out, &out_shape);
    }
    let w = w.clone();
    let out = pool::parallel_rows_named("matmul_i8", m, n, threads, move |first_row, chunk| {
        q8_rows(chunk, first_row, &a, k, &w, bias.as_ref());
    });
    Tensor::from_vec(out, &out_shape)
}

/// [`linear_q8`] without a bias term: the quantized matrix product.
pub fn matmul_q8(a: &Tensor, w: &QuantMatrix) -> Tensor {
    linear_q8(a, w, None)
}

/// Computes output rows `[first_row, first_row + out.len() / n)`.
///
/// Each chunk quantizes its own activation rows into thread-local scratch
/// and widens B tiles locally, so chunk results depend only on the rows
/// they cover — the pool-size bit-parity argument.
fn q8_rows(
    out: &mut [f32],
    first_row: usize,
    a: &Tensor,
    k: usize,
    w: &QuantMatrix,
    bias: Option<&Tensor>,
) {
    let n = w.n();
    let rows = out.len() / n;
    let ad = &a.data()[first_row * k..first_row * k + rows * k];
    let kp = k.next_multiple_of(2);
    let k2 = kp / 2;
    let mp = rows.div_ceil(MR);
    let njt = n.div_ceil(NR);
    let bias_d = bias.map(|b| b.data());
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        let (qa, sa, bt) = &mut *s;
        qa.clear();
        qa.resize(mp * MR * kp, 0);
        sa.clear();
        sa.resize(mp * MR, 0.0);
        bt.clear();
        bt.resize(k2 * 2 * NR, 0);
        simd::quant_rows(ad, qa, sa, rows, k, kp);
        for jt in 0..njt {
            let tile8 = &w.panels[jt * w.tile_len()..(jt + 1) * w.tile_len()];
            for (wide, &narrow) in bt.iter_mut().zip(tile8) {
                *wide = narrow as i16;
            }
            let j0 = jt * NR;
            let jn = NR.min(n - j0);
            let sb = &w.scales[j0..j0 + NR];
            for p in 0..mp {
                let rv = MR.min(rows - p * MR);
                let acc = simd::micro_kernel(&qa[p * MR * kp..], kp, bt, k2);
                for r in 0..rv {
                    let orow = &mut out[(p * MR + r) * n..];
                    if jn == NR {
                        simd::dequant_row(
                            &acc[r],
                            sa[p * MR + r],
                            sb,
                            bias_d.map(|b| &b[j0..]),
                            &mut orow[j0..j0 + NR],
                        );
                    } else {
                        let mut tmp = [0f32; NR];
                        let mut btail = [0f32; NR];
                        if let Some(b) = bias_d {
                            btail[..jn].copy_from_slice(&b[j0..j0 + jn]);
                        }
                        simd::dequant_row(
                            &acc[r],
                            sa[p * MR + r],
                            sb,
                            bias_d.map(|_| &btail[..]),
                            &mut tmp,
                        );
                        orow[j0..j0 + jn].copy_from_slice(&tmp[..jn]);
                    }
                }
            }
        }
    });
}

/// Scalar reference + AVX2 micro-kernels. The one `#[allow(unsafe_code)]`
/// region of the crate — see the module docs for the policy and the
/// bit-parity contract tying the two implementations together.
mod simd {
    use super::{MR, NR, QMAX};
    use std::cell::Cell;

    thread_local! {
        pub(super) static FORCE_SCALAR: Cell<bool> = const { Cell::new(false) };
    }

    #[cfg(target_arch = "x86_64")]
    pub(super) fn available() -> bool {
        use std::sync::OnceLock;
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn available() -> bool {
        false
    }

    fn use_simd() -> bool {
        available() && !FORCE_SCALAR.with(|c| c.get())
    }

    /// Quantizes `rows` rows of `a` (row length `k`) into `i16` rows of
    /// stride `kp`, recording the per-row scale. Rows beyond `rows` and
    /// the `k..kp` pad stay zero (callers pre-zero the buffers).
    #[allow(unsafe_code)] // dispatch into the audited AVX2 kernel below
    pub(super) fn quant_rows(
        a: &[f32],
        qa: &mut [i16],
        sa: &mut [f32],
        rows: usize,
        k: usize,
        kp: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if use_simd() {
            // SAFETY (bounds): `a` holds `rows * k` elements, `qa` holds
            // `>= rows * kp` and `sa >= rows` (sized by the caller).
            unsafe { quant_rows_avx2(a, qa, sa, rows, k, kp) };
            return;
        }
        for i in 0..rows {
            let row = &a[i * k..(i + 1) * k];
            let amax = row.iter().fold(0f32, |x, &v| x.max(v.abs()));
            let (scale, inv) = if amax > 0.0 { (amax / QMAX, QMAX / amax) } else { (0.0, 0.0) };
            sa[i] = scale;
            let q = &mut qa[i * kp..(i + 1) * kp];
            for kk in 0..k {
                q[kk] = (row[kk] * inv).round_ties_even() as i16;
            }
        }
    }

    /// `MR`×`NR` i8 GEMM micro-kernel: `qa` rows (stride `kp`, `i16`,
    /// zero-padded) against a pair-interleaved B tile, exact `i32`
    /// accumulation over `k2` k-pairs.
    #[allow(unsafe_code)] // dispatch into the audited AVX2 kernel below
    pub(super) fn micro_kernel(qa: &[i16], kp: usize, bt: &[i16], k2: usize) -> [[i32; NR]; MR] {
        #[cfg(target_arch = "x86_64")]
        if use_simd() {
            debug_assert!(qa.len() >= (MR - 1) * kp + k2 * 2 && bt.len() >= k2 * 2 * NR);
            // SAFETY (bounds): checked above; the kernel reads exactly
            // `MR` rows of `k2` i32-aliased i16 pairs from `qa` and
            // `k2 * 2 * NR` i16 from `bt`.
            return unsafe { micro_avx2(qa.as_ptr(), kp, bt.as_ptr(), k2) };
        }
        let mut acc = [[0i32; NR]; MR];
        for kk in 0..k2 {
            let bpair = &bt[kk * 2 * NR..(kk + 1) * 2 * NR];
            for (r, arow) in acc.iter_mut().enumerate() {
                let a0 = qa[r * kp + kk * 2] as i32;
                let a1 = qa[r * kp + kk * 2 + 1] as i32;
                for (j, ov) in arow.iter_mut().enumerate() {
                    let b0 = bpair[(j / 8) * 16 + (j % 8) * 2] as i32;
                    let b1 = bpair[(j / 8) * 16 + (j % 8) * 2 + 1] as i32;
                    *ov += a0 * b0 + a1 * b1;
                }
            }
        }
        acc
    }

    /// Dequant epilogue for one row of one column tile:
    /// `out[j] = fma(acc[j] as f32, srow · sb[j], bias[j])`.
    #[allow(unsafe_code)] // dispatch into the audited AVX2 kernel below
    pub(super) fn dequant_row(
        acc: &[i32; NR],
        srow: f32,
        sb: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        if use_simd() {
            debug_assert!(sb.len() >= NR && out.len() >= NR);
            // SAFETY (bounds): `acc` is exactly NR, `sb`/`out` checked
            // above, `bias` when present is at least NR (caller pads the
            // tail tile).
            unsafe {
                dequant_row_avx2(acc, srow, sb.as_ptr(), bias.map(|b| b.as_ptr()), out.as_mut_ptr())
            };
            return;
        }
        for j in 0..NR {
            let s = srow * sb[j];
            let b = bias.map_or(0.0, |b| b[j]);
            out[j] = (acc[j] as f32).mul_add(s, b);
        }
    }

    // ----- AVX2 implementations -----
    //
    // Scoped exception to the crate-wide `deny(unsafe_code)`: LLVM will
    // not synthesize `vpmaddwd` from safe scalar loops (measured ~0.5x
    // the f32 FMA path), so the int8 plane's entire speedup lives in
    // these three functions. Every pointer access is bounded by the
    // slice-length checks at the call sites above, and the quant
    // proptests pin each function bit-identical to its scalar reference.
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    mod kernels {
        use super::{MR, NR, QMAX};
        use std::arch::x86_64::*;

        /// # Safety
        ///
        /// Requires AVX2. `a` must hold `rows * k` elements, `qa` at
        /// least `rows * kp` and `sa` at least `rows`; `kp >= k`.
        #[target_feature(enable = "avx2")]
        #[allow(clippy::needless_range_loop)] // row index drives raw-pointer strides
        pub(super) unsafe fn quant_rows_avx2(
            a: &[f32],
            qa: &mut [i16],
            sa: &mut [f32],
            rows: usize,
            k: usize,
            kp: usize,
        ) {
            unsafe {
                let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
                for i in 0..rows {
                    let row = a.as_ptr().add(i * k);
                    let mut vmax = _mm256_setzero_ps();
                    let mut kk = 0;
                    while kk + 8 <= k {
                        let v = _mm256_loadu_ps(row.add(kk));
                        vmax = _mm256_max_ps(vmax, _mm256_and_ps(v, absmask));
                        kk += 8;
                    }
                    let mut lanes = [0f32; 8];
                    _mm256_storeu_ps(lanes.as_mut_ptr(), vmax);
                    let mut amax = lanes.iter().fold(0f32, |x, &b| x.max(b));
                    while kk < k {
                        amax = amax.max((*row.add(kk)).abs());
                        kk += 1;
                    }
                    let (scale, inv) =
                        if amax > 0.0 { (amax / QMAX, QMAX / amax) } else { (0.0, 0.0) };
                    sa[i] = scale;
                    let vinv = _mm256_set1_ps(inv);
                    let q = qa.as_mut_ptr().add(i * kp);
                    let mut kk = 0;
                    while kk + 16 <= k {
                        // cvtps2dq rounds to nearest-even under the
                        // default MXCSR — same rule as the scalar
                        // `round_ties_even` reference.
                        let v0 =
                            _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(row.add(kk)), vinv));
                        let v1 = _mm256_cvtps_epi32(_mm256_mul_ps(
                            _mm256_loadu_ps(row.add(kk + 8)),
                            vinv,
                        ));
                        let packed =
                            _mm256_permute4x64_epi64(_mm256_packs_epi32(v0, v1), 0b11011000);
                        _mm256_storeu_si256(q.add(kk).cast(), packed);
                        kk += 16;
                    }
                    while kk < k {
                        *q.add(kk) = (*row.add(kk) * inv).round_ties_even() as i16;
                        kk += 1;
                    }
                }
            }
        }

        /// # Safety
        ///
        /// Requires AVX2. `qa` must hold `MR` rows of stride `kp` with at
        /// least `k2 * 2` valid i16 each (i32-aligned pair reads use
        /// `read_unaligned`, so no alignment requirement); `bt` must hold
        /// `k2 * 2 * NR` i16.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn micro_avx2(
            qa: *const i16,
            kp: usize,
            bt: *const i16,
            k2: usize,
        ) -> [[i32; NR]; MR] {
            unsafe {
                let mut acc = [[_mm256_setzero_si256(); 2]; MR];
                for kk in 0..k2 {
                    let b0 = _mm256_loadu_si256(bt.add(kk * 2 * NR).cast());
                    let b1 = _mm256_loadu_si256(bt.add(kk * 2 * NR + 16).cast());
                    for (r, arow) in acc.iter_mut().enumerate() {
                        let pair = qa.add(r * kp + kk * 2).cast::<i32>().read_unaligned();
                        let av = _mm256_set1_epi32(pair);
                        arow[0] = _mm256_add_epi32(arow[0], _mm256_madd_epi16(av, b0));
                        arow[1] = _mm256_add_epi32(arow[1], _mm256_madd_epi16(av, b1));
                    }
                }
                let mut out = [[0i32; NR]; MR];
                for (orow, arow) in out.iter_mut().zip(&acc) {
                    _mm256_storeu_si256(orow.as_mut_ptr().cast(), arow[0]);
                    _mm256_storeu_si256(orow.as_mut_ptr().add(8).cast(), arow[1]);
                }
                out
            }
        }

        /// # Safety
        ///
        /// Requires AVX2+FMA. `sb`, `out`, and `bias` (when present) must
        /// each point at `NR` readable/writable f32.
        #[target_feature(enable = "avx2", enable = "fma")]
        pub(super) unsafe fn dequant_row_avx2(
            acc: &[i32; NR],
            srow: f32,
            sb: *const f32,
            bias: Option<*const f32>,
            out: *mut f32,
        ) {
            unsafe {
                let vs = _mm256_set1_ps(srow);
                for h in 0..2 {
                    let vi = _mm256_loadu_si256(acc.as_ptr().add(h * 8).cast());
                    let vf = _mm256_cvtepi32_ps(vi);
                    let vsb = _mm256_mul_ps(vs, _mm256_loadu_ps(sb.add(h * 8)));
                    let vb = match bias {
                        Some(b) => _mm256_loadu_ps(b.add(h * 8)),
                        None => _mm256_setzero_ps(),
                    };
                    _mm256_storeu_ps(out.add(h * 8), _mm256_fmadd_ps(vf, vsb, vb));
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    use kernels::{dequant_row_avx2, micro_avx2, quant_rows_avx2};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn toy(k: usize, n: usize) -> Tensor {
        Tensor::from_fn(&[k, n], |i| (((i * 37 + i / 5) % 255) as f32 - 127.0) / 63.0)
    }

    #[test]
    fn roundtrip_error_within_half_scale() {
        let w = toy(13, 21);
        let q = QuantMatrix::quantize(&w);
        let dq = q.dequantize();
        for j in 0..21 {
            let bound = q.scales()[j] / 2.0 + 1e-6;
            for kk in 0..13 {
                let err = (w.at(&[kk, j]) - dq.at(&[kk, j])).abs();
                assert!(err <= bound, "err {err} > bound {bound} at ({kk}, {j})");
            }
        }
        assert!(q.error_bound() > 0.0);
    }

    #[test]
    fn zero_channel_quantizes_to_zero() {
        let w = Tensor::from_fn(&[4, 3], |i| if i % 3 == 1 { 0.0 } else { 1.5 });
        let q = QuantMatrix::quantize(&w);
        assert_eq!(q.scales()[1], 0.0);
        let dq = q.dequantize();
        for kk in 0..4 {
            assert_eq!(dq.at(&[kk, 1]), 0.0);
        }
    }

    #[test]
    fn matches_dequantized_f32_matmul() {
        let a = Tensor::from_fn(&[9, 13], |i| ((i % 17) as f32 - 8.0) / 3.0);
        let w = toy(13, 21);
        let q = QuantMatrix::quantize(&w);
        let exact = ops::matmul(&a, &q.dequantize());
        let approx = matmul_q8(&a, &q);
        assert_eq!(approx.shape(), [9, 21]);
        // Only activation-quantization error separates the two.
        assert!(exact.allclose(&approx, 0.08), "max ref {}", exact.max());
    }

    #[test]
    fn scalar_and_simd_paths_bit_identical() {
        let a = Tensor::from_fn(&[11, 18], |i| ((i % 29) as f32 - 14.0) / 5.0);
        let w = toy(18, 23);
        let q = QuantMatrix::quantize(&w);
        let bias = Tensor::from_fn(&[23], |i| i as f32 * 0.01 - 0.1);
        let fast = linear_q8(&a, &q, Some(&bias));
        let slow = with_forced_scalar(true, || linear_q8(&a, &q, Some(&bias)));
        assert_eq!(fast.data(), slow.data());
    }

    #[test]
    fn batched_input_flattens_leading_dims() {
        let a = Tensor::from_fn(&[2, 3, 8], |i| (i as f32).sin());
        let w = toy(8, 5);
        let q = QuantMatrix::quantize(&w);
        let out = matmul_q8(&a, &q);
        assert_eq!(out.shape(), [2, 3, 5]);
        let flat = matmul_q8(&a.reshape(&[6, 8]), &q);
        assert_eq!(out.data(), flat.data());
    }
}
