//! Shared persistent worker pool for parallel kernels.
//!
//! Every parallel kernel in this crate (matmul, softmax, layer norm,
//! elementwise arithmetic, axis reductions, im2col, fused attention) runs on
//! one process-wide pool of long-lived worker threads instead of spawning
//! scoped threads per call. The pool is created lazily on first parallel
//! dispatch and lives for the rest of the process.
//!
//! # Sizing
//!
//! The pool holds `TSDX_NUM_THREADS` workers when that environment variable
//! is set, else one worker per core reported by
//! [`std::thread::available_parallelism`]. The variable is parsed **once**,
//! at pool initialization; a value that is not a positive integer panics
//! with a diagnostic rather than being silently ignored.
//!
//! # Determinism contract
//!
//! Work is distributed as contiguous chunks of the output index space, and
//! every output element is computed by exactly one chunk using the same
//! serial per-element code regardless of how many chunks exist or which
//! worker runs them. Kernels never split a single accumulation across
//! chunks, so results are bit-identical for every pool size (asserted by the
//! `pool_parity` test suite and exercised in CI under `TSDX_NUM_THREADS=2`).
//!
//! # Thresholds
//!
//! Parallel dispatch costs two channel hops and one output-assembly pass per
//! chunk, so each kernel keeps small problems on the calling thread behind a
//! per-kernel serial threshold. [`with_forced_threads`] overrides both the
//! pool size and those thresholds within a closure — tests use it to force
//! chunked execution on tiny inputs.
//!
//! # Panic contract
//!
//! A panicking job never kills its worker thread and never deadlocks or
//! poisons the dispatcher. Each job runs under `catch_unwind`; the captured
//! payload and panic location travel back over the result channel, the
//! dispatcher **drains every remaining chunk**, and then re-raises the
//! *original* payload (lowest chunk index wins when several chunks panic,
//! so the surfaced panic is deterministic) on the calling thread via
//! [`std::panic::resume_unwind`]. The chunk index and source location of
//! the re-raised panic are readable afterwards through [`last_panic`].
//! Workers stay alive and the pool stays usable for subsequent dispatches.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

use crate::metrics;

/// A job shipped to a worker: boxed so the queue is homogeneous, `'static`
/// because the workers outlive every caller (kernels move `Arc` clones of
/// tensor buffers into their jobs instead of borrowing).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Per-chunk `(queue_wait_ns, exec_ns)` samples shared between a metered
/// dispatch and its worker jobs.
type ChunkMeter = Arc<Mutex<Vec<(u64, u64)>>>;

/// The process-wide pool: a shared injector queue drained by `size` workers.
struct WorkerPool {
    size: usize,
    injector: Mutex<mpsc::Sender<Job>>,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

thread_local! {
    // Set inside pool workers so nested parallel kernels run inline instead
    // of deadlocking the queue, and set by `with_forced_threads` to override
    // sizing for tests.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    static FORCED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    // True while a worker runs a job under catch_unwind: tells the panic
    // hook to record the location silently instead of printing a backtrace
    // for a panic that will be re-raised on the dispatcher anyway.
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static CAPTURED_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };
    // Dispatcher-side record of the panic most recently re-raised by
    // `map_chunks` on this thread.
    static LAST_PANIC: RefCell<Option<PanicInfo>> = const { RefCell::new(None) };
}

/// Diagnostic record of a worker-job panic re-raised by [`map_chunks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicInfo {
    /// Chunk index whose job panicked.
    pub chunk: usize,
    /// `file:line:column` of the panic site, when the hook saw it.
    pub location: Option<String>,
}

/// A captured worker-job panic traveling back to the dispatcher.
struct ChunkPanic {
    chunk: usize,
    location: Option<String>,
    payload: Box<dyn Any + Send + 'static>,
}

/// Info about the panic most recently re-raised by [`map_chunks`] on the
/// calling thread, for diagnostics after catching it. Cleared at the start
/// of every dispatch.
pub fn last_panic() -> Option<PanicInfo> {
    LAST_PANIC.with(|p| p.borrow().clone())
}

/// Installs (once) a panic hook that records the location of panics raised
/// inside pool jobs and suppresses their default stderr report; all other
/// panics go to the previously installed hook untouched.
fn install_capture_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CAPTURING.with(Cell::get) {
                let loc =
                    info.location().map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
                CAPTURED_LOCATION.with(|c| *c.borrow_mut() = loc);
            } else {
                prev(info);
            }
        }));
    });
}

/// Runs `f` under `catch_unwind`, tagging the thread so the capture hook
/// records the panic location instead of printing it.
fn run_captured<T>(chunk: usize, f: impl FnOnce() -> T) -> Result<T, ChunkPanic> {
    CAPTURING.with(|c| c.set(true));
    CAPTURED_LOCATION.with(|c| c.borrow_mut().take());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    CAPTURING.with(|c| c.set(false));
    result.map_err(|payload| ChunkPanic {
        chunk,
        location: CAPTURED_LOCATION.with(|c| c.borrow_mut().take()),
        payload,
    })
}

/// Parses `TSDX_NUM_THREADS`, falling back to the machine's parallelism.
/// Evaluated once and cached: `available_parallelism` re-reads cgroup files
/// on every call, which would tax every kernel's serial-threshold check.
///
/// # Panics
///
/// Panics when the variable is set to anything but a positive integer —
/// a misconfigured deployment should fail loudly, not run serial.
fn configured_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| match std::env::var("TSDX_NUM_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!(
                "TSDX_NUM_THREADS must be a positive integer, got {raw:?}; unset it to use all \
                 available cores"
            ),
        },
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    })
}

fn pool() -> &'static WorkerPool {
    POOL.get_or_init(|| {
        install_capture_hook();
        let size = configured_size();
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..size {
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("tsdx-worker-{i}"))
                .spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    loop {
                        // Hold the lock only while dequeuing, never while
                        // running the job.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => {
                                // Jobs catch their own panics and ship the
                                // payload back (see `map_chunks`); this
                                // backstop only guards job-queue plumbing so
                                // a worker can never die mid-epoch.
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("failed to spawn tsdx worker thread");
        }
        WorkerPool { size, injector: Mutex::new(tx) }
    })
}

/// The worker count the pool has (or will have): `TSDX_NUM_THREADS` if set,
/// else the machine's available parallelism. Inside
/// [`with_forced_threads`] the forced value is returned instead.
///
/// # Panics
///
/// Panics on a `TSDX_NUM_THREADS` value that is not a positive integer.
pub fn num_threads() -> usize {
    if let Some(n) = FORCED_THREADS.with(Cell::get) {
        return n;
    }
    match POOL.get() {
        Some(p) => p.size,
        None => configured_size(),
    }
}

/// True when the calling thread is itself a pool worker (nested parallel
/// kernels must run inline rather than re-enter the queue).
fn on_worker_thread() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Runs `f` with the apparent pool size overridden to `threads`.
///
/// Inside the closure every parallel kernel partitions its work into
/// `threads` chunks **even below its serial threshold**, so tests can assert
/// bit-identical results across chunk counts on small inputs. The jobs
/// still execute on the real pool (or inline when `threads == 1`).
pub fn with_forced_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads > 0, "forced thread count must be positive");
    let prev = FORCED_THREADS.with(|c| c.replace(Some(threads)));
    let result = f();
    FORCED_THREADS.with(|c| c.set(prev));
    result
}

/// True when a kernel given `work_elems` total scalar work and a per-kernel
/// `serial_below` threshold should dispatch to the pool.
///
/// Serial when: the pool would have one worker, the problem is below the
/// threshold (unless a forced thread count overrides it), or the caller is
/// already a pool worker.
pub(crate) fn should_parallelize(work_elems: usize, serial_below: usize) -> bool {
    if on_worker_thread() {
        return false;
    }
    let forced = FORCED_THREADS.with(Cell::get);
    match forced {
        Some(n) => n > 1,
        None => work_elems >= serial_below && num_threads() > 1,
    }
}

/// Runs `task(chunk_index)` for every `chunk_index in 0..chunks` on the pool
/// and returns the results ordered by chunk index.
///
/// The caller blocks until all chunks complete. Chunks run concurrently on
/// however many workers the pool has; ordering of *execution* is
/// unspecified, ordering of *results* is by index.
///
/// # Panics
///
/// If one or more chunk tasks panic, every remaining chunk still runs to
/// completion, the workers survive, and the payload of the panicking chunk
/// with the **lowest index** is re-raised on the calling thread exactly as
/// the job raised it ([`last_panic`] reports the chunk index and source
/// location afterwards).
pub fn map_chunks<T, F>(chunks: usize, task: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    dispatch_chunks(None, chunks, task)
}

/// [`map_chunks`] with a kernel name for [`crate::metrics`].
///
/// When metrics are enabled (a scope is open on the dispatching thread or
/// `TSDX_METRICS=1`), every *pool* dispatch records, keyed by `kernel`:
/// counters `pool/dispatch/<kernel>` (one per dispatch) and
/// `pool/chunks/<kernel>` (chunks per dispatch), and histograms
/// `pool/queue_wait/<kernel>` (enqueue to job start) and
/// `pool/exec/<kernel>` (job run time), one observation per chunk. Workers
/// measure their own timings and ship them back over a shared buffer; the
/// dispatcher records them after the drain barrier, so all metric state
/// stays local to the dispatching thread and metering never changes which
/// chunk computes which output (the determinism contract is unaffected —
/// the parity suite runs with metrics on and off). Inline runs (one chunk
/// or nested dispatch) are not pool traffic and record nothing.
pub fn map_chunks_named<T, F>(kernel: &'static str, chunks: usize, task: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    dispatch_chunks(Some(kernel), chunks, task)
}

fn dispatch_chunks<T, F>(kernel: Option<&'static str>, chunks: usize, task: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    if chunks == 0 {
        return Vec::new();
    }
    if chunks == 1 || on_worker_thread() {
        #[cfg(feature = "fault-inject")]
        return (0..chunks)
            .map(|i| {
                crate::faults::maybe_panic_worker(i);
                task(i)
            })
            .collect();
        #[cfg(not(feature = "fault-inject"))]
        return (0..chunks).map(task).collect();
    }
    // Per-chunk (queue_wait_ns, exec_ns) samples, allocated only when a
    // metrics sink is live at dispatch time. Workers push, the dispatcher
    // reads after the drain barrier below.
    let meter: Option<ChunkMeter> = match kernel {
        Some(k) if metrics::active() => {
            metrics::counter_add(&format!("pool/dispatch/{k}"), 1);
            metrics::counter_add(&format!("pool/chunks/{k}"), chunks as u64);
            Some(Arc::new(Mutex::new(Vec::with_capacity(chunks))))
        }
        _ => None,
    };
    let pool = pool();
    let task = Arc::new(task);
    let (tx, rx) = mpsc::channel::<Result<(usize, T), ChunkPanic>>();
    {
        let injector = pool.injector.lock().expect("pool injector poisoned");
        for i in 0..chunks {
            let task = Arc::clone(&task);
            let tx = tx.clone();
            let meter = meter.clone();
            let enqueued = meter.as_ref().map(|_| Instant::now());
            injector
                .send(Box::new(move || {
                    let timer = enqueued.map(|t| (t.elapsed().as_nanos() as u64, Instant::now()));
                    let r = run_captured(i, || {
                        #[cfg(feature = "fault-inject")]
                        crate::faults::maybe_panic_worker(i);
                        task(i)
                    });
                    if let (Some(m), Some((wait_ns, start))) = (&meter, timer) {
                        let exec_ns = start.elapsed().as_nanos() as u64;
                        if let Ok(mut v) = m.lock() {
                            v.push((wait_ns, exec_ns));
                        }
                    }
                    let _ = tx.send(r.map(|v| (i, v)));
                }))
                .expect("pool queue closed");
        }
    }
    drop(tx);
    LAST_PANIC.with(|p| p.borrow_mut().take());
    let mut slots: Vec<Option<T>> = (0..chunks).map(|_| None).collect();
    let mut first_panic: Option<ChunkPanic> = None;
    // Drain every chunk before deciding the outcome: the channel closes once
    // all jobs (panicked or not) have reported, so no result is left behind
    // in flight and the pool is immediately reusable.
    while let Ok(r) = rx.recv() {
        match r {
            Ok((i, v)) => slots[i] = Some(v),
            Err(p) => {
                if first_panic.as_ref().is_none_or(|prev| p.chunk < prev.chunk) {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let (Some(k), Some(m)) = (kernel, meter) {
        // All workers have reported (the channel closed), so the lock is
        // uncontended and the samples are complete.
        let samples = m.lock().map(|v| v.clone()).unwrap_or_default();
        let wait_key = format!("pool/queue_wait/{k}");
        let exec_key = format!("pool/exec/{k}");
        for (wait_ns, exec_ns) in samples {
            metrics::observe_ns(&wait_key, wait_ns);
            metrics::observe_ns(&exec_key, exec_ns);
        }
    }
    if let Some(p) = first_panic {
        LAST_PANIC.with(|slot| {
            *slot.borrow_mut() = Some(PanicInfo { chunk: p.chunk, location: p.location })
        });
        std::panic::resume_unwind(p.payload);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| unreachable!("chunk {i} neither completed nor panicked")))
        .collect()
}

/// Computes a `rows * row_len` output buffer by partitioning whole rows into
/// `threads` contiguous chunks executed on the pool.
///
/// `work(first_row, out)` must fill `out` (whose length is a multiple of
/// `row_len`) with rows `first_row ..` in order, **storing every element**:
/// buffers arrive with arbitrary (recycled-workspace) contents, so a worker
/// that skips positions would leak stale values and break the determinism
/// contract. Each row is produced by exactly one chunk with the same
/// per-row code on every path, so the result is bit-identical for every
/// `threads` value.
pub fn parallel_rows<F>(rows: usize, row_len: usize, threads: usize, work: F) -> Vec<f32>
where
    F: Fn(usize, &mut [f32]) + Send + Sync + 'static,
{
    parallel_rows_impl(None, rows, row_len, threads, work)
}

/// [`parallel_rows`] with a kernel name for [`crate::metrics`]; pool
/// dispatches record the same per-kernel counters and histograms as
/// [`map_chunks_named`].
pub fn parallel_rows_named<F>(
    kernel: &'static str,
    rows: usize,
    row_len: usize,
    threads: usize,
    work: F,
) -> Vec<f32>
where
    F: Fn(usize, &mut [f32]) + Send + Sync + 'static,
{
    parallel_rows_impl(Some(kernel), rows, row_len, threads, work)
}

fn parallel_rows_impl<F>(
    kernel: Option<&'static str>,
    rows: usize,
    row_len: usize,
    threads: usize,
    work: F,
) -> Vec<f32>
where
    F: Fn(usize, &mut [f32]) + Send + Sync + 'static,
{
    let n = rows * row_len;
    let threads = threads.max(1).min(rows.max(1));
    if threads == 1 || n == 0 || on_worker_thread() {
        let mut out = crate::workspace::take_uninit(n);
        if n > 0 {
            work(0, &mut out);
        }
        return out;
    }
    let rows_per = rows.div_ceil(threads);
    let chunks = rows.div_ceil(rows_per);
    let work = Arc::new(work);
    let parts = dispatch_chunks(kernel, chunks, move |c| {
        let first = c * rows_per;
        let count = rows_per.min(rows - first);
        // Chunk buffers carry arbitrary recycled contents (the `work`
        // contract requires every element to be stored); they return to
        // the dispatcher's arena after assembly below.
        let mut buf = crate::workspace::take_uninit(count * row_len);
        work(first, &mut buf);
        buf
    });
    let mut out = crate::workspace::take_reserve(n);
    for p in parts {
        out.extend_from_slice(&p);
        crate::workspace::give(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_orders_results_by_index() {
        let r = map_chunks(8, |i| i * 10);
        assert_eq!(r, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn parallel_rows_matches_serial_fill() {
        let fill = |first: usize, out: &mut [f32]| {
            for (j, v) in out.iter_mut().enumerate() {
                *v = (first * 5 + j) as f32 * 0.5;
            }
        };
        let serial = parallel_rows(13, 5, 1, fill);
        for threads in [2usize, 3, 7, 13, 40] {
            let par = parallel_rows(13, 5, threads, fill);
            assert_eq!(serial, par, "threads={threads} diverged");
        }
    }

    #[test]
    fn forced_threads_is_scoped() {
        let before = num_threads();
        let inside = with_forced_threads(7, num_threads);
        assert_eq!(inside, 7);
        assert_eq!(num_threads(), before);
    }

    #[test]
    fn forced_threads_bypass_serial_threshold() {
        assert!(with_forced_threads(4, || should_parallelize(1, usize::MAX)));
        assert!(!with_forced_threads(1, || should_parallelize(usize::MAX, 0)));
    }

    #[test]
    fn map_chunks_zero_and_one() {
        assert!(map_chunks(0, |i| i).is_empty());
        assert_eq!(map_chunks(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn panicking_job_reraises_original_payload_and_pool_survives() {
        let err = std::panic::catch_unwind(|| {
            map_chunks(6, |i| {
                if i == 3 {
                    panic!("chunk {i} exploded");
                }
                i * 2
            })
        })
        .expect_err("dispatch must re-raise the job panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload should be the original panic message");
        assert_eq!(msg, "chunk 3 exploded", "payload must be the job's own, unwrapped");
        let info = last_panic().expect("panic diagnostics recorded");
        assert_eq!(info.chunk, 3);
        let loc = info.location.expect("location captured by the hook");
        assert!(loc.contains("pool.rs"), "unexpected location {loc}");

        // The long-lived workers survived and the pool is immediately usable.
        let r = map_chunks(8, |i| i + 100);
        assert_eq!(r, (100..108).collect::<Vec<_>>());
        assert!(last_panic().is_none(), "a clean dispatch clears the record");
    }

    #[test]
    fn lowest_chunk_wins_when_several_panic() {
        let err = std::panic::catch_unwind(|| {
            map_chunks(8, |i| {
                if i % 2 == 1 {
                    panic!("boom {i}");
                }
                i
            })
        })
        .expect_err("dispatch must re-raise");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert_eq!(msg, "boom 1", "deterministic choice: lowest panicking chunk");
        assert_eq!(last_panic().unwrap().chunk, 1);
        assert_eq!(map_chunks(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn parallel_rows_propagates_job_panics() {
        let err = std::panic::catch_unwind(|| {
            parallel_rows(8, 2, 4, |first, _out| {
                if first >= 4 {
                    panic!("row chunk starting at {first} failed");
                }
            })
        })
        .expect_err("parallel_rows must surface the panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("row chunk starting at"), "{msg}");
        // Still usable for the normal case.
        let out = parallel_rows(4, 2, 2, |first, out| {
            for (j, v) in out.iter_mut().enumerate() {
                *v = (first * 2 + j) as f32;
            }
        });
        assert_eq!(out, (0..8).map(|x| x as f32).collect::<Vec<_>>());
    }
}
