//! Fast scalar transcendentals for hot kernels.
//!
//! `libm`'s `expf`/`tanhf` dominate softmax, attention, GELU, and the gated
//! recurrences once matmul is blocked and pooled. These are the classic
//! Cephes single-precision polynomial approximations (range reduction plus a
//! degree-5/6 minimax polynomial), accurate to ~2 ulp over the full `f32`
//! range — indistinguishable from `std` at every tolerance this workspace
//! tests (1e-5 and looser) and several times faster per call.
//!
//! Every kernel that softmaxes, gates, or activates routes through this
//! module, so the *same* approximation is used everywhere: fused attention
//! matches the composed softmax path bit-for-bit in its exponentials, and
//! results stay deterministic for every pool size.

// The Cephes coefficients are quoted digit-for-digit from the reference
// implementation; don't shorten them to whatever f32 round-trips to.
#![allow(clippy::excessive_precision)]

/// Largest `x` with `exp(x)` finite in `f32`; above this we return infinity.
const EXP_OVERFLOW: f32 = 88.722_83;
/// Smallest `x` with `exp(x)` normal in `f32`; below this we return 0.
const EXP_UNDERFLOW: f32 = -87.336_55;

/// log2(e), for range reduction.
const LOG2E: f32 = std::f32::consts::LOG2_E;
/// `ln 2` split into a high part exactly representable in `f32`…
const LN2_HI: f32 = 0.693_359_375;
/// …and the low-order remainder (`ln 2 - LN2_HI`).
const LN2_LO: f32 = -2.121_944_4e-4;

/// `e^x`, Cephes `expf`: ~2 ulp, exact at `x = 0`.
///
/// Branchless: the argument is clamped to the representable range instead of
/// early-returning, so the body is a straight line of FMAs the compiler can
/// pipeline across loop iterations (and vectorize where the loop allows).
/// Above the overflow clamp the scale step still produces `+inf`; below the
/// underflow clamp the result saturates at the smallest normal magnitude
/// (~1.2e-38) rather than flushing to exactly `0.0`.
#[inline]
pub fn exp(x: f32) -> f32 {
    let x = x.clamp(EXP_UNDERFLOW, EXP_OVERFLOW);
    // x = n*ln2 + r with |r| <= ln2/2; e^x = 2^n * e^r.
    let n = (LOG2E * x + 0.5).floor();
    let r = x - n * LN2_HI - n * LN2_LO;
    let z = r * r;
    // Degree-5 minimax polynomial for (e^r - 1 - r) / r^2 on the reduced range.
    let mut p = 1.987_569_1e-4_f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_6e-1;
    p = p * r + 5.000_000_1e-1;
    let e_r = p * z + r + 1.0;
    // Scale by 2^n through the exponent bits; n is in [-126, 128] after the
    // clamp above, so the constructed float is normal (or +inf at 128).
    let bits = ((n as i32 + 127) as u32) << 23;
    e_r * f32::from_bits(bits)
}

/// `tanh x`, Cephes `tanhf`: polynomial near zero, `exp`-based beyond.
#[inline]
pub fn tanh(x: f32) -> f32 {
    let ax = x.abs();
    if ax >= 9.0 {
        // Saturated well past f32 resolution of 1 - tanh.
        return if x > 0.0 { 1.0 } else { -1.0 };
    }
    if ax >= 0.625 {
        let e = exp(2.0 * ax);
        let t = 1.0 - 2.0 / (e + 1.0);
        return if x > 0.0 { t } else { -t };
    }
    let z = x * x;
    let mut p = -5.704_988_6e-3_f32;
    p = p * z + 2.063_908_9e-2;
    p = p * z - 5.373_971_4e-2;
    p = p * z + 1.333_144_2e-1;
    p = p * z - 3.333_328_2e-1;
    p * z * x + x
}

/// Logistic sigmoid `1 / (1 + e^-x)` via [`exp`].
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + exp(-x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_matches_std_to_single_precision() {
        // Sweep the numerically interesting range; compare against f64 exp.
        let mut worst = 0.0f64;
        let mut i = -2000i32;
        while i <= 2000 {
            let x = i as f32 * 0.01; // [-20, 20]
            let got = exp(x) as f64;
            let want = (x as f64).exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            i += 1;
        }
        assert!(worst < 1e-6, "exp worst relative error {worst}");
    }

    #[test]
    fn exp_is_exact_at_zero_and_clamps() {
        assert_eq!(exp(0.0), 1.0);
        // Below the underflow clamp the result saturates near the smallest
        // normal instead of flushing to zero — negligible for every softmax
        // denominator (it is < 1.2e-38).
        assert!(exp(-100.0) <= 1.2e-38);
        assert_eq!(exp(100.0), f32::INFINITY);
    }

    #[test]
    fn tanh_matches_std_to_single_precision() {
        let mut worst = 0.0f64;
        let mut i = -1500i32;
        while i <= 1500 {
            let x = i as f32 * 0.01; // [-15, 15]
            let got = tanh(x) as f64;
            let want = (x as f64).tanh();
            worst = worst.max((got - want).abs());
            i += 1;
        }
        assert!(worst < 1e-6, "tanh worst absolute error {worst}");
        assert_eq!(tanh(0.0), 0.0);
        assert_eq!(tanh(20.0), 1.0);
        assert_eq!(tanh(-20.0), -1.0);
    }

    #[test]
    fn sigmoid_midpoint_and_symmetry() {
        assert_eq!(sigmoid(0.0), 0.5);
        for i in 0..100 {
            let x = i as f32 * 0.1;
            let s = sigmoid(x) as f64 + sigmoid(-x) as f64;
            assert!((s - 1.0).abs() < 1e-6, "sigmoid symmetry broke at {x}: {s}");
        }
    }
}
