//! # tsdx-tensor
//!
//! A small, dependency-free dense `f32` tensor library with reverse-mode
//! automatic differentiation, purpose-built for the `tsdx` traffic-scenario
//! extraction stack.
//!
//! The crate has three layers:
//!
//! 1. [`Tensor`] — an immutable, row-major value type with cheap
//!    (`Arc`-backed) clones and zero-copy strided views: `reshape` (of
//!    contiguous tensors), `permute`, `transpose`, `narrow`, `slice`, and
//!    `split` are O(1) metadata edits over a shared buffer, with
//!    [`Tensor::contiguous`] as the explicit materialization point.
//! 2. [`ops`] — pure forward kernels: broadcasting arithmetic, a
//!    register-tiled batched matmul, softmax, layer norm, im2col convolution,
//!    pooling, fused scaled-dot-product attention, and fused classification
//!    losses. Elementwise and reduction kernels are stride-aware and consume
//!    views directly. Large kernels execute on the shared persistent
//!    [`pool`] of worker threads (sized once from `TSDX_NUM_THREADS`, else
//!    available parallelism) with bit-identical results for every pool size.
//! 3. [`Graph`] — a define-by-run autograd tape recording op applications
//!    and replaying them in reverse to produce [`Gradients`]. View-op
//!    backwards are themselves views (a permute's gradient is the inverse
//!    permute view — no copy).
//!
//! # Examples
//!
//! Train-step skeleton — build a tape, compute a loss, read gradients:
//!
//! ```
//! use tsdx_tensor::{Graph, Tensor};
//!
//! let w = Tensor::from_vec(vec![0.5, -0.5], &[2, 1]);
//! let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//!
//! let mut g = Graph::new();
//! let wv = g.leaf(w);
//! let xv = g.constant(x);
//! let y = g.matmul(xv, wv);          // [2, 1]
//! let loss = g.mean_all(y);
//! let grads = g.backward(loss);
//! assert_eq!(grads.get(wv).unwrap().shape(), &[2, 1]);
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the crate is safe code except for the one
// audited `#[allow(unsafe_code)]` island in [`quant`] — the AVX2 integer
// dot-product micro-kernels that LLVM cannot synthesize from safe loops
// (see the `quant` module docs for the policy and parity contract).
#![deny(unsafe_code)]

pub mod fastmath;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod grad_check;
mod graph;
pub mod metrics;
pub mod ops;
pub mod pool;
pub mod quant;
pub mod shape;
mod tensor;
pub mod workspace;

pub use graph::{Gradients, Graph, Var};
pub use tensor::{copy_metrics, Tensor};

/// Crate-internal backward kernels shared between `ops` and `graph`.
pub(crate) mod ops_internal {
    pub(crate) use crate::ops::{
        index_select_backward, log_softmax_last_backward, narrow_backward, softmax_last_backward,
    };
}
