//! Shape algebra shared by every tensor operation.
//!
//! Tensors in this crate are always contiguous and row-major, so a shape is
//! just a `Vec<usize>` of dimension extents. This module centralizes the
//! arithmetic on those extents: element counts, strides, broadcasting, and
//! multi-dimensional index/offset conversions.

/// Returns the number of elements implied by `shape`.
///
/// The empty shape `[]` denotes a scalar and has one element.
///
/// # Examples
///
/// ```
/// assert_eq!(tsdx_tensor::shape::numel(&[2, 3, 4]), 24);
/// assert_eq!(tsdx_tensor::shape::numel(&[]), 1);
/// ```
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Returns row-major strides for `shape`.
///
/// `strides(&[2, 3, 4]) == [12, 4, 1]`. The empty shape yields an empty
/// stride vector.
///
/// # Examples
///
/// ```
/// assert_eq!(tsdx_tensor::shape::strides(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![0; shape.len()];
    let mut acc = 1;
    for i in (0..shape.len()).rev() {
        s[i] = acc;
        acc *= shape[i];
    }
    s
}

/// Converts a multi-dimensional `index` into a flat row-major offset.
///
/// # Panics
///
/// Panics if `index` has a different rank than `shape` or any coordinate is
/// out of bounds (debug assertions).
pub fn offset_of(shape: &[usize], index: &[usize]) -> usize {
    debug_assert_eq!(shape.len(), index.len(), "rank mismatch in offset_of");
    let mut off = 0;
    let mut acc = 1;
    for i in (0..shape.len()).rev() {
        debug_assert!(index[i] < shape[i], "index out of bounds in offset_of");
        off += index[i] * acc;
        acc *= shape[i];
    }
    off
}

/// Converts a flat row-major `offset` into a multi-dimensional index.
pub fn index_of(shape: &[usize], mut offset: usize) -> Vec<usize> {
    let mut idx = vec![0; shape.len()];
    for i in (0..shape.len()).rev() {
        idx[i] = offset % shape[i];
        offset /= shape[i];
    }
    idx
}

/// Computes the broadcast shape of `a` and `b` under NumPy rules.
///
/// Shapes are right-aligned; each pair of extents must be equal or one of
/// them must be `1`. Returns `None` when the shapes are incompatible.
///
/// # Examples
///
/// ```
/// use tsdx_tensor::shape::broadcast;
/// assert_eq!(broadcast(&[4, 1, 3], &[2, 3]), Some(vec![4, 2, 3]));
/// assert_eq!(broadcast(&[2], &[3]), None);
/// ```
pub fn broadcast(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Right-aligns `shape` to `rank` dimensions by prepending `1`s.
pub fn pad_rank(shape: &[usize], rank: usize) -> Vec<usize> {
    assert!(shape.len() <= rank, "cannot pad shape to a smaller rank");
    let mut out = vec![1; rank];
    out[rank - shape.len()..].copy_from_slice(shape);
    out
}

/// Strides of `shape` viewed as broadcast to `to` (stride 0 on expanded dims).
///
/// `shape` must broadcast to `to`; both are given right-aligned.
pub fn broadcast_strides(shape: &[usize], to: &[usize]) -> Vec<usize> {
    let padded = pad_rank(shape, to.len());
    let base = strides(&padded);
    padded
        .iter()
        .zip(to)
        .zip(base)
        .map(|((&d, &t), s)| {
            assert!(d == t || d == 1, "shape does not broadcast to target");
            if d == t {
                s
            } else {
                0
            }
        })
        .collect()
}

/// Strides for walking a strided view of `shape`/`strides` as if broadcast
/// to shape `to`: expanded dimensions (extent 1 → extent > 1) get stride 0,
/// prepended dimensions get stride 0, and matching dimensions keep the
/// view's actual stride.
///
/// Unlike [`broadcast_strides`], this respects a non-contiguous source
/// layout. `shape` must broadcast to `to`.
pub fn broadcast_view_strides(shape: &[usize], strides: &[usize], to: &[usize]) -> Vec<usize> {
    assert_eq!(shape.len(), strides.len(), "shape/stride rank mismatch");
    let pad = to.len() - shape.len();
    let mut out = vec![0; to.len()];
    for i in 0..shape.len() {
        let (d, t) = (shape[i], to[pad + i]);
        assert!(d == t || d == 1, "shape does not broadcast to target");
        out[pad + i] = if d == t && t != 1 { strides[i] } else { 0 };
    }
    out
}

/// An iterator over all multi-dimensional indices of `shape` in row-major
/// order. Used by generic (non-hot-path) kernels.
#[derive(Debug, Clone)]
pub struct IndexIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl IndexIter {
    /// Creates an iterator over every index of `shape`.
    pub fn new(shape: &[usize]) -> Self {
        let next = if numel(shape) == 0 { None } else { Some(vec![0; shape.len()]) };
        IndexIter { shape: shape.to_vec(), next }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.next.clone()?;
        // Advance like an odometer.
        let mut idx = cur.clone();
        let mut dim = self.shape.len();
        loop {
            if dim == 0 {
                self.next = None;
                break;
            }
            dim -= 1;
            idx[dim] += 1;
            if idx[dim] < self.shape[dim] {
                self.next = Some(idx);
                break;
            }
            idx[dim] = 0;
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_handles_scalars_and_zeros() {
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 3]), 0);
        assert_eq!(numel(&[2, 5]), 10);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[7]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn offset_and_index_roundtrip() {
        let shape = [3, 4, 5];
        for off in 0..numel(&shape) {
            let idx = index_of(&shape, off);
            assert_eq!(offset_of(&shape, &idx), off);
        }
    }

    #[test]
    fn broadcast_rules() {
        assert_eq!(broadcast(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast(&[2, 1], &[1, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast(&[5, 1, 3], &[4, 3]), Some(vec![5, 4, 3]));
        assert_eq!(broadcast(&[], &[2, 2]), Some(vec![2, 2]));
        assert_eq!(broadcast(&[3], &[4]), None);
    }

    #[test]
    fn broadcast_strides_zeroes_expanded_dims() {
        assert_eq!(broadcast_strides(&[1, 3], &[4, 2, 3]), vec![0, 0, 1]);
        assert_eq!(broadcast_strides(&[2, 3], &[2, 3]), vec![3, 1]);
    }

    #[test]
    fn index_iter_visits_all_in_order() {
        let v: Vec<_> = IndexIter::new(&[2, 2]).collect();
        assert_eq!(v, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        assert_eq!(IndexIter::new(&[0]).count(), 0);
        assert_eq!(IndexIter::new(&[]).count(), 1);
    }

    #[test]
    #[should_panic]
    fn pad_rank_rejects_shrinking() {
        pad_rank(&[2, 3], 1);
    }
}
