//! Reverse-mode automatic differentiation on a tape of tensor operations.
//!
//! A [`Graph`] records every operation applied to its [`Var`] handles in
//! construction order, which is already a topological order. Calling
//! [`Graph::backward`] on a scalar loss walks the tape in reverse and
//! accumulates gradients for every variable that requires them.
//!
//! The tape is rebuilt for every training step (define-by-run), which keeps
//! control flow in plain Rust — loops over timesteps or layers simply record
//! more nodes.
//!
//! # Examples
//!
//! ```
//! use tsdx_tensor::{Graph, Tensor};
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
//! let y = g.mul(x, x); // y = x^2
//! let loss = g.sum_all(y);
//! let grads = g.backward(loss);
//! assert_eq!(grads.get(x).unwrap().data(), &[4.0]); // dy/dx = 2x
//! ```

use crate::ops;
use crate::ops::Conv2dSpec;
use crate::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// The node index inside its graph (useful for debugging).
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug)]
enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    Matmul(Var, Var),
    Relu(Var),
    Gelu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Exp(Var),
    Ln(Var),
    Reshape(Var),
    Permute(Var, Vec<usize>),
    Concat(Vec<Var>, usize),
    Narrow { input: Var, axis: usize, start: usize },
    IndexSelect { input: Var, indices: Vec<usize> },
    SoftmaxLast(Var),
    LogSoftmaxLast(Var),
    LayerNorm { x: Var, gamma: Var, beta: Var, mean: Tensor, rstd: Tensor },
    Attention { q: Var, k: Var, v: Var, scale: f32 },
    SumAll(Var),
    MeanAll(Var),
    SumAxis { input: Var, axis: usize, keepdim: bool },
    MeanAxis { input: Var, axis: usize, keepdim: bool },
    CrossEntropy { logits: Var, labels: Vec<usize>, probs: Tensor },
    BceLogits { logits: Var, targets: Tensor, sigmoids: Tensor },
    Conv2d { input: Var, weight: Var, spec: Conv2dSpec, cols: Tensor },
    AvgPool2d { input: Var, k: usize },
    MaxPool2d { input: Var, argmax: Vec<usize> },
}

impl Op {
    /// Static metric key for the backward span of this op kind.
    fn bwd_span_key(&self) -> &'static str {
        match self {
            Op::Leaf => "bwd/leaf",
            Op::Add(..) => "bwd/add",
            Op::Sub(..) => "bwd/sub",
            Op::Mul(..) => "bwd/mul",
            Op::Div(..) => "bwd/div",
            Op::Neg(..) => "bwd/neg",
            Op::Scale(..) => "bwd/scale",
            Op::AddScalar(..) => "bwd/add_scalar",
            Op::Matmul(..) => "bwd/matmul",
            Op::Relu(..) => "bwd/relu",
            Op::Gelu(..) => "bwd/gelu",
            Op::Sigmoid(..) => "bwd/sigmoid",
            Op::Tanh(..) => "bwd/tanh",
            Op::Exp(..) => "bwd/exp",
            Op::Ln(..) => "bwd/ln",
            Op::Reshape(..) => "bwd/reshape",
            Op::Permute(..) => "bwd/permute",
            Op::Concat(..) => "bwd/concat",
            Op::Narrow { .. } => "bwd/narrow",
            Op::IndexSelect { .. } => "bwd/index_select",
            Op::SoftmaxLast(..) => "bwd/softmax",
            Op::LogSoftmaxLast(..) => "bwd/log_softmax",
            Op::LayerNorm { .. } => "bwd/layer_norm",
            Op::Attention { .. } => "bwd/attention",
            Op::SumAll(..) => "bwd/sum_all",
            Op::MeanAll(..) => "bwd/mean_all",
            Op::SumAxis { .. } => "bwd/sum_axis",
            Op::MeanAxis { .. } => "bwd/mean_axis",
            Op::CrossEntropy { .. } => "bwd/cross_entropy",
            Op::BceLogits { .. } => "bwd/bce",
            Op::Conv2d { .. } => "bwd/conv2d",
            Op::AvgPool2d { .. } => "bwd/avg_pool2d",
            Op::MaxPool2d { .. } => "bwd/max_pool2d",
        }
    }
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Tensor,
    needs_grad: bool,
}

/// A tape of tensor operations supporting reverse-mode differentiation.
///
/// See the crate-level documentation for an overview and example.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

/// Gradients produced by [`Graph::backward`], indexed by [`Var`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `v`, if `v` required one and was reached.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Takes ownership of the gradient for `v`, leaving `None` behind.
    pub fn take(&mut self, v: Var) -> Option<Tensor> {
        self.grads.get_mut(v.0).and_then(|g| g.take())
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a differentiable input (a parameter or an input requiring
    /// sensitivity analysis).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf, value, true)
    }

    /// Records a non-differentiable input (data, masks, targets).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf, value, false)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Shape of the forward value of `v`.
    pub fn shape(&self, v: Var) -> &[usize] {
        self.nodes[v.0].value.shape()
    }

    fn push(&mut self, op: Op, value: Tensor, needs_grad: bool) -> Var {
        self.nodes.push(Node { op, value, needs_grad });
        Var(self.nodes.len() - 1)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    fn unary(&mut self, input: Var, value: Tensor, op: Op) -> Var {
        let needs = self.needs(input);
        self.push(op, value, needs)
    }

    fn binary(&mut self, a: Var, b: Var, value: Tensor, op: Op) -> Var {
        let needs = self.needs(a) || self.needs(b);
        self.push(op, value, needs)
    }

    // ---- arithmetic -----------------------------------------------------

    /// Broadcasting addition.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = ops::add(self.value(a), self.value(b));
        self.binary(a, b, v, Op::Add(a, b))
    }

    /// Broadcasting subtraction.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = ops::sub(self.value(a), self.value(b));
        self.binary(a, b, v, Op::Sub(a, b))
    }

    /// Broadcasting multiplication.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = ops::mul(self.value(a), self.value(b));
        self.binary(a, b, v, Op::Mul(a, b))
    }

    /// Broadcasting division.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = ops::div(self.value(a), self.value(b));
        self.binary(a, b, v, Op::Div(a, b))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = ops::neg(self.value(a));
        self.unary(a, v, Op::Neg(a))
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = ops::scale(self.value(a), c);
        self.unary(a, v, Op::Scale(a, c))
    }

    /// Addition of a scalar constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = ops::add_scalar(self.value(a), c);
        self.unary(a, v, Op::AddScalar(a))
    }

    /// Batched matrix multiplication (see [`ops::matmul`]).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = ops::matmul(self.value(a), self.value(b));
        self.binary(a, b, v, Op::Matmul(a, b))
    }

    // ---- activations -----------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = ops::relu(self.value(a));
        self.unary(a, v, Op::Relu(a))
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let v = ops::gelu(self.value(a));
        self.unary(a, v, Op::Gelu(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = ops::sigmoid(self.value(a));
        self.unary(a, v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = ops::tanh(self.value(a));
        self.unary(a, v, Op::Tanh(a))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = ops::exp(self.value(a));
        self.unary(a, v, Op::Exp(a))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = ops::ln(self.value(a));
        self.unary(a, v, Op::Ln(a))
    }

    // ---- shape -----------------------------------------------------------

    /// Reshape (supports one `usize::MAX` wildcard, see [`Tensor::reshape`]).
    pub fn reshape(&mut self, a: Var, new_shape: &[usize]) -> Var {
        let v = self.value(a).reshape(new_shape);
        self.unary(a, v, Op::Reshape(a))
    }

    /// Dimension permutation (see [`ops::permute`]).
    pub fn permute(&mut self, a: Var, perm: &[usize]) -> Var {
        let v = ops::permute(self.value(a), perm);
        self.unary(a, v, Op::Permute(a, perm.to_vec()))
    }

    /// Swap of the last two dimensions.
    pub fn transpose_last2(&mut self, a: Var) -> Var {
        let rank = self.shape(a).len();
        let mut perm: Vec<usize> = (0..rank).collect();
        perm.swap(rank - 2, rank - 1);
        self.permute(a, &perm)
    }

    /// Concatenation along `axis`.
    pub fn concat(&mut self, inputs: &[Var], axis: usize) -> Var {
        let tensors: Vec<&Tensor> = inputs.iter().map(|&v| self.value(v)).collect();
        let v = ops::concat(&tensors, axis);
        let needs = inputs.iter().any(|&i| self.needs(i));
        self.push(Op::Concat(inputs.to_vec(), axis), v, needs)
    }

    /// Contiguous slice along `axis` (see [`ops::narrow`]).
    pub fn narrow(&mut self, a: Var, axis: usize, start: usize, len: usize) -> Var {
        let v = ops::narrow(self.value(a), axis, start, len);
        self.unary(a, v, Op::Narrow { input: a, axis, start })
    }

    /// Row gather along dimension 0 (embedding lookup).
    pub fn index_select(&mut self, a: Var, indices: &[usize]) -> Var {
        let v = ops::index_select(self.value(a), indices);
        self.unary(a, v, Op::IndexSelect { input: a, indices: indices.to_vec() })
    }

    // ---- normalization / softmax ------------------------------------------

    /// Softmax over the last dimension.
    pub fn softmax_last(&mut self, a: Var) -> Var {
        let v = ops::softmax_last(self.value(a));
        self.unary(a, v, Op::SoftmaxLast(a))
    }

    /// Log-softmax over the last dimension.
    pub fn log_softmax_last(&mut self, a: Var) -> Var {
        let v = ops::log_softmax_last(self.value(a));
        self.unary(a, v, Op::LogSoftmaxLast(a))
    }

    /// Layer normalization over the last dimension with affine parameters.
    ///
    /// `gamma` and `beta` must be rank-1 of length `D` where `D` is the last
    /// dimension of `x`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let (value, mean, rstd) =
            ops::layer_norm_forward(self.value(x), self.value(gamma), self.value(beta), eps);
        let needs = self.needs(x) || self.needs(gamma) || self.needs(beta);
        self.push(Op::LayerNorm { x, gamma, beta, mean, rstd }, value, needs)
    }

    /// Fused scaled-dot-product attention: `softmax(scale * q kᵀ) v`.
    ///
    /// `q` is `[..., Tq, D]`, `k` is `[..., Tk, D]`, `v` is `[..., Tk, Dv]`
    /// with identical leading dimensions; the result is `[..., Tq, Dv]`.
    /// Unlike composing [`Graph::matmul`], [`Graph::softmax_last`], and
    /// [`Graph::matmul`], this records a single tape node and never
    /// materializes the `[..., Tq, Tk]` score/probability tensors — forward
    /// streams scores per query row and backward recomputes them.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatches between `q`, `k`, and `v`.
    pub fn attention(&mut self, q: Var, k: Var, v: Var, scale: f32) -> Var {
        let value = ops::attention(self.value(q), self.value(k), self.value(v), scale);
        let needs = self.needs(q) || self.needs(k) || self.needs(v);
        self.push(Op::Attention { q, k, v, scale }, value, needs)
    }

    // ---- reductions -------------------------------------------------------

    /// Sum of all elements (scalar result).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = ops::sum_all(self.value(a));
        self.unary(a, v, Op::SumAll(a))
    }

    /// Mean of all elements (scalar result).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = ops::mean_all(self.value(a));
        self.unary(a, v, Op::MeanAll(a))
    }

    /// Sum over one axis.
    pub fn sum_axis(&mut self, a: Var, axis: usize, keepdim: bool) -> Var {
        let v = ops::sum_axis(self.value(a), axis, keepdim);
        self.unary(a, v, Op::SumAxis { input: a, axis, keepdim })
    }

    /// Mean over one axis.
    pub fn mean_axis(&mut self, a: Var, axis: usize, keepdim: bool) -> Var {
        let v = ops::mean_axis(self.value(a), axis, keepdim);
        self.unary(a, v, Op::MeanAxis { input: a, axis, keepdim })
    }

    // ---- losses -----------------------------------------------------------

    /// Mean cross-entropy from logits `[N, C]` against integer labels.
    pub fn cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let (loss, probs) = ops::cross_entropy_logits(self.value(logits), labels);
        let needs = self.needs(logits);
        self.push(
            Op::CrossEntropy { logits, labels: labels.to_vec(), probs },
            Tensor::scalar(loss),
            needs,
        )
    }

    /// Mean binary cross-entropy with logits against 0/1 `targets`.
    pub fn bce_logits(&mut self, logits: Var, targets: &Tensor) -> Var {
        let (loss, sigmoids) = ops::bce_with_logits(self.value(logits), targets);
        let needs = self.needs(logits);
        self.push(
            Op::BceLogits { logits, targets: targets.clone(), sigmoids },
            Tensor::scalar(loss),
            needs,
        )
    }

    // ---- convolution ------------------------------------------------------

    /// 2-D convolution: input `[B, C, H, W]`, weight `[O, C, KH, KW]`.
    ///
    /// The unfolded column matrix is cached for the backward pass.
    pub fn conv2d(&mut self, input: Var, weight: Var, spec: Conv2dSpec) -> Var {
        let iv = self.value(input);
        let wv = self.value(weight);
        let ish = iv.shape().to_vec();
        let wsh = wv.shape().to_vec();
        let (oh, ow) = spec.out_size(ish[2], ish[3]);
        let cols = ops::im2col(iv, &spec);
        let wmat = wv.reshape(&[wsh[0], wsh[1] * spec.kh * spec.kw]);
        let out = ops::matmul(&wmat, &cols).reshape(&[ish[0], wsh[0], oh, ow]);
        let needs = self.needs(input) || self.needs(weight);
        self.push(Op::Conv2d { input, weight, spec, cols }, out, needs)
    }

    /// Average pooling with square window `k`, stride `k`.
    pub fn avg_pool2d(&mut self, input: Var, k: usize) -> Var {
        let v = ops::avg_pool2d(self.value(input), k);
        self.unary(input, v, Op::AvgPool2d { input, k })
    }

    /// Max pooling with square window `k`, stride `k`.
    pub fn max_pool2d(&mut self, input: Var, k: usize) -> Var {
        let (v, argmax) = ops::max_pool2d(self.value(input), k);
        self.unary(input, v, Op::MaxPool2d { input, argmax })
    }

    // ---- backward -----------------------------------------------------------

    /// Computes gradients of the scalar `loss` w.r.t. every differentiable
    /// variable reachable on the tape.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).numel(), 1, "backward requires a scalar loss");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::full(self.value(loss).shape(), 1.0));

        for id in (0..=loss.0).rev() {
            if !self.nodes[id].needs_grad {
                grads[id] = None;
                continue;
            }
            let Some(g) = grads[id].take() else { continue };
            self.backprop_node(id, &g, &mut grads);
            // Keep the gradient available for callers (leaves and
            // intermediates alike).
            grads[id] = Some(g);
        }
        // Gradients of view ops are views themselves (e.g. a permute's
        // gradient is the inverse permute view). Materialize at the API
        // boundary so callers can rely on `Gradients::get(..).data()`.
        for g in grads.iter_mut().flatten() {
            if !g.is_contiguous() {
                *g = g.contiguous();
            }
        }
        Gradients { grads }
    }

    fn accumulate(&self, grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut grads[v.0] {
            // In-place accumulation: reuse the existing gradient buffer
            // instead of allocating a fresh sum tensor per contribution.
            Some(existing) => ops::add_assign(existing, &g),
            slot @ None => *slot = Some(g),
        }
    }

    fn backprop_node(&self, id: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        let _span = crate::metrics::span(self.nodes[id].op.bwd_span_key());
        match &self.nodes[id].op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                let ga = ops::unbroadcast(g, self.shape(*a));
                let gb = ops::unbroadcast(g, self.shape(*b));
                self.accumulate(grads, *a, ga);
                self.accumulate(grads, *b, gb);
            }
            Op::Sub(a, b) => {
                let ga = ops::unbroadcast(g, self.shape(*a));
                let gb = ops::unbroadcast(&ops::neg(g), self.shape(*b));
                self.accumulate(grads, *a, ga);
                self.accumulate(grads, *b, gb);
            }
            Op::Mul(a, b) => {
                let ga = ops::unbroadcast(&ops::mul(g, self.value(*b)), self.shape(*a));
                let gb = ops::unbroadcast(&ops::mul(g, self.value(*a)), self.shape(*b));
                self.accumulate(grads, *a, ga);
                self.accumulate(grads, *b, gb);
            }
            Op::Div(a, b) => {
                let bv = self.value(*b);
                let ga = ops::unbroadcast(&ops::div(g, bv), self.shape(*a));
                // db = -g * a / b^2
                let num = ops::mul(g, self.value(*a));
                let b2 = ops::mul(bv, bv);
                let gb = ops::unbroadcast(&ops::neg(&ops::div(&num, &b2)), self.shape(*b));
                self.accumulate(grads, *a, ga);
                self.accumulate(grads, *b, gb);
            }
            Op::Neg(a) => self.accumulate(grads, *a, ops::neg(g)),
            Op::Scale(a, c) => self.accumulate(grads, *a, ops::scale(g, *c)),
            Op::AddScalar(a) => self.accumulate(grads, *a, g.clone()),
            Op::Matmul(a, b) => {
                let av = self.value(*a);
                let bv = self.value(*b);
                // dA = g @ B^T ; dB = A^T @ g, reduced over broadcast batches.
                let bt = ops::transpose_last2(bv);
                let at = ops::transpose_last2(av);
                let da = ops::matmul(g, &bt);
                let db = ops::matmul(&at, g);
                self.accumulate(grads, *a, reduce_batch(&da, av.shape()));
                self.accumulate(grads, *b, reduce_batch(&db, bv.shape()));
            }
            Op::Relu(a) => {
                self.accumulate(grads, *a, ops::relu_backward(self.value(*a), g));
            }
            Op::Gelu(a) => {
                self.accumulate(grads, *a, ops::gelu_backward(self.value(*a), g));
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[id].value;
                let dg = y.zip(g, |yv, gv| gv * yv * (1.0 - yv));
                self.accumulate(grads, *a, dg);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[id].value;
                let dg = y.zip(g, |yv, gv| gv * (1.0 - yv * yv));
                self.accumulate(grads, *a, dg);
            }
            Op::Exp(a) => {
                let y = &self.nodes[id].value;
                self.accumulate(grads, *a, ops::mul(g, y));
            }
            Op::Ln(a) => {
                self.accumulate(grads, *a, ops::div(g, self.value(*a)));
            }
            Op::Reshape(a) => {
                self.accumulate(grads, *a, g.reshape(self.shape(*a)));
            }
            Op::Permute(a, perm) => {
                let mut inv = vec![0usize; perm.len()];
                for (i, &p) in perm.iter().enumerate() {
                    inv[p] = i;
                }
                self.accumulate(grads, *a, ops::permute(g, &inv));
            }
            Op::Concat(inputs, axis) => {
                let mut start = 0;
                for &inp in inputs {
                    let len = self.shape(inp)[*axis];
                    let piece = ops::narrow(g, *axis, start, len);
                    self.accumulate(grads, inp, piece);
                    start += len;
                }
            }
            Op::Narrow { input, axis, start } => {
                let back =
                    crate::ops_internal::narrow_backward(g, self.shape(*input), *axis, *start);
                self.accumulate(grads, *input, back);
            }
            Op::IndexSelect { input, indices } => {
                let back =
                    crate::ops_internal::index_select_backward(g, self.shape(*input), indices);
                self.accumulate(grads, *input, back);
            }
            Op::SoftmaxLast(a) => {
                let y = &self.nodes[id].value;
                self.accumulate(grads, *a, crate::ops_internal::softmax_last_backward(y, g));
            }
            Op::LogSoftmaxLast(a) => {
                let y = &self.nodes[id].value;
                self.accumulate(grads, *a, crate::ops_internal::log_softmax_last_backward(y, g));
            }
            Op::LayerNorm { x, gamma, beta, mean, rstd } => {
                let (dx, dgamma, dbeta) =
                    layer_norm_backward(self.value(*x), self.value(*gamma), mean, rstd, g);
                self.accumulate(grads, *x, dx);
                self.accumulate(grads, *gamma, dgamma);
                self.accumulate(grads, *beta, dbeta);
            }
            Op::Attention { q, k, v, scale } => {
                let (dq, dk, dv) = ops::attention_backward(
                    self.value(*q),
                    self.value(*k),
                    self.value(*v),
                    *scale,
                    g,
                );
                self.accumulate(grads, *q, dq);
                self.accumulate(grads, *k, dk);
                self.accumulate(grads, *v, dv);
            }
            Op::SumAll(a) => {
                let scalar = g.item();
                self.accumulate(grads, *a, Tensor::full(self.shape(*a), scalar));
            }
            Op::MeanAll(a) => {
                let n = self.value(*a).numel() as f32;
                let scalar = g.item() / n;
                self.accumulate(grads, *a, Tensor::full(self.shape(*a), scalar));
            }
            Op::SumAxis { input, axis, keepdim } => {
                let back = spread_axis(g, self.shape(*input), *axis, *keepdim, 1.0);
                self.accumulate(grads, *input, back);
            }
            Op::MeanAxis { input, axis, keepdim } => {
                let d = self.shape(*input)[*axis] as f32;
                let back = spread_axis(g, self.shape(*input), *axis, *keepdim, 1.0 / d);
                self.accumulate(grads, *input, back);
            }
            Op::CrossEntropy { logits, labels, probs } => {
                let back = ops::cross_entropy_logits_backward(probs, labels, g.item());
                self.accumulate(grads, *logits, back);
            }
            Op::BceLogits { logits, targets, sigmoids } => {
                let back = ops::bce_with_logits_backward(sigmoids, targets, g.item());
                self.accumulate(grads, *logits, back);
            }
            Op::Conv2d { input, weight, spec, cols } => {
                let ish = self.shape(*input).to_vec();
                let wsh = self.shape(*weight).to_vec();
                let (o, ckk) = (wsh[0], wsh[1] * spec.kh * spec.kw);
                let (oh, ow) = spec.out_size(ish[2], ish[3]);
                let gmat = g.reshape(&[ish[0], o, oh * ow]);
                // dW = sum_b g_b @ cols_b^T
                let colst = ops::transpose_last2(cols);
                let dw_b = ops::matmul(&gmat, &colst); // [B, O, CKK]
                let dw = ops::sum_axis(&dw_b, 0, false).reshape(&wsh);
                // dX = col2im(W^T @ g)
                let wmat = self.value(*weight).reshape(&[o, ckk]);
                let wt = ops::transpose_last2(&wmat);
                let dcols = ops::matmul(&wt, &gmat); // [B, CKK, OHOW]
                let dx = ops::col2im(&dcols, spec, ish[1], ish[2], ish[3]);
                self.accumulate(grads, *weight, dw);
                self.accumulate(grads, *input, dx);
            }
            Op::AvgPool2d { input, k } => {
                let ish = self.shape(*input);
                let back = ops::avg_pool2d_backward(g, *k, ish[2], ish[3]);
                self.accumulate(grads, *input, back);
            }
            Op::MaxPool2d { input, argmax } => {
                let back = ops::max_pool2d_backward(g, argmax, self.value(*input).numel());
                self.accumulate(grads, *input, back);
            }
        }
    }
}

/// Reduces matmul gradients over broadcast batch dimensions back to the
/// operand's shape.
fn reduce_batch(grad: &Tensor, target: &[usize]) -> Tensor {
    if grad.shape() == target {
        grad.clone()
    } else {
        ops::unbroadcast(grad, target)
    }
}

/// Broadcasts an axis-reduced gradient back over `orig_shape`, scaling by
/// `factor` (1/d for means).
fn spread_axis(
    g: &Tensor,
    orig_shape: &[usize],
    axis: usize,
    keepdim: bool,
    factor: f32,
) -> Tensor {
    let outer: usize = orig_shape[..axis].iter().product();
    let d = orig_shape[axis];
    let inner: usize = orig_shape[axis + 1..].iter().product();
    let g = g.contiguous(); // the slice kernel below needs packed rows
    let gd = g.data();
    debug_assert_eq!(gd.len(), outer * inner, "reduced grad size mismatch (keepdim={keepdim})");
    let mut out = crate::workspace::take_reserve(outer * d * inner);
    for o in 0..outer {
        let row = &gd[o * inner..(o + 1) * inner];
        for _ in 0..d {
            out.extend(row.iter().map(|&v| v * factor));
        }
    }
    Tensor::from_vec(out, orig_shape)
}

/// Layer-norm backward over the last dimension.
fn layer_norm_backward(
    x: &Tensor,
    gamma: &Tensor,
    mean: &Tensor,
    rstd: &Tensor,
    g: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let d = *x.shape().last().expect("rank >= 1");
    let rows = x.numel() / d;
    let (x, g) = (x.contiguous(), g.contiguous());
    let xd = x.data();
    let gd = g.data();
    let gam = gamma.to_vec();
    let md = mean.data();
    let rd = rstd.data();
    let mut dx = crate::workspace::take_zeroed(x.numel());
    let mut dgamma = crate::workspace::take_zeroed(d);
    let mut dbeta = crate::workspace::take_zeroed(d);
    for r in 0..rows {
        let xrow = &xd[r * d..(r + 1) * d];
        let grow = &gd[r * d..(r + 1) * d];
        let (m, rs) = (md[r], rd[r]);
        // xhat and the two row means needed by the dx formula.
        let mut mean_dxhat = 0.0;
        let mut mean_dxhat_xhat = 0.0;
        for i in 0..d {
            let xhat = (xrow[i] - m) * rs;
            let dxhat = grow[i] * gam[i];
            dgamma[i] += grow[i] * xhat;
            dbeta[i] += grow[i];
            mean_dxhat += dxhat;
            mean_dxhat_xhat += dxhat * xhat;
        }
        mean_dxhat /= d as f32;
        mean_dxhat_xhat /= d as f32;
        let drow = &mut dx[r * d..(r + 1) * d];
        for i in 0..d {
            let xhat = (xrow[i] - m) * rs;
            let dxhat = grow[i] * gam[i];
            drow[i] = rs * (dxhat - mean_dxhat - xhat * mean_dxhat_xhat);
        }
    }
    (Tensor::from_vec(dx, x.shape()), Tensor::from_vec(dgamma, &[d]), Tensor::from_vec(dbeta, &[d]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain_rule() {
        // f = sum((x * 3 + 1)^2), df/dx = 2*(3x+1)*3
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, -2.0], &[2]));
        let a = g.scale(x, 3.0);
        let b = g.add_scalar(a, 1.0);
        let c = g.mul(b, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        let dx = grads.get(x).unwrap();
        assert_eq!(dx.data(), &[24.0, -30.0]);
    }

    #[test]
    fn constants_get_no_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(2.0));
        let c = g.constant(Tensor::scalar(5.0));
        let y = g.mul(x, c);
        let grads = g.backward(y);
        assert_eq!(grads.get(x).unwrap().item(), 5.0);
        assert!(grads.get(c).is_none());
    }

    #[test]
    fn gradient_accumulates_on_reuse() {
        // f = x*x + x  ->  df/dx = 2x + 1
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(3.0));
        let sq = g.mul(x, x);
        let f = g.add(sq, x);
        let grads = g.backward(f);
        assert_eq!(grads.get(x).unwrap().item(), 7.0);
    }

    #[test]
    fn matmul_gradients() {
        // loss = sum(A @ B); dA = ones @ B^T, dB = A^T @ ones.
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = g.leaf(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn broadcast_bias_grad_is_summed() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::arange(6).reshape(&[2, 3]));
        let bias = g.leaf(Tensor::zeros(&[3]));
        let y = g.add(x, bias);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(bias).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn cross_entropy_leaf_grad_shape() {
        let mut g = Graph::new();
        let logits = g.leaf(Tensor::zeros(&[2, 3]));
        let loss = g.cross_entropy(logits, &[0, 2]);
        let grads = g.backward(loss);
        let dl = grads.get(logits).unwrap();
        assert_eq!(dl.shape(), &[2, 3]);
        // Each row sums to zero (softmax - onehot property).
        for r in 0..2 {
            let s: f32 = dl.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn broadcast_batched_matmul_grad_reduces() {
        // a: [2,2,2] (batch), b: [2,2] shared -> db must sum over batch.
        let mut g = Graph::new();
        let a = g.constant(Tensor::ones(&[2, 2, 2]));
        let b = g.leaf(Tensor::ones(&[2, 2]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        assert_eq!(grads.get(b).unwrap().shape(), &[2, 2]);
        assert_eq!(grads.get(b).unwrap().data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2]));
        let y = g.relu(x);
        g.backward(y);
    }
}
