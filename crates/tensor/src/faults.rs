//! Deterministic fault-injection registry (compiled only with the
//! `fault-inject` feature).
//!
//! The registry is a process-global set of one-shot "armed" faults that the
//! production code paths poll at well-defined points:
//!
//! * [`arm_worker_panic`] — the worker pool panics inside the job for the
//!   given chunk index on the next parallel dispatch (exercises the pool's
//!   panic capture/re-raise path, see [`crate::pool::map_chunks`]);
//! * [`arm_checkpoint_tear`] — the next checkpoint save writes only the
//!   first `n` bytes to the destination, simulating a crash mid-write of a
//!   non-atomic writer;
//! * [`arm_checkpoint_bit_flip`] — the next checkpoint save flips bit `k`
//!   of the encoded file, simulating silent storage corruption;
//! * [`arm_nan_grad`] — the training loop poisons the collected gradients
//!   with a NaN at the given optimizer step (exercises the bad-batch guard).
//!
//! Every fault fires **at most once** and is disarmed when it fires, so a
//! test arms exactly the failure it wants and the rest of the run proceeds
//! normally. Faults are global state: suites that use them must serialize
//! their tests (see `tests/fault_injection.rs`).

use std::sync::Mutex;

struct Armed {
    worker_panic_chunk: Option<usize>,
    checkpoint_tear_after: Option<u64>,
    checkpoint_flip_bit: Option<u64>,
    nan_grad_step: Option<u32>,
}

static ARMED: Mutex<Armed> = Mutex::new(Armed {
    worker_panic_chunk: None,
    checkpoint_tear_after: None,
    checkpoint_flip_bit: None,
    nan_grad_step: None,
});

fn armed() -> std::sync::MutexGuard<'static, Armed> {
    // The registry holds no invariants across a panic, so recover the data
    // rather than poisoning every later test in the process.
    ARMED.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms a panic inside the pool job that executes chunk `chunk` of the next
/// parallel dispatch.
pub fn arm_worker_panic(chunk: usize) {
    armed().worker_panic_chunk = Some(chunk);
}

/// Arms a torn checkpoint write: the next save leaves only the first
/// `bytes` bytes at the destination path.
pub fn arm_checkpoint_tear(bytes: u64) {
    armed().checkpoint_tear_after = Some(bytes);
}

/// Arms a single-bit flip at bit index `bit` of the next encoded
/// checkpoint (bit `bit % 8` of byte `bit / 8`).
pub fn arm_checkpoint_bit_flip(bit: u64) {
    armed().checkpoint_flip_bit = Some(bit);
}

/// Arms a NaN gradient injection at optimizer step `step` (0-indexed,
/// counted across the whole run including resumed epochs).
pub fn arm_nan_grad(step: u32) {
    armed().nan_grad_step = Some(step);
}

/// Disarms every pending fault.
pub fn clear_all() {
    let mut a = armed();
    a.worker_panic_chunk = None;
    a.checkpoint_tear_after = None;
    a.checkpoint_flip_bit = None;
    a.nan_grad_step = None;
}

/// Polled by the pool: panics (once) when chunk `chunk` is armed.
///
/// # Panics
///
/// Panics with a recognizable payload when the fault fires — that is the
/// point.
pub fn maybe_panic_worker(chunk: usize) {
    let fire = {
        let mut a = armed();
        if a.worker_panic_chunk == Some(chunk) {
            a.worker_panic_chunk = None;
            true
        } else {
            false
        }
    };
    if fire {
        panic!("injected fault: worker panic at chunk {chunk}");
    }
}

/// Polled by the checkpoint writer: takes a pending tear length.
pub fn take_checkpoint_tear() -> Option<u64> {
    armed().checkpoint_tear_after.take()
}

/// Polled by the checkpoint writer: takes a pending bit-flip index.
pub fn take_checkpoint_bit_flip() -> Option<u64> {
    armed().checkpoint_flip_bit.take()
}

/// Polled by the training loop: true (once) when `step` is armed.
pub fn nan_grad_at(step: u32) -> bool {
    let mut a = armed();
    if a.nan_grad_step == Some(step) {
        a.nan_grad_step = None;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once() {
        clear_all();
        arm_nan_grad(3);
        assert!(!nan_grad_at(2));
        assert!(nan_grad_at(3));
        assert!(!nan_grad_at(3), "fault must disarm after firing");

        arm_checkpoint_tear(17);
        assert_eq!(take_checkpoint_tear(), Some(17));
        assert_eq!(take_checkpoint_tear(), None);

        arm_checkpoint_bit_flip(9);
        assert_eq!(take_checkpoint_bit_flip(), Some(9));
        assert_eq!(take_checkpoint_bit_flip(), None);
        clear_all();
    }
}
