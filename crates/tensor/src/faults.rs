//! Deterministic fault-injection registry (compiled only with the
//! `fault-inject` feature).
//!
//! The registry is a process-global set of one-shot "armed" faults that the
//! production code paths poll at well-defined points:
//!
//! * [`arm_worker_panic`] — the worker pool panics inside the job for the
//!   given chunk index on the next parallel dispatch (exercises the pool's
//!   panic capture/re-raise path, see [`crate::pool::map_chunks`]);
//! * [`arm_checkpoint_tear`] — the next checkpoint save writes only the
//!   first `n` bytes to the destination, simulating a crash mid-write of a
//!   non-atomic writer;
//! * [`arm_checkpoint_bit_flip`] — the next checkpoint save flips bit `k`
//!   of the encoded file, simulating silent storage corruption;
//! * [`arm_nan_grad`] — the training loop poisons the collected gradients
//!   with a NaN at the given optimizer step (exercises the bad-batch guard);
//! * [`arm_accept_stall`] — the serve layer's accept loop stalls for the
//!   given duration before handling the next connection, simulating a
//!   listener hiccup (liveness probes must keep answering afterwards);
//! * [`arm_body_disconnect`] — the serve layer's request-body reader sees
//!   the client vanish after `n` bytes (unexpected EOF mid-body);
//! * [`arm_handler_panic`] — the serve layer's request handler panics while
//!   processing accepted request number `i` (0-indexed, counted across the
//!   process), exercising the connection-boundary panic capture;
//! * [`arm_shard_tear`] — the next vector-index shard save writes only the
//!   first `n` bytes, simulating a crash mid-write of a non-atomic writer;
//! * [`arm_shard_bit_flip`] — the next vector-index shard save flips bit
//!   `k` of the encoded shard, simulating silent at-rest corruption;
//! * [`arm_session_table_full`] — the serve layer's next session create
//!   behaves as if the session table were at capacity (typed 429 without
//!   filling hundreds of real slots);
//! * [`arm_session_route_panic`] — the serve layer's next session-route
//!   handler panics before touching session state (the listener and every
//!   *other* session must survive).
//!
//! Every fault fires **at most once** and is disarmed when it fires, so a
//! test arms exactly the failure it wants and the rest of the run proceeds
//! normally. Faults are global state: suites that use them must serialize
//! their tests (see `tests/fault_injection.rs`).

use std::sync::Mutex;

struct Armed {
    worker_panic_chunk: Option<usize>,
    checkpoint_tear_after: Option<u64>,
    checkpoint_flip_bit: Option<u64>,
    nan_grad_step: Option<u32>,
    accept_stall_ms: Option<u64>,
    body_disconnect_after: Option<usize>,
    handler_panic_request: Option<u64>,
    shard_tear_after: Option<u64>,
    shard_flip_bit: Option<u64>,
    session_table_full: bool,
    session_route_panic: bool,
}

static ARMED: Mutex<Armed> = Mutex::new(Armed {
    worker_panic_chunk: None,
    checkpoint_tear_after: None,
    checkpoint_flip_bit: None,
    nan_grad_step: None,
    accept_stall_ms: None,
    body_disconnect_after: None,
    handler_panic_request: None,
    shard_tear_after: None,
    shard_flip_bit: None,
    session_table_full: false,
    session_route_panic: false,
});

fn armed() -> std::sync::MutexGuard<'static, Armed> {
    // The registry holds no invariants across a panic, so recover the data
    // rather than poisoning every later test in the process.
    ARMED.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms a panic inside the pool job that executes chunk `chunk` of the next
/// parallel dispatch.
pub fn arm_worker_panic(chunk: usize) {
    armed().worker_panic_chunk = Some(chunk);
}

/// Arms a torn checkpoint write: the next save leaves only the first
/// `bytes` bytes at the destination path.
pub fn arm_checkpoint_tear(bytes: u64) {
    armed().checkpoint_tear_after = Some(bytes);
}

/// Arms a single-bit flip at bit index `bit` of the next encoded
/// checkpoint (bit `bit % 8` of byte `bit / 8`).
pub fn arm_checkpoint_bit_flip(bit: u64) {
    armed().checkpoint_flip_bit = Some(bit);
}

/// Arms a NaN gradient injection at optimizer step `step` (0-indexed,
/// counted across the whole run including resumed epochs).
pub fn arm_nan_grad(step: u32) {
    armed().nan_grad_step = Some(step);
}

/// Arms an accept-loop stall: the next connection the serve layer accepts
/// is only handled after `ms` milliseconds.
pub fn arm_accept_stall(ms: u64) {
    armed().accept_stall_ms = Some(ms);
}

/// Arms a mid-body client disconnect: the next request body the serve
/// layer reads hits EOF after `bytes` bytes, regardless of the declared
/// `Content-Length`.
pub fn arm_body_disconnect(bytes: usize) {
    armed().body_disconnect_after = Some(bytes);
}

/// Arms a panic inside the serve layer's handler for accepted request
/// number `request` (0-indexed, counted process-wide).
pub fn arm_handler_panic(request: u64) {
    armed().handler_panic_request = Some(request);
}

/// Arms a torn shard write: the next vector-index shard save leaves only
/// the first `bytes` bytes at the destination path.
pub fn arm_shard_tear(bytes: u64) {
    armed().shard_tear_after = Some(bytes);
}

/// Arms a single-bit flip at bit index `bit` of the next encoded
/// vector-index shard (bit `bit % 8` of byte `bit / 8`, modulo length).
pub fn arm_shard_bit_flip(bit: u64) {
    armed().shard_flip_bit = Some(bit);
}

/// Arms a session-table exhaustion: the serve layer's next session create
/// reports the table at capacity.
pub fn arm_session_table_full() {
    armed().session_table_full = true;
}

/// Arms a panic inside the serve layer's next session-route handler,
/// firing before any session state is touched.
pub fn arm_session_route_panic() {
    armed().session_route_panic = true;
}

/// Disarms every pending fault.
pub fn clear_all() {
    let mut a = armed();
    a.worker_panic_chunk = None;
    a.checkpoint_tear_after = None;
    a.checkpoint_flip_bit = None;
    a.nan_grad_step = None;
    a.accept_stall_ms = None;
    a.body_disconnect_after = None;
    a.handler_panic_request = None;
    a.shard_tear_after = None;
    a.shard_flip_bit = None;
    a.session_table_full = false;
    a.session_route_panic = false;
}

/// Polled by the pool: panics (once) when chunk `chunk` is armed.
///
/// # Panics
///
/// Panics with a recognizable payload when the fault fires — that is the
/// point.
pub fn maybe_panic_worker(chunk: usize) {
    let fire = {
        let mut a = armed();
        if a.worker_panic_chunk == Some(chunk) {
            a.worker_panic_chunk = None;
            true
        } else {
            false
        }
    };
    if fire {
        panic!("injected fault: worker panic at chunk {chunk}");
    }
}

/// Polled by the checkpoint writer: takes a pending tear length.
pub fn take_checkpoint_tear() -> Option<u64> {
    armed().checkpoint_tear_after.take()
}

/// Polled by the checkpoint writer: takes a pending bit-flip index.
pub fn take_checkpoint_bit_flip() -> Option<u64> {
    armed().checkpoint_flip_bit.take()
}

/// Polled by the training loop: true (once) when `step` is armed.
pub fn nan_grad_at(step: u32) -> bool {
    let mut a = armed();
    if a.nan_grad_step == Some(step) {
        a.nan_grad_step = None;
        true
    } else {
        false
    }
}

/// Polled by the shard writer: takes a pending tear length.
pub fn take_shard_tear() -> Option<u64> {
    armed().shard_tear_after.take()
}

/// Polled by the shard writer: takes a pending bit-flip index.
pub fn take_shard_bit_flip() -> Option<u64> {
    armed().shard_flip_bit.take()
}

/// Polled by the serve accept loop: takes a pending stall in milliseconds.
pub fn take_accept_stall() -> Option<u64> {
    armed().accept_stall_ms.take()
}

/// Polled by the serve body reader: takes a pending mid-body disconnect
/// byte count.
pub fn take_body_disconnect() -> Option<usize> {
    armed().body_disconnect_after.take()
}

/// Polled by the serve session table: true (once) when exhaustion is
/// armed.
pub fn take_session_table_full() -> bool {
    let mut a = armed();
    std::mem::take(&mut a.session_table_full)
}

/// Polled by the serve session routes: true (once) when a route panic is
/// armed. The caller panics when this fires — the registry only decides
/// *when*.
pub fn take_session_route_panic() -> bool {
    let mut a = armed();
    std::mem::take(&mut a.session_route_panic)
}

/// Polled by the serve request handler: true (once) when accepted request
/// number `request` is armed.
///
/// The caller panics when this fires — the registry only decides *when*.
pub fn handler_panic_at(request: u64) -> bool {
    let mut a = armed();
    if a.handler_panic_request == Some(request) {
        a.handler_panic_request = None;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once() {
        clear_all();
        arm_nan_grad(3);
        assert!(!nan_grad_at(2));
        assert!(nan_grad_at(3));
        assert!(!nan_grad_at(3), "fault must disarm after firing");

        arm_checkpoint_tear(17);
        assert_eq!(take_checkpoint_tear(), Some(17));
        assert_eq!(take_checkpoint_tear(), None);

        arm_checkpoint_bit_flip(9);
        assert_eq!(take_checkpoint_bit_flip(), Some(9));
        assert_eq!(take_checkpoint_bit_flip(), None);

        arm_accept_stall(25);
        assert_eq!(take_accept_stall(), Some(25));
        assert_eq!(take_accept_stall(), None);

        arm_body_disconnect(64);
        assert_eq!(take_body_disconnect(), Some(64));
        assert_eq!(take_body_disconnect(), None);

        arm_handler_panic(5);
        assert!(!handler_panic_at(4));
        assert!(handler_panic_at(5));
        assert!(!handler_panic_at(5), "fault must disarm after firing");

        arm_shard_tear(33);
        assert_eq!(take_shard_tear(), Some(33));
        assert_eq!(take_shard_tear(), None);

        arm_shard_bit_flip(12);
        assert_eq!(take_shard_bit_flip(), Some(12));
        assert_eq!(take_shard_bit_flip(), None);

        arm_session_table_full();
        assert!(take_session_table_full());
        assert!(!take_session_table_full(), "fault must disarm after firing");

        arm_session_route_panic();
        assert!(take_session_route_panic());
        assert!(!take_session_route_panic(), "fault must disarm after firing");
        clear_all();
    }
}
