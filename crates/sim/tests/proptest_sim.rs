//! Property-based tests of simulator invariants over randomly sampled
//! scenarios.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_sim::{SamplerConfig, ScenarioSampler, SpeedProfile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sampled_worlds_simulate_without_nans(seed in 0u64..10_000) {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let g = sampler.sample(&mut rng);
        let traj = g.world.simulate(0.1);
        for e in &traj.ego {
            prop_assert!(e.pose.position.x.is_finite() && e.pose.position.y.is_finite());
            prop_assert!(e.speed.is_finite() && e.speed >= 0.0);
            prop_assert!(e.speed < 20.0, "ego ran away: {}", e.speed);
        }
        for states in &traj.actors {
            for a in states {
                prop_assert!(a.pose.position.x.is_finite() && a.pose.position.y.is_finite());
                prop_assert!(a.speed >= 0.0 && a.speed < 20.0);
            }
        }
    }

    #[test]
    fn ego_tracks_its_reference_path(seed in 0u64..10_000) {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let g = sampler.sample(&mut rng);
        let traj = g.world.simulate(0.05);
        for e in traj.ego.iter().step_by(10) {
            let cte = g.world.ego.path.lateral_offset(e.pose.position).abs();
            prop_assert!(cte < 1.2, "cross-track error {cte} in `{}`", g.truth);
        }
    }

    #[test]
    fn ego_arc_length_is_monotone(seed in 0u64..10_000) {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let g = sampler.sample(&mut rng);
        let traj = g.world.simulate(0.1);
        for w in traj.ego.windows(2) {
            prop_assert!(w[1].s >= w[0].s - 1e-4);
        }
    }

    #[test]
    fn stop_profiles_never_exceed_cruise(cruise in 3.0f32..12.0, stop_s in 20.0f32..60.0) {
        let p = SpeedProfile::StopAt { cruise, stop_s, decel: 2.5 };
        for i in 0..200 {
            let s = i as f32 * 0.5;
            let v = p.target_speed(s);
            prop_assert!(v <= cruise + 1e-5);
            prop_assert!(v >= 0.0);
            if s >= stop_s {
                prop_assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn truth_matches_world_structure(seed in 0u64..10_000) {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let g = sampler.sample(&mut rng);
        prop_assert!(g.truth.validate().is_ok());
        prop_assert_eq!(g.world.actors.len(), g.truth.actors.len());
        prop_assert_eq!(g.world.road.kind(), g.truth.road);
        for (actor, clause) in g.world.actors.iter().zip(&g.truth.actors) {
            prop_assert_eq!(actor.kind, clause.kind);
        }
    }
}
