//! Road layouts: lane geometry for each SDL road kind.
//!
//! All layouts are expressed in a common frame: the ego vehicle approaches
//! from the south heading north (+y), and the "anchor" of the layout (curve
//! onset, intersection center) sits at the origin. Right-hand traffic.

use std::f32::consts::FRAC_PI_2;

use tsdx_sdl::RoadKind;

use crate::geometry::Vec2;
use crate::path::Path;

/// Lane width in meters.
pub const LANE_WIDTH: f32 = 3.5;

/// Half a lane width: center offset of the innermost lane.
pub const HALF_LANE: f32 = LANE_WIDTH / 2.0;

/// Distance south of the anchor where ego-lane paths begin.
pub const APPROACH_LEN: f32 = 80.0;

/// Distance past the anchor where paths end.
pub const EXIT_LEN: f32 = 120.0;

/// Radius used for curved roads.
pub const CURVE_RADIUS: f32 = 45.0;

/// A drivable lane: an arc-length path at the lane center plus its width.
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    /// Center-line path in travel direction.
    pub center: Path,
    /// Lane width (m).
    pub width: f32,
}

/// Concrete geometry for one [`RoadKind`].
///
/// # Examples
///
/// ```
/// use tsdx_sdl::RoadKind;
/// use tsdx_sim::RoadLayout;
///
/// let road = RoadLayout::build(RoadKind::Intersection);
/// assert!(road.ego_lane().length() > 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RoadLayout {
    kind: RoadKind,
    ego_lane: Path,
    ego_left_lane: Option<Path>,
    oncoming_lane: Path,
    cross_east: Option<Path>,
    cross_west: Option<Path>,
    surfaces: Vec<Lane>,
    markings: Vec<Path>,
}

impl RoadLayout {
    /// Builds the canonical layout for `kind`.
    pub fn build(kind: RoadKind) -> Self {
        match kind {
            RoadKind::Straight => Self::straight(),
            RoadKind::CurveLeft => Self::curve(true),
            RoadKind::CurveRight => Self::curve(false),
            RoadKind::Intersection => Self::intersection(),
        }
    }

    /// Which SDL road kind this layout realizes.
    pub fn kind(&self) -> RoadKind {
        self.kind
    }

    /// The ego vehicle's default lane (rightmost same-direction lane),
    /// running from the southern approach to the northern exit.
    pub fn ego_lane(&self) -> &Path {
        &self.ego_lane
    }

    /// The same-direction lane left of the ego lane (straight roads only).
    pub fn ego_left_lane(&self) -> Option<&Path> {
        self.ego_left_lane.as_ref()
    }

    /// The opposing-traffic lane adjacent to the centerline, in *its* travel
    /// direction (north to south).
    pub fn oncoming_lane(&self) -> &Path {
        &self.oncoming_lane
    }

    /// Eastbound cross-street lane (intersections only).
    pub fn cross_east(&self) -> Option<&Path> {
        self.cross_east.as_ref()
    }

    /// Westbound cross-street lane (intersections only).
    pub fn cross_west(&self) -> Option<&Path> {
        self.cross_west.as_ref()
    }

    /// Paved surfaces for rendering (lane strips with widths).
    pub fn surfaces(&self) -> &[Lane] {
        &self.surfaces
    }

    /// Painted lane-marking polylines for rendering.
    pub fn markings(&self) -> &[Path] {
        &self.markings
    }

    /// Ego path for a right turn at the intersection: approach north, turn
    /// onto the eastbound lane.
    ///
    /// Returns `None` on non-intersection layouts.
    pub fn ego_turn_right(&self) -> Option<Path> {
        if self.kind != RoadKind::Intersection {
            return None;
        }
        // Approach in the ego lane up to the intersection edge, arc right
        // onto y = -HALF_LANE heading east, then exit east.
        let entry_y = -8.0;
        let approach =
            Path::line(Vec2::new(HALF_LANE, -APPROACH_LEN), FRAC_PI_2, APPROACH_LEN + entry_y);
        // Arc from (HALF_LANE, -8) to (8, -HALF_LANE): radius such that the
        // quarter arc meets both; center at (HALF_LANE + r, -8).
        let r = 8.0 - HALF_LANE;
        let arc = Path::arc(Vec2::new(HALF_LANE, entry_y), FRAC_PI_2, r, -FRAC_PI_2);
        let exit = Path::line(Vec2::new(8.0, -HALF_LANE), 0.0, EXIT_LEN);
        Some(approach.then(&arc).then(&exit))
    }

    /// Ego path for a left turn at the intersection: approach north, turn
    /// onto the westbound lane.
    ///
    /// Returns `None` on non-intersection layouts.
    pub fn ego_turn_left(&self) -> Option<Path> {
        if self.kind != RoadKind::Intersection {
            return None;
        }
        let entry_y = -8.0;
        let approach =
            Path::line(Vec2::new(HALF_LANE, -APPROACH_LEN), FRAC_PI_2, APPROACH_LEN + entry_y);
        // Arc from (HALF_LANE, -8) to (-8, HALF_LANE) heading west.
        let r = 8.0 + HALF_LANE;
        let arc = Path::arc(Vec2::new(HALF_LANE, entry_y), FRAC_PI_2, r, FRAC_PI_2);
        let exit = Path::line(Vec2::new(-8.0, HALF_LANE), std::f32::consts::PI, EXIT_LEN);
        Some(approach.then(&arc).then(&exit))
    }

    fn straight() -> Self {
        let north = FRAC_PI_2;
        let south = -FRAC_PI_2;
        let full = APPROACH_LEN + EXIT_LEN;
        let ego = Path::line(Vec2::new(LANE_WIDTH + HALF_LANE, -APPROACH_LEN), north, full);
        let ego_left = Path::line(Vec2::new(HALF_LANE, -APPROACH_LEN), north, full);
        let oncoming = Path::line(Vec2::new(-HALF_LANE, EXIT_LEN), south, full);
        let oncoming_outer = Path::line(Vec2::new(-LANE_WIDTH - HALF_LANE, EXIT_LEN), south, full);
        let center_marking = Path::line(Vec2::new(0.0, -APPROACH_LEN), north, full);
        let right_sep = Path::line(Vec2::new(LANE_WIDTH, -APPROACH_LEN), north, full);
        let left_sep = Path::line(Vec2::new(-LANE_WIDTH, -APPROACH_LEN), north, full);
        let surfaces = vec![
            Lane { center: ego.clone(), width: LANE_WIDTH },
            Lane { center: ego_left.clone(), width: LANE_WIDTH },
            Lane { center: oncoming.clone(), width: LANE_WIDTH },
            Lane { center: oncoming_outer, width: LANE_WIDTH },
        ];
        RoadLayout {
            kind: RoadKind::Straight,
            ego_lane: ego,
            ego_left_lane: Some(ego_left),
            oncoming_lane: oncoming,
            cross_east: None,
            cross_west: None,
            surfaces,
            markings: vec![center_marking, right_sep, left_sep],
        }
    }

    fn curve(left: bool) -> Self {
        let north = FRAC_PI_2;
        let sweep: f32 = if left { 1.2 } else { -1.2 };
        // Ego lane: straight approach then constant-radius arc.
        let build_lane = |x_off: f32, dir_north: bool| {
            // Lane offset from road centerline; arc radius adjusts so lanes
            // stay parallel: left curve center is west of the road.
            // All lanes share the curve center, so a lane east of the road
            // centerline has a larger radius on a left curve and a smaller
            // one on a right curve.
            let r = if left { CURVE_RADIUS + x_off } else { CURVE_RADIUS - x_off };
            if dir_north {
                let approach = Path::line(Vec2::new(x_off, -APPROACH_LEN), north, APPROACH_LEN);
                let arc = Path::arc(Vec2::new(x_off, 0.0), north, r, sweep);
                approach.then(&arc)
            } else {
                // Southbound: start at the arc end and come back. Build the
                // northbound geometry, then reverse its points.
                let approach = Path::line(Vec2::new(x_off, -APPROACH_LEN), north, APPROACH_LEN);
                let arc = Path::arc(Vec2::new(x_off, 0.0), north, r, sweep);
                let fwd = approach.then(&arc);
                let mut pts: Vec<Vec2> = fwd.points().to_vec();
                pts.reverse();
                Path::from_points(pts)
            }
        };
        let ego = build_lane(HALF_LANE, true);
        let oncoming = build_lane(-HALF_LANE, false);
        let marking = build_lane(0.0, true);
        let surfaces = vec![
            Lane { center: ego.clone(), width: LANE_WIDTH },
            Lane { center: build_lane(-HALF_LANE, true), width: LANE_WIDTH },
        ];
        RoadLayout {
            kind: if left { RoadKind::CurveLeft } else { RoadKind::CurveRight },
            ego_lane: ego,
            ego_left_lane: None,
            oncoming_lane: oncoming,
            cross_east: None,
            cross_west: None,
            surfaces,
            markings: vec![marking],
        }
    }

    fn intersection() -> Self {
        let north = FRAC_PI_2;
        let south = -FRAC_PI_2;
        let east = 0.0;
        let west = std::f32::consts::PI;
        let full = APPROACH_LEN + EXIT_LEN;
        let ego = Path::line(Vec2::new(HALF_LANE, -APPROACH_LEN), north, full);
        let oncoming = Path::line(Vec2::new(-HALF_LANE, EXIT_LEN), south, full);
        let cross_e = Path::line(Vec2::new(-APPROACH_LEN, -HALF_LANE), east, full);
        let cross_w = Path::line(Vec2::new(EXIT_LEN, HALF_LANE), west, full);
        let ns_marking = Path::line(Vec2::new(0.0, -APPROACH_LEN), north, full);
        let ew_marking = Path::line(Vec2::new(-APPROACH_LEN, 0.0), east, full);
        let surfaces = vec![
            Lane { center: ego.clone(), width: LANE_WIDTH },
            Lane { center: oncoming.clone(), width: LANE_WIDTH },
            Lane { center: cross_e.clone(), width: LANE_WIDTH },
            Lane { center: cross_w.clone(), width: LANE_WIDTH },
        ];
        RoadLayout {
            kind: RoadKind::Intersection,
            ego_lane: ego,
            ego_left_lane: None,
            oncoming_lane: oncoming,
            cross_east: Some(cross_e),
            cross_west: Some(cross_w),
            surfaces,
            markings: vec![ns_marking, ew_marking],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_lanes_are_parallel_and_offset() {
        let r = RoadLayout::build(RoadKind::Straight);
        assert_eq!(r.kind(), RoadKind::Straight);
        let ego_mid = r.ego_lane().pose_at(50.0);
        assert!((ego_mid.position.x - (LANE_WIDTH + HALF_LANE)).abs() < 1e-3);
        let left = r.ego_left_lane().unwrap().pose_at(50.0);
        assert!((left.position.x - HALF_LANE).abs() < 1e-3);
        // Oncoming lane heads south.
        let onc = r.oncoming_lane().pose_at(10.0);
        assert!((crate::geometry::wrap_angle(onc.heading + FRAC_PI_2)).abs() < 1e-3);
    }

    #[test]
    fn curves_bend_the_expected_way() {
        let l = RoadLayout::build(RoadKind::CurveLeft);
        let end = l.ego_lane().pose_at(l.ego_lane().length()).position;
        assert!(end.x < -5.0, "left curve should end west of start, got {end:?}");

        let r = RoadLayout::build(RoadKind::CurveRight);
        let end = r.ego_lane().pose_at(r.ego_lane().length()).position;
        assert!(end.x > 5.0, "right curve should end east of start, got {end:?}");
    }

    #[test]
    fn intersection_cross_lanes_cross_ego_path() {
        let ix = RoadLayout::build(RoadKind::Intersection);
        let ce = ix.cross_east().unwrap();
        // Eastbound lane passes south of the center, crossing x = HALF_LANE.
        let s = ce.project(Vec2::new(HALF_LANE, -HALF_LANE));
        let p = ce.pose_at(s).position;
        assert!(p.distance(Vec2::new(HALF_LANE, -HALF_LANE)) < 0.6);
        assert!(ix.cross_west().is_some());
        assert!(RoadLayout::build(RoadKind::Straight).cross_east().is_none());
    }

    #[test]
    fn turn_paths_join_cross_street_lanes() {
        let ix = RoadLayout::build(RoadKind::Intersection);
        let right = ix.ego_turn_right().unwrap();
        let end = right.pose_at(right.length());
        // Ends heading east on the eastbound lane.
        assert!((end.position.y - -HALF_LANE).abs() < 0.2, "{:?}", end.position);
        assert!(end.heading.abs() < 0.05);

        let left = ix.ego_turn_left().unwrap();
        let end = left.pose_at(left.length());
        assert!((end.position.y - HALF_LANE).abs() < 0.2, "{:?}", end.position);
        assert!((crate::geometry::wrap_angle(end.heading - std::f32::consts::PI)).abs() < 0.05);
    }

    #[test]
    fn turns_unavailable_off_intersections() {
        assert!(RoadLayout::build(RoadKind::Straight).ego_turn_left().is_none());
        assert!(RoadLayout::build(RoadKind::CurveLeft).ego_turn_right().is_none());
    }

    #[test]
    fn surfaces_and_markings_exist_for_all_kinds() {
        for kind in RoadKind::ALL {
            let r = RoadLayout::build(*kind);
            assert!(!r.surfaces().is_empty());
            assert!(!r.markings().is_empty());
        }
    }
}
