//! Arc-length parameterized paths.
//!
//! Every trajectory in the simulator — ego reference lines, NPC routes,
//! pedestrian crossings — is a [`Path`]: a densely sampled polyline with
//! cumulative arc length, queried by `pose_at(s)`. Constructors build the
//! common shapes (straight segments, circular arcs, lane-change S-curves)
//! and [`Path::then`] composes them.

use crate::geometry::{Pose, Vec2};

/// Sampling step used when discretizing analytic shapes (m).
const SAMPLE_STEP: f32 = 0.5;

/// An arc-length parameterized polyline path.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    points: Vec<Vec2>,
    cum_len: Vec<f32>,
}

impl Path {
    /// Builds a path from waypoints (at least two, consecutive points
    /// distinct).
    ///
    /// # Panics
    ///
    /// Panics on fewer than two points or coincident consecutive points.
    pub fn from_points(points: Vec<Vec2>) -> Self {
        assert!(points.len() >= 2, "path needs at least two points");
        let mut cum_len = Vec::with_capacity(points.len());
        cum_len.push(0.0);
        for w in points.windows(2) {
            let d = w[0].distance(w[1]);
            assert!(d > 1e-6, "coincident consecutive path points");
            cum_len.push(cum_len.last().unwrap() + d);
        }
        Path { points, cum_len }
    }

    /// A straight segment from `start` along `heading` for `length` meters.
    pub fn line(start: Vec2, heading: f32, length: f32) -> Self {
        assert!(length > 0.0, "line length must be positive");
        let dir = Vec2::from_heading(heading);
        let n = (length / SAMPLE_STEP).ceil().max(1.0) as usize;
        let pts = (0..=n).map(|i| start + dir * (length * i as f32 / n as f32)).collect();
        Path::from_points(pts)
    }

    /// A circular arc starting at `start` with initial `heading`, turning
    /// through `sweep` radians (positive = left/CCW) at `radius` meters.
    pub fn arc(start: Vec2, heading: f32, radius: f32, sweep: f32) -> Self {
        assert!(radius > 0.0, "arc radius must be positive");
        assert!(sweep.abs() > 1e-3, "arc sweep must be nonzero");
        let side = sweep.signum();
        // Center is perpendicular to the heading, on the turning side.
        let center = start + Vec2::from_heading(heading).perp() * (radius * side);
        let start_angle = (start - center).heading();
        let arc_len = radius * sweep.abs();
        let n = (arc_len / SAMPLE_STEP).ceil().max(2.0) as usize;
        let pts = (0..=n)
            .map(|i| {
                let a = start_angle + sweep * i as f32 / n as f32;
                center + Vec2::from_heading(a) * radius
            })
            .collect();
        Path::from_points(pts)
    }

    /// A lane-change S-curve: advances `length` meters along `heading` while
    /// shifting `lateral` meters to the left (negative = right), easing with
    /// a smoothstep profile.
    pub fn lane_change(start: Vec2, heading: f32, length: f32, lateral: f32) -> Self {
        assert!(length > 0.0, "lane change length must be positive");
        let fwd = Vec2::from_heading(heading);
        let left = fwd.perp();
        let n = (length / SAMPLE_STEP).ceil().max(4.0) as usize;
        let pts = (0..=n)
            .map(|i| {
                let t = i as f32 / n as f32;
                // Smoothstep: zero slope at both ends.
                let ease = t * t * (3.0 - 2.0 * t);
                start + fwd * (length * t) + left * (lateral * ease)
            })
            .collect();
        Path::from_points(pts)
    }

    /// Concatenates `next` onto the end of this path.
    ///
    /// The first point of `next` must coincide (within 1 mm) with this
    /// path's last point.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints do not line up.
    #[must_use]
    pub fn then(mut self, next: &Path) -> Self {
        let end = *self.points.last().expect("non-empty path");
        assert!(
            end.distance(next.points[0]) < 1e-3,
            "paths do not join: {:?} vs {:?}",
            end,
            next.points[0]
        );
        let base = *self.cum_len.last().expect("non-empty path");
        for (p, l) in next.points.iter().zip(&next.cum_len).skip(1) {
            self.points.push(*p);
            self.cum_len.push(base + l);
        }
        self
    }

    /// Total arc length (m).
    pub fn length(&self) -> f32 {
        *self.cum_len.last().expect("non-empty path")
    }

    /// Pose at arc length `s`, clamped to the path's extent.
    ///
    /// The heading is the direction of the local segment.
    pub fn pose_at(&self, s: f32) -> Pose {
        let s = s.clamp(0.0, self.length());
        // Binary search the segment containing s.
        let i = match self.cum_len.binary_search_by(|&l| l.partial_cmp(&s).expect("finite")) {
            Ok(i) => i.min(self.points.len() - 2),
            Err(i) => (i - 1).min(self.points.len() - 2),
        };
        let seg_len = self.cum_len[i + 1] - self.cum_len[i];
        let t = if seg_len > 0.0 { (s - self.cum_len[i]) / seg_len } else { 0.0 };
        let position = self.points[i].lerp(self.points[i + 1], t);
        let heading = (self.points[i + 1] - self.points[i]).heading();
        Pose { position, heading }
    }

    /// First point.
    pub fn start(&self) -> Vec2 {
        self.points[0]
    }

    /// Last point.
    pub fn end(&self) -> Vec2 {
        *self.points.last().expect("non-empty path")
    }

    /// The waypoints of the polyline.
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// Arc length of the point on the path closest to `p` (by vertex; the
    /// 0.5 m sampling bounds the error).
    pub fn project(&self, p: Vec2) -> f32 {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (i, pt) in self.points.iter().enumerate() {
            let d = pt.distance(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        self.cum_len[best]
    }

    /// Lateral offset of `p` from the path (positive = left of travel
    /// direction), measured at the nearest vertex.
    pub fn lateral_offset(&self, p: Vec2) -> f32 {
        let s = self.project(p);
        let pose = self.pose_at(s);
        pose.world_to_local(p).y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_2;

    #[test]
    fn line_length_and_poses() {
        let p = Path::line(Vec2::ZERO, FRAC_PI_2, 20.0);
        assert!((p.length() - 20.0).abs() < 1e-4);
        let mid = p.pose_at(10.0);
        assert!(mid.position.distance(Vec2::new(0.0, 10.0)) < 1e-4);
        assert!((mid.heading - FRAC_PI_2).abs() < 1e-4);
    }

    #[test]
    fn pose_clamps_outside_range() {
        let p = Path::line(Vec2::ZERO, 0.0, 5.0);
        assert!(p.pose_at(-3.0).position.distance(Vec2::ZERO) < 1e-5);
        assert!(p.pose_at(99.0).position.distance(Vec2::new(5.0, 0.0)) < 1e-4);
    }

    #[test]
    fn left_arc_quarter_turn() {
        // Start at origin heading north, turn left 90° with radius 10:
        // ends at (-10, 10) heading west.
        let p = Path::arc(Vec2::ZERO, FRAC_PI_2, 10.0, FRAC_PI_2);
        assert!((p.length() - 10.0 * FRAC_PI_2).abs() < 0.05);
        let end = p.end();
        assert!(end.distance(Vec2::new(-10.0, 10.0)) < 0.05, "{end:?}");
        let h = p.pose_at(p.length()).heading;
        assert!((crate::geometry::wrap_angle(h - std::f32::consts::PI)).abs() < 0.05);
    }

    #[test]
    fn right_arc_quarter_turn() {
        let p = Path::arc(Vec2::ZERO, FRAC_PI_2, 10.0, -FRAC_PI_2);
        assert!(p.end().distance(Vec2::new(10.0, 10.0)) < 0.05);
    }

    #[test]
    fn lane_change_shifts_laterally() {
        // Heading north, lateral +3.5 means 3.5 m to the west (left).
        let p = Path::lane_change(Vec2::ZERO, FRAC_PI_2, 20.0, 3.5);
        let end = p.end();
        assert!(end.distance(Vec2::new(-3.5, 20.0)) < 0.05, "{end:?}");
        // Midpoint is halfway through the shift.
        let mid = p.pose_at(p.length() / 2.0).position;
        assert!(mid.x < -1.0 && mid.x > -2.5);
    }

    #[test]
    fn then_concatenates_lengths() {
        let a = Path::line(Vec2::ZERO, 0.0, 10.0);
        let b = Path::line(Vec2::new(10.0, 0.0), 0.0, 5.0);
        let c = a.then(&b);
        assert!((c.length() - 15.0).abs() < 1e-3);
        assert!(c.pose_at(12.0).position.distance(Vec2::new(12.0, 0.0)) < 1e-3);
    }

    #[test]
    #[should_panic]
    fn then_rejects_disjoint_paths() {
        let a = Path::line(Vec2::ZERO, 0.0, 10.0);
        let b = Path::line(Vec2::new(50.0, 0.0), 0.0, 5.0);
        let _ = a.then(&b);
    }

    #[test]
    fn projection_and_lateral_offset() {
        let p = Path::line(Vec2::ZERO, FRAC_PI_2, 30.0);
        // Point west of the path at height 12 -> s ~= 12, offset ~= +4 (left).
        let s = p.project(Vec2::new(-4.0, 12.0));
        assert!((s - 12.0).abs() < 0.6);
        let off = p.lateral_offset(Vec2::new(-4.0, 12.0));
        assert!((off - 4.0).abs() < 0.1, "{off}");
        // East side is negative (right of travel).
        assert!(p.lateral_offset(Vec2::new(4.0, 12.0)) < -3.9);
    }
}
