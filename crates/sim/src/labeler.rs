//! Kinematic labeling: recovers SDL facts from simulated trajectories.
//!
//! The generator in [`crate::scenario_gen`] knows the ground truth by
//! construction; this module re-derives it from kinematics alone. Its roles:
//!
//! * cross-validate the generator (property tests assert
//!   `infer(simulate(generate(spec))) == spec`);
//! * provide the non-learned *heuristic baseline* building blocks used by
//!   `tsdx-baselines` (the baseline sees only noisy estimates, but the
//!   decision rules are shared).
//!
//! Position attributes are *not* re-derived: SDL positions describe where
//! the interaction semantically happens (an overtaker is "left" even while
//! still behind), which is a generator-level fact.

use tsdx_sdl::{ActorAction, EgoManeuver, Position, RoadKind};

use crate::actors::ActorState;
use crate::geometry::wrap_angle;
use crate::world::{EgoState, Trajectory, World};

/// Minimum net speed gain to call the ego maneuver "accelerate" (m/s).
const ACCEL_GAIN: f32 = 2.5;

/// Net heading change that counts as a turn (rad).
const TURN_HEADING: f32 = 0.5;

/// Lateral displacement that counts as a lane change (m).
const LANE_SHIFT: f32 = 2.5;

/// Infers the ego maneuver from its trajectory and the road kind.
pub fn infer_ego_maneuver(traj: &Trajectory, road: RoadKind) -> EgoManeuver {
    let first = traj.ego.first().expect("non-empty trajectory");
    let last = traj.ego.last().expect("non-empty trajectory");
    let max_speed = traj.ego.iter().map(|e| e.speed).fold(0.0, f32::max);

    if last.speed < 0.5 && max_speed > 3.0 {
        return EgoManeuver::DecelerateToStop;
    }
    if last.speed - first.speed > ACCEL_GAIN {
        return EgoManeuver::Accelerate;
    }
    if road == RoadKind::Intersection {
        let dh = wrap_angle(last.pose.heading - first.pose.heading);
        if dh > TURN_HEADING {
            return EgoManeuver::TurnLeft;
        }
        if dh < -TURN_HEADING {
            return EgoManeuver::TurnRight;
        }
    }
    if road == RoadKind::Straight {
        // Lateral displacement in the initial-heading frame.
        let lateral = first.pose.world_to_local(last.pose.position).y;
        if lateral > LANE_SHIFT {
            return EgoManeuver::LaneChangeLeft;
        }
        if lateral < -LANE_SHIFT {
            return EgoManeuver::LaneChangeRight;
        }
    }
    EgoManeuver::Cruise
}

/// Coarse position of `actor` relative to `ego` at one instant.
pub fn relative_position(ego: &EgoState, actor: &ActorState) -> Position {
    let local = ego.pose.world_to_local(actor.pose.position);
    if local.x.abs() >= local.y.abs() {
        if local.x >= 0.0 {
            Position::Ahead
        } else {
            Position::Behind
        }
    } else if local.y >= 0.0 {
        Position::Left
    } else {
        Position::Right
    }
}

/// Infers what actor `idx` is doing relative to the ego vehicle.
///
/// Returns `None` when the actor is inactive for (almost) the whole clip.
pub fn infer_actor_action(world: &World, traj: &Trajectory, idx: usize) -> Option<ActorAction> {
    let states = &traj.actors[idx];
    let active: Vec<usize> = (0..states.len()).filter(|&i| states[i].active).collect();
    if active.len() < states.len() / 8 {
        return None;
    }
    let first = active[0];
    let last = *active.last().expect("non-empty");

    let max_speed = active.iter().map(|&i| states[i].speed).fold(0.0, f32::max);
    if max_speed < 0.3 {
        return Some(ActorAction::Stopped);
    }

    // Heading relationship, sampled mid-activity (headings are constant for
    // straight routes and this avoids turn-in/turn-out transients).
    let mid = active[active.len() / 2];
    let ego_h = traj.ego[mid].pose.heading;
    let rel_h = wrap_angle(states[mid].pose.heading - ego_h).abs();
    if rel_h > 2.3 {
        return Some(ActorAction::Oncoming);
    }
    if (0.9..=2.3).contains(&rel_h) {
        return Some(ActorAction::Crossing);
    }

    // Same direction: use longitudinal ordering and lateral offset relative
    // to the ego's own path.
    let ego_path = &world.ego.path;
    let lat_first = ego_path.lateral_offset(states[first].pose.position);
    let lat_last = ego_path.lateral_offset(states[last].pose.position);
    let lon_first = ego_path.project(states[first].pose.position) - traj.ego[first].s;
    let lon_last = ego_path.project(states[last].pose.position) - traj.ego[last].s;

    let in_lane = |lat: f32| lat.abs() < 1.6;
    if !in_lane(lat_first) && in_lane(lat_last) && lon_last > 0.0 {
        return Some(ActorAction::CutIn);
    }
    if !in_lane(lat_first) && !in_lane(lat_last) && lon_first < 0.0 && lon_last > 0.0 {
        return Some(ActorAction::Overtaking);
    }
    if lon_first > 0.0 && lon_last > 0.0 {
        return Some(ActorAction::Leading);
    }
    if lon_first < 0.0 && lon_last < 0.0 {
        return Some(ActorAction::Following);
    }
    // Ambiguous same-direction motion: fall back on the ordering at the end.
    Some(if lon_last >= 0.0 { ActorAction::Leading } else { ActorAction::Following })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario_gen::{ego_maneuvers_for, SamplerConfig, ScenarioSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsdx_sdl::RoadKind;

    #[test]
    fn ego_maneuver_roundtrips_through_simulation() {
        // For every road kind and every compatible maneuver, the labeler
        // must recover the generator's intent from kinematics alone.
        let sampler = ScenarioSampler::new(SamplerConfig {
            duration: 10.0,
            max_events: 0,
            ..SamplerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(100);
        for &road in RoadKind::ALL {
            for &ego in ego_maneuvers_for(road) {
                for _ in 0..3 {
                    let g = sampler.sample_with(&mut rng, road, ego);
                    let traj = g.world.simulate(0.05);
                    let inferred = infer_ego_maneuver(&traj, road);
                    assert_eq!(
                        inferred, ego,
                        "labeler disagrees with generator on {road}: expected {ego}, got {inferred}"
                    );
                }
            }
        }
    }

    #[test]
    fn actor_actions_roundtrip_through_simulation() {
        let sampler = ScenarioSampler::new(SamplerConfig {
            duration: 8.0,
            max_events: 2,
            ..SamplerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(101);
        let mut checked = 0;
        for _ in 0..120 {
            let g = sampler.sample(&mut rng);
            let traj = g.world.simulate(0.05);
            for (i, clause) in g.truth.actors.iter().enumerate() {
                if let Some(inferred) = infer_actor_action(&g.world, &traj, i) {
                    assert_eq!(
                        inferred, clause.action,
                        "actor action mismatch in `{}` (actor {i}, kind {})",
                        g.truth, clause.kind
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 40, "too few actors were checkable: {checked}");
    }

    #[test]
    fn relative_position_quadrants() {
        use crate::geometry::{Pose, Vec2};
        let ego = EgoState {
            pose: Pose::new(Vec2::ZERO, std::f32::consts::FRAC_PI_2),
            speed: 0.0,
            s: 0.0,
        };
        let mk = |x: f32, y: f32| ActorState {
            pose: Pose::new(Vec2::new(x, y), 0.0),
            speed: 0.0,
            s: 0.0,
            active: true,
        };
        assert_eq!(relative_position(&ego, &mk(0.0, 10.0)), Position::Ahead);
        assert_eq!(relative_position(&ego, &mk(0.0, -10.0)), Position::Behind);
        assert_eq!(relative_position(&ego, &mk(-10.0, 0.0)), Position::Left);
        assert_eq!(relative_position(&ego, &mk(10.0, 0.0)), Position::Right);
    }
}
