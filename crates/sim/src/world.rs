//! The simulated world: ego vehicle + scripted actors on a road layout.

use crate::actors::{Actor, ActorState};
use crate::behavior::SpeedProfile;
use crate::geometry::Pose;
use crate::path::Path;
use crate::road::RoadLayout;
use crate::traffic_light::TrafficLight;
use crate::vehicle::{speed_control, BicycleModel, BicycleState, PurePursuit};

/// Ego vehicle setup: the route it tracks and its longitudinal behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct EgoSetup {
    /// Reference path the ego controller tracks.
    pub path: Path,
    /// Longitudinal target-speed profile along the path.
    pub profile: SpeedProfile,
    /// Initial arc length on the path (m).
    pub start_s: f32,
    /// Initial speed (m/s).
    pub start_speed: f32,
}

/// Snapshot of the ego vehicle at one simulation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EgoState {
    /// World pose.
    pub pose: Pose,
    /// Speed (m/s).
    pub speed: f32,
    /// Arc length along the ego path (m).
    pub s: f32,
}

/// A complete scenario world ready to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    /// Road geometry.
    pub road: RoadLayout,
    /// Ego setup.
    pub ego: EgoSetup,
    /// Scripted non-ego actors.
    pub actors: Vec<Actor>,
    /// Signal head at the intersection, if any.
    pub light: Option<TrafficLight>,
    /// Clip duration (s).
    pub duration: f32,
}

/// Time-indexed result of [`World::simulate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Simulation timestep (s).
    pub dt: f32,
    /// Ego states, one per step (including t=0).
    pub ego: Vec<EgoState>,
    /// Actor states: `actors[i][step]`.
    pub actors: Vec<Vec<ActorState>>,
}

impl Trajectory {
    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.ego.len()
    }

    /// True when no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.ego.is_empty()
    }

    /// Time of step `i` in seconds.
    pub fn time_at(&self, i: usize) -> f32 {
        i as f32 * self.dt
    }

    /// Returns `count` step indices evenly spread over the trajectory
    /// (first and last included), for frame sampling.
    pub fn frame_indices(&self, count: usize) -> Vec<usize> {
        assert!(count >= 1, "at least one frame");
        let n = self.len();
        if count == 1 {
            return vec![n / 2];
        }
        (0..count).map(|i| (i * (n - 1)) / (count - 1)).collect()
    }
}

impl World {
    /// Simulates the world at timestep `dt`, tracking the ego path with a
    /// pure-pursuit bicycle controller and rolling out the scripted actors.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `duration` is non-positive.
    pub fn simulate(&self, dt: f32) -> Trajectory {
        assert!(dt > 0.0 && self.duration > 0.0, "dt and duration must be positive");
        let steps = (self.duration / dt).round() as usize;
        let model = BicycleModel::default();
        let pp = PurePursuit::default();

        let start_pose = self.ego.path.pose_at(self.ego.start_s);
        let mut state = BicycleState { pose: start_pose, speed: self.ego.start_speed };
        let mut s = self.ego.start_s;
        let mut ego_states = Vec::with_capacity(steps + 1);
        for _ in 0..=steps {
            ego_states.push(EgoState { pose: state.pose, speed: state.speed, s });
            // Project by local search around the previous s (cheap and
            // robust against the path folding back near intersections).
            let steer = pp.steer(&model, &state, &self.ego.path, s);
            let target = self.ego.profile.target_speed(s);
            let accel = speed_control(&model, state.speed, target);
            state = model.step(state, accel, steer, dt);
            s += state.speed * dt;
        }

        let actor_states = self.actors.iter().map(|a| a.rollout(self.duration, dt)).collect();
        Trajectory { dt, ego: ego_states, actors: actor_states }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec2;
    use tsdx_sdl::{ActorKind, RoadKind};

    fn cruise_world() -> World {
        let road = RoadLayout::build(RoadKind::Straight);
        let ego_path = road.ego_lane().clone();
        World {
            road,
            ego: EgoSetup {
                path: ego_path,
                profile: SpeedProfile::Constant(8.0),
                start_s: 20.0,
                start_speed: 8.0,
            },
            actors: vec![],
            light: None,
            duration: 8.0,
        }
    }

    #[test]
    fn cruise_covers_expected_distance() {
        let w = cruise_world();
        let traj = w.simulate(0.05);
        assert_eq!(traj.len(), 161);
        let first = traj.ego.first().unwrap();
        let last = traj.ego.last().unwrap();
        let dist = (last.s - first.s).abs();
        assert!((dist - 64.0).abs() < 2.0, "cruise distance {dist}");
        // Stays in lane.
        let cte = w.ego.path.lateral_offset(last.pose.position).abs();
        assert!(cte < 0.3, "cte {cte}");
    }

    #[test]
    fn stop_profile_stops_the_ego() {
        let mut w = cruise_world();
        w.ego.profile = SpeedProfile::StopAt { cruise: 8.0, stop_s: 60.0, decel: 2.5 };
        let traj = w.simulate(0.05);
        let last = traj.ego.last().unwrap();
        assert!(last.speed < 0.3, "ego should be stopped, speed {}", last.speed);
        assert!(last.s <= 62.0, "overshot stop line: {}", last.s);
    }

    #[test]
    fn actors_roll_out_alongside_ego() {
        let mut w = cruise_world();
        let lead_path = w.road.ego_lane().clone();
        w.actors.push(
            Actor::new(ActorKind::Vehicle, lead_path, SpeedProfile::Constant(7.0))
                .starting_at(45.0),
        );
        let traj = w.simulate(0.05);
        assert_eq!(traj.actors.len(), 1);
        assert_eq!(traj.actors[0].len(), traj.len());
        // Lead stays ahead of ego for the whole clip.
        for (e, a) in traj.ego.iter().zip(&traj.actors[0]) {
            assert!(a.s > e.s, "lead vehicle fell behind");
        }
    }

    #[test]
    fn frame_indices_cover_the_clip() {
        let w = cruise_world();
        let traj = w.simulate(0.1);
        let idx = traj.frame_indices(8);
        assert_eq!(idx.len(), 8);
        assert_eq!(idx[0], 0);
        assert_eq!(*idx.last().unwrap(), traj.len() - 1);
        assert!(idx.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn turning_ego_tracks_intersection_turn() {
        let road = RoadLayout::build(RoadKind::Intersection);
        let path = road.ego_turn_right().unwrap();
        let w = World {
            road,
            ego: EgoSetup {
                path: path.clone(),
                profile: SpeedProfile::Constant(6.0),
                start_s: 40.0,
                start_speed: 6.0,
            },
            actors: vec![],
            light: None,
            duration: 10.0,
        };
        let traj = w.simulate(0.05);
        let last = traj.ego.last().unwrap();
        // After the turn the ego is east of the intersection heading east.
        assert!(last.pose.position.x > 5.0, "{:?}", last.pose.position);
        assert!(last.pose.heading.abs() < 0.3, "heading {}", last.pose.heading);
        // Never strays far from the reference path.
        for e in &traj.ego {
            assert!(path.lateral_offset(e.pose.position).abs() < 1.0);
        }
        let _ = Vec2::ZERO;
    }
}
