//! Random scenario sampling: builds a [`World`] together with its
//! ground-truth SDL [`Scenario`].
//!
//! The sampler works constraint-first: it picks a road kind, then an ego
//! maneuver compatible with that road, then actor events compatible with
//! both — each event occupying a placement *slot* (ego lane ahead, left
//! lane, oncoming lane, crossing path, roadside) so that two sampled events
//! never collide with each other or with the ego plan.

use rand::Rng;

use tsdx_sdl::{ActorAction, ActorClause, ActorKind, EgoManeuver, Position, RoadKind, Scenario};

use crate::actors::Actor;
use crate::behavior::SpeedProfile;
use crate::geometry::Vec2;
use crate::path::Path;
use crate::road::{RoadLayout, APPROACH_LEN, HALF_LANE, LANE_WIDTH};
use crate::world::{EgoSetup, World};

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Clip duration in seconds.
    pub duration: f32,
    /// Maximum number of actor events per scenario (0..=2 supported).
    pub max_events: usize,
    /// Attach signal heads at intersections (red while the ego stops,
    /// green otherwise). Off by default so the standard evaluation datasets
    /// stay byte-identical; enable for the richer-scene variant.
    pub signal_heads: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig { duration: 8.0, max_events: 2, signal_heads: false }
    }
}

/// A sampled world plus its ground-truth description.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedScenario {
    /// The simulatable world.
    pub world: World,
    /// Ground-truth SDL description of the world.
    pub truth: Scenario,
}

/// Placement slot an event occupies (used to avoid conflicts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    EgoLaneAhead,
    LeftLane,
    OncomingLane,
    CrossPath,
    Roadside,
}

/// Samples random, physically consistent scenarios.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use tsdx_sim::{SamplerConfig, ScenarioSampler};
///
/// let sampler = ScenarioSampler::new(SamplerConfig::default());
/// let mut rng = StdRng::seed_from_u64(7);
/// let gen = sampler.sample(&mut rng);
/// assert!(gen.truth.validate().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScenarioSampler {
    cfg: SamplerConfig,
}

impl ScenarioSampler {
    /// Creates a sampler with the given configuration.
    pub fn new(cfg: SamplerConfig) -> Self {
        ScenarioSampler { cfg }
    }

    /// Configuration in use.
    pub fn config(&self) -> SamplerConfig {
        self.cfg
    }

    /// Samples one scenario.
    pub fn sample(&self, rng: &mut impl Rng) -> GeneratedScenario {
        let road_kind = RoadKind::ALL[rng.random_range(0..RoadKind::COUNT)];
        self.sample_on_road(rng, road_kind)
    }

    /// Samples one scenario on a fixed road kind.
    pub fn sample_on_road(&self, rng: &mut impl Rng, road_kind: RoadKind) -> GeneratedScenario {
        let road = RoadLayout::build(road_kind);
        let ego_choices = ego_maneuvers_for(road_kind);
        let ego = ego_choices[rng.random_range(0..ego_choices.len())];
        self.build(rng, road, ego)
    }

    /// Samples one scenario with a fixed road kind and ego maneuver.
    ///
    /// # Panics
    ///
    /// Panics if `ego` is incompatible with `road_kind` (e.g. a turn on a
    /// straight road).
    pub fn sample_with(
        &self,
        rng: &mut impl Rng,
        road_kind: RoadKind,
        ego: EgoManeuver,
    ) -> GeneratedScenario {
        assert!(
            ego_maneuvers_for(road_kind).contains(&ego),
            "ego maneuver {ego} is not available on road {road_kind}"
        );
        self.build(rng, RoadLayout::build(road_kind), ego)
    }

    fn build(&self, rng: &mut impl Rng, road: RoadLayout, ego: EgoManeuver) -> GeneratedScenario {
        let plan = EgoPlan::build(rng, &road, ego, self.cfg.duration);

        // Sample actor events.
        let n_events = {
            let roll: f32 = rng.random_range(0.0..1.0);
            let max = self.cfg.max_events;
            if max == 0 || roll < 0.20 {
                0
            } else if max == 1 || roll < 0.75 {
                1
            } else {
                2
            }
        };
        let mut used_slots: Vec<Slot> = plan.occupied_slots.clone();
        let mut actors = Vec::new();
        let mut clauses = Vec::new();
        for _ in 0..n_events {
            let candidates = compatible_events(road.kind(), ego, &used_slots);
            if candidates.is_empty() {
                break;
            }
            let (kind, action, slot) = candidates[rng.random_range(0..candidates.len())];
            if let Some((actor, clause)) = place_event(rng, &road, &plan, kind, action) {
                used_slots.push(slot);
                actors.push(actor);
                clauses.push(clause);
            }
        }

        let mut truth = Scenario::new(ego, road.kind());
        truth.actors = clauses;
        debug_assert!(truth.validate().is_ok(), "generator produced invalid SDL: {truth}");

        // At intersections a signal head explains the ego behavior: red
        // while stopping, green when passing through. Placed at the
        // near-right corner where the camera sees it against the sky.
        let light = (self.cfg.signal_heads && road.kind() == RoadKind::Intersection).then(|| {
            let pos = Vec2::new(6.5, -9.5);
            match plan.stop_s {
                Some(_) => crate::traffic_light::TrafficLight::new(pos, self.cfg.duration + 1.0),
                None => crate::traffic_light::TrafficLight::green(pos),
            }
        });

        let world = World { road, ego: plan.setup, actors, light, duration: self.cfg.duration };
        GeneratedScenario { world, truth }
    }
}

/// Ego maneuvers realizable on each road kind.
pub fn ego_maneuvers_for(road: RoadKind) -> &'static [EgoManeuver] {
    match road {
        RoadKind::Straight => &[
            EgoManeuver::Cruise,
            EgoManeuver::DecelerateToStop,
            EgoManeuver::Accelerate,
            EgoManeuver::LaneChangeLeft,
            EgoManeuver::LaneChangeRight,
        ],
        RoadKind::CurveLeft | RoadKind::CurveRight => {
            &[EgoManeuver::Cruise, EgoManeuver::DecelerateToStop, EgoManeuver::Accelerate]
        }
        RoadKind::Intersection => &[
            EgoManeuver::Cruise,
            EgoManeuver::DecelerateToStop,
            EgoManeuver::TurnLeft,
            EgoManeuver::TurnRight,
            EgoManeuver::Accelerate,
        ],
    }
}

/// Concrete ego plan derived from a maneuver.
#[derive(Debug, Clone)]
struct EgoPlan {
    setup: EgoSetup,
    /// Cruise-equivalent speed used to time the actor events.
    nominal_speed: f32,
    /// Slots the ego plan itself occupies.
    occupied_slots: Vec<Slot>,
    /// Arc length of the ego stop line, if the plan stops.
    stop_s: Option<f32>,
}

impl EgoPlan {
    fn build(rng: &mut impl Rng, road: &RoadLayout, ego: EgoManeuver, _duration: f32) -> EgoPlan {
        let v: f32 = rng.random_range(7.0..9.0);
        match ego {
            EgoManeuver::Cruise => EgoPlan {
                setup: EgoSetup {
                    path: road.ego_lane().clone(),
                    profile: SpeedProfile::Constant(v),
                    start_s: rng.random_range(15.0..25.0),
                    start_speed: v,
                },
                nominal_speed: v,
                occupied_slots: vec![],
                stop_s: None,
            },
            EgoManeuver::DecelerateToStop => {
                let start_s = rng.random_range(15.0..22.0);
                // Stop 28-40 m ahead so the vehicle is fully at rest well
                // before the clip ends (the stop must be *observable*).
                let stop_s = start_s + rng.random_range(28.0..40.0);
                EgoPlan {
                    setup: EgoSetup {
                        path: road.ego_lane().clone(),
                        profile: SpeedProfile::StopAt { cruise: v, stop_s, decel: 2.5 },
                        start_s,
                        start_speed: v,
                    },
                    nominal_speed: v,
                    occupied_slots: vec![],
                    stop_s: Some(stop_s),
                }
            }
            EgoManeuver::Accelerate => {
                let v0 = rng.random_range(2.0..3.5);
                let start_s = rng.random_range(15.0..25.0);
                EgoPlan {
                    setup: EgoSetup {
                        path: road.ego_lane().clone(),
                        profile: SpeedProfile::Accelerate {
                            from: v0,
                            to: v,
                            start_s: start_s + rng.random_range(5.0..12.0),
                            accel: 2.0,
                        },
                        start_s,
                        start_speed: v0,
                    },
                    nominal_speed: (v0 + v) / 2.0,
                    occupied_slots: vec![],
                    stop_s: None,
                }
            }
            EgoManeuver::LaneChangeLeft | EgoManeuver::LaneChangeRight => {
                let left = ego == EgoManeuver::LaneChangeLeft;
                // Ego default lane x = 5.25 (right), left lane x = 1.75.
                let (x0, lateral) = if left {
                    (LANE_WIDTH + HALF_LANE, LANE_WIDTH)
                } else {
                    (HALF_LANE, -LANE_WIDTH)
                };
                let north = std::f32::consts::FRAC_PI_2;
                let start_s = rng.random_range(15.0..22.0);
                let change_at = start_s + rng.random_range(15.0..25.0);
                let pre = Path::line(Vec2::new(x0, -APPROACH_LEN), north, change_at + 5.0);
                let change_start = pre.end();
                let change = Path::lane_change(change_start, north, 28.0, lateral);
                let post = Path::line(change.end(), north, 80.0);
                let path = pre.then(&change).then(&post);
                EgoPlan {
                    setup: EgoSetup {
                        path,
                        profile: SpeedProfile::Constant(v),
                        start_s,
                        start_speed: v,
                    },
                    nominal_speed: v,
                    // A lane change sweeps both same-direction lanes, so it
                    // conflicts with every ahead/left placement.
                    occupied_slots: vec![Slot::LeftLane, Slot::EgoLaneAhead],
                    stop_s: None,
                }
            }
            EgoManeuver::TurnLeft | EgoManeuver::TurnRight => {
                let path = if ego == EgoManeuver::TurnLeft {
                    road.ego_turn_left().expect("turn requires an intersection")
                } else {
                    road.ego_turn_right().expect("turn requires an intersection")
                };
                let vt = rng.random_range(5.5..6.5);
                EgoPlan {
                    setup: EgoSetup {
                        path,
                        profile: SpeedProfile::Constant(vt),
                        start_s: rng.random_range(28.0..36.0),
                        start_speed: vt,
                    },
                    nominal_speed: vt,
                    occupied_slots: vec![Slot::CrossPath],
                    stop_s: None,
                }
            }
        }
    }
}

/// Events available on `road` under ego maneuver `ego`, excluding occupied
/// slots. Returns `(kind, action, slot)` triples.
fn compatible_events(
    road: RoadKind,
    ego: EgoManeuver,
    used: &[Slot],
) -> Vec<(ActorKind, ActorAction, Slot)> {
    use ActorAction as A;
    use ActorKind as K;
    let straight = road == RoadKind::Straight;
    let intersection = road == RoadKind::Intersection;
    let ego_stops = ego == EgoManeuver::DecelerateToStop;
    let ego_turns = matches!(ego, EgoManeuver::TurnLeft | EgoManeuver::TurnRight);

    let mut out = Vec::new();
    // Entries are repeated `weight` times so that rarer, road-gated events
    // (cut-ins, crossings, overtakes) keep reasonable support in the label
    // distribution despite being available less often.
    let mut push = |k: K, a: A, s: Slot, weight: usize| {
        if !used.contains(&s) {
            for _ in 0..weight {
                out.push((k, a, s));
            }
        }
    };

    if !ego_turns {
        push(K::Vehicle, A::Leading, Slot::EgoLaneAhead, 2);
    }
    // `following` is deliberately NOT sampled: the ego camera faces forward,
    // so a vehicle behind the ego is never visible and the class would be
    // unlearnable from pixels. The SDL taxonomy keeps the class; the dataset
    // gives it zero support (documented in DESIGN.md).
    push(K::Vehicle, A::Oncoming, Slot::OncomingLane, 1);
    push(K::Cyclist, A::Oncoming, Slot::OncomingLane, 1);
    push(K::Pedestrian, A::Stopped, Slot::Roadside, 1);
    if straight {
        push(K::Vehicle, A::CutIn, Slot::LeftLane, 3);
        push(K::Vehicle, A::Overtaking, Slot::LeftLane, 3);
        // A cyclist stays "leading" only if the ego never overtakes it, so
        // require an ego maneuver whose average speed is cyclist-like.
        if matches!(ego, EgoManeuver::DecelerateToStop | EgoManeuver::Accelerate) {
            push(K::Cyclist, A::Leading, Slot::Roadside, 2);
        }
    }
    if ego_stops {
        push(K::Vehicle, A::Stopped, Slot::EgoLaneAhead, 2);
        push(K::Pedestrian, A::Crossing, Slot::CrossPath, 3);
    }
    if intersection && !ego_turns {
        // Crossing traffic is the signature intersection event; pedestrians
        // only cross when the ego stops (clearance guaranteed above).
        push(K::Vehicle, A::Crossing, Slot::CrossPath, 3);
        push(K::Cyclist, A::Crossing, Slot::CrossPath, 2);
    }
    out
}

/// Builds the actor and SDL clause realizing `(kind, action)`.
///
/// Returns `None` when the event cannot be realized with the sampled ego
/// plan (callers simply skip the event).
fn place_event(
    rng: &mut impl Rng,
    road: &RoadLayout,
    plan: &EgoPlan,
    kind: ActorKind,
    action: ActorAction,
) -> Option<(Actor, ActorClause)> {
    use ActorAction as A;
    use ActorKind as K;
    let north = std::f32::consts::FRAC_PI_2;
    let v_ego = plan.nominal_speed;
    let ego_start = plan.setup.start_s;

    let result = match (kind, action) {
        (K::Vehicle, A::Leading) => {
            let gap = rng.random_range(20.0..30.0);
            let v = v_ego * rng.random_range(0.85..0.95);
            let actor = Actor::new(kind, plan.setup.path.clone(), SpeedProfile::Constant(v))
                .starting_at(ego_start + gap);
            (actor, ActorClause::at(kind, action, Position::Ahead))
        }
        (K::Vehicle, A::Following) => {
            let gap = rng.random_range(18.0..28.0);
            let v = v_ego * rng.random_range(0.85..0.95);
            // If the ego stops, the follower must pull up behind it.
            let profile = match plan.stop_s {
                Some(stop_s) => SpeedProfile::StopAt {
                    cruise: v,
                    stop_s: stop_s - rng.random_range(8.0..11.0),
                    decel: 2.5,
                },
                None => SpeedProfile::Constant(v),
            };
            let actor = Actor::new(kind, plan.setup.path.clone(), profile)
                .starting_at((ego_start - gap).max(0.0));
            (actor, ActorClause::at(kind, action, Position::Behind))
        }
        (K::Vehicle, A::Oncoming) | (K::Cyclist, A::Oncoming) => {
            let lane = road.oncoming_lane();
            let v = if kind == K::Vehicle {
                rng.random_range(7.0..9.0)
            } else {
                rng.random_range(4.0..5.5)
            };
            // Meet the ego mid-clip: both close the gap together.
            let t_meet = rng.random_range(3.0..5.0);
            let ego_travel = v_ego * t_meet;
            // Ego world position at the meet, measured on its own path.
            let ego_meet = plan.setup.path.pose_at(ego_start + ego_travel).position;
            // Start the actor so it reaches the ego's y at t_meet.
            let meet_s = lane.project(ego_meet);
            let s0 = (meet_s - v * t_meet).max(0.0);
            let actor = Actor::new(kind, lane.clone(), SpeedProfile::Constant(v)).starting_at(s0);
            (actor, ActorClause::at(kind, action, Position::Ahead))
        }
        (K::Vehicle, A::CutIn) => {
            // Start in the left lane slightly ahead, merge into the ego lane.
            let gap = rng.random_range(10.0..16.0);
            let v = v_ego * rng.random_range(1.0..1.1);
            let x_left = HALF_LANE;
            let start_y = -APPROACH_LEN;
            let merge_after = ego_start + gap + rng.random_range(8.0..15.0);
            let pre = Path::line(Vec2::new(x_left, start_y), north, merge_after);
            let change = Path::lane_change(pre.end(), north, 25.0, -LANE_WIDTH);
            let post = Path::line(change.end(), north, 90.0);
            let path = pre.then(&change).then(&post);
            let actor =
                Actor::new(kind, path, SpeedProfile::Constant(v)).starting_at(ego_start + gap);
            (actor, ActorClause::at(kind, action, Position::Ahead))
        }
        (K::Vehicle, A::Overtaking) => {
            let lane = road.ego_left_lane()?.clone();
            let v = v_ego * rng.random_range(1.35..1.6);
            let behind = rng.random_range(12.0..18.0);
            let actor = Actor::new(kind, lane, SpeedProfile::Constant(v))
                .starting_at((ego_start - behind).max(0.0));
            (actor, ActorClause::at(kind, action, Position::Left))
        }
        (K::Vehicle, A::Stopped) => {
            // Stationary in the ego lane just past the ego stop line.
            let stop_s = plan.stop_s?;
            let actor = Actor::new(kind, plan.setup.path.clone(), SpeedProfile::Constant(0.0))
                .starting_at(stop_s + rng.random_range(8.0..12.0));
            (actor, ActorClause::at(kind, action, Position::Ahead))
        }
        (K::Pedestrian, A::Crossing) => {
            // Pedestrian crosswalk just beyond the ego stop line.
            let stop_s = plan.stop_s?;
            let cross_pose = plan.setup.path.pose_at(stop_s + 6.0);
            let y_c = cross_pose.position.y;
            let from_right = rng.random_range(0.0..1.0) < 0.5;
            let (x0, heading) =
                if from_right { (10.0, std::f32::consts::PI) } else { (-10.0, 0.0) };
            let path = Path::line(Vec2::new(x0, y_c), heading, 20.0);
            let v = rng.random_range(1.2..1.8);
            let actor = Actor::new(kind, path, SpeedProfile::Constant(v))
                .delayed(rng.random_range(0.0..1.0));
            let pos = if from_right { Position::Right } else { Position::Left };
            (actor, ActorClause::at(kind, action, pos))
        }
        (K::Vehicle, A::Crossing) | (K::Cyclist, A::Crossing) => {
            // Cross street traffic at the intersection, timed to clear the
            // box before the ego arrives.
            let from_west = rng.random_range(0.0..1.0) < 0.5;
            let lane = if from_west { road.cross_east()? } else { road.cross_west()? };
            let v = if kind == K::Vehicle {
                rng.random_range(7.0..9.0)
            } else {
                rng.random_range(3.5..4.5)
            };
            // Ego reaches the intersection box (s where y ~ -8) at:
            let ego_box_s = plan.setup.path.project(Vec2::new(HALF_LANE, -8.0));
            let t_ego_arrive = ((ego_box_s - ego_start) / v_ego).max(0.0);
            // The crosser should be through the box by then (or the ego is
            // stopping anyway).
            let t_cross = if plan.stop_s.is_some() {
                rng.random_range(2.0..5.0)
            } else {
                rng.random_range(1.0..(t_ego_arrive - 1.5).max(1.2))
            };
            // Arc length where the lane crosses the ego path (x = 1.75).
            let cross_s =
                lane.project(Vec2::new(HALF_LANE, if from_west { -HALF_LANE } else { HALF_LANE }));
            let s0 = (cross_s - v * t_cross).max(0.0);
            let actor = Actor::new(kind, lane.clone(), SpeedProfile::Constant(v)).starting_at(s0);
            let pos = if from_west { Position::Left } else { Position::Right };
            (actor, ActorClause::at(kind, action, pos))
        }
        (K::Pedestrian, A::Stopped) => {
            // Standing at the roadside, ahead right of the ego.
            let ahead = rng.random_range(25.0..45.0);
            let base = plan.setup.path.pose_at(ego_start + ahead);
            let side = base.local_to_world(Vec2::new(0.0, -(LANE_WIDTH + 2.0)));
            // A degenerate two-point path; the actor never moves.
            let path = Path::line(side, north, 1.0);
            let actor = Actor::new(kind, path, SpeedProfile::Constant(0.0));
            (actor, ActorClause::at(kind, action, Position::Right))
        }
        (K::Cyclist, A::Leading) => {
            // Riding at the right lane edge ahead of the ego.
            let edge_x = LANE_WIDTH + HALF_LANE + 1.2;
            let path = Path::line(Vec2::new(edge_x, -APPROACH_LEN), north, 190.0);
            let v = rng.random_range(4.0..5.0);
            let ahead = rng.random_range(15.0..25.0);
            let actor =
                Actor::new(kind, path, SpeedProfile::Constant(v)).starting_at(ego_start + ahead);
            (actor, ActorClause::at(kind, action, Position::Ahead))
        }
        _ => return None,
    };
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_scenarios_are_valid_sdl() {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let g = sampler.sample(&mut rng);
            g.truth.validate().expect("generator must produce valid SDL");
            assert!(g.world.duration > 0.0);
        }
    }

    #[test]
    fn road_kind_matches_truth() {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let g = sampler.sample(&mut rng);
            assert_eq!(g.world.road.kind(), g.truth.road);
        }
    }

    #[test]
    fn actor_count_matches_clauses() {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let g = sampler.sample(&mut rng);
            assert_eq!(g.world.actors.len(), g.truth.actors.len());
            assert!(g.truth.actors.len() <= 2);
        }
    }

    #[test]
    fn turns_only_happen_at_intersections() {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let g = sampler.sample(&mut rng);
            if matches!(g.truth.ego, EgoManeuver::TurnLeft | EgoManeuver::TurnRight) {
                assert_eq!(g.truth.road, RoadKind::Intersection);
            }
            if matches!(g.truth.ego, EgoManeuver::LaneChangeLeft | EgoManeuver::LaneChangeRight) {
                assert_eq!(g.truth.road, RoadKind::Straight);
            }
        }
    }

    #[test]
    fn fixed_spec_sampling_respects_request() {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let g = sampler.sample_with(&mut rng, RoadKind::Intersection, EgoManeuver::TurnLeft);
        assert_eq!(g.truth.ego, EgoManeuver::TurnLeft);
        assert_eq!(g.truth.road, RoadKind::Intersection);
    }

    #[test]
    #[should_panic]
    fn fixed_spec_rejects_impossible_combo() {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        sampler.sample_with(&mut rng, RoadKind::Straight, EgoManeuver::TurnLeft);
    }

    #[test]
    fn deterministic_under_seed() {
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let a = sampler.sample(&mut StdRng::seed_from_u64(9));
        let b = sampler.sample(&mut StdRng::seed_from_u64(9));
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.world.actors.len(), b.world.actors.len());
    }

    #[test]
    fn no_actor_overlaps_ego_during_simulation() {
        // Core physical-consistency property: sampled scenarios are
        // collision-free for the ego vehicle.
        let sampler = ScenarioSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..60 {
            let g = sampler.sample(&mut rng);
            let traj = g.world.simulate(0.1);
            for (step, ego) in traj.ego.iter().enumerate() {
                for (ai, states) in traj.actors.iter().enumerate() {
                    let a = states[step];
                    if !a.active {
                        continue;
                    }
                    let d = ego.pose.position.distance(a.pose.position);
                    assert!(
                        d > 1.2,
                        "collision in sample {i}: actor {ai} ({:?}) at step {step}, d={d:.2}, truth={}",
                        g.world.actors[ai].kind,
                        g.truth
                    );
                }
            }
        }
    }
}
