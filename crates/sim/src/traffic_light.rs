//! Traffic lights: the visible *cause* of stop-and-go behavior at
//! intersections.
//!
//! A light is a pole at an intersection corner with a lamp whose vertical
//! position encodes its phase (top = red, bottom = green), mirroring how
//! real signal heads are read when color is unavailable — the renderer
//! works in grayscale, so the spatial code is what the models can learn.

use crate::geometry::Vec2;

/// Signal phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LightPhase {
    /// Stop.
    Red,
    /// Go.
    Green,
}

/// A signal head at a fixed world position with a one-switch schedule:
/// red until `red_until` seconds, green afterwards.
///
/// `red_until = 0` is a permanently green light; `red_until >= clip
/// duration` is permanently red.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficLight {
    /// Pole base position (world, m).
    pub position: Vec2,
    /// Time of the red→green switch (s).
    pub red_until: f32,
    /// Pole height to the lamp housing (m).
    pub pole_height: f32,
}

impl TrafficLight {
    /// A light at `position` that is red until `red_until` seconds.
    pub fn new(position: Vec2, red_until: f32) -> Self {
        TrafficLight { position, red_until, pole_height: 3.2 }
    }

    /// A permanently green light.
    pub fn green(position: Vec2) -> Self {
        TrafficLight::new(position, 0.0)
    }

    /// Phase at simulation time `t` (s).
    pub fn phase_at(&self, t: f32) -> LightPhase {
        if t < self.red_until {
            LightPhase::Red
        } else {
            LightPhase::Green
        }
    }

    /// Lamp center height above ground at time `t`: the red lamp sits at
    /// the top of the head, the green lamp lower.
    pub fn lamp_height_at(&self, t: f32) -> f32 {
        match self.phase_at(t) {
            LightPhase::Red => self.pole_height,
            LightPhase::Green => self.pole_height - 0.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_schedule() {
        let l = TrafficLight::new(Vec2::new(5.0, -9.0), 4.0);
        assert_eq!(l.phase_at(0.0), LightPhase::Red);
        assert_eq!(l.phase_at(3.99), LightPhase::Red);
        assert_eq!(l.phase_at(4.0), LightPhase::Green);
        assert_eq!(l.phase_at(100.0), LightPhase::Green);
    }

    #[test]
    fn green_constructor_is_always_green() {
        let l = TrafficLight::green(Vec2::ZERO);
        assert_eq!(l.phase_at(0.0), LightPhase::Green);
    }

    #[test]
    fn lamp_moves_down_when_green() {
        let l = TrafficLight::new(Vec2::ZERO, 2.0);
        assert!(l.lamp_height_at(0.0) > l.lamp_height_at(3.0));
        assert_eq!(l.lamp_height_at(0.0), l.pole_height);
    }
}
