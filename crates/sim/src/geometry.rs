//! 2-D vector and pose primitives for the traffic world.

use std::ops::{Add, Mul, Neg, Sub};

/// A 2-D vector / point in world coordinates (meters).
///
/// Convention: `x` points east, `y` points north; headings are measured
/// counter-clockwise from the +x axis in radians.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// East coordinate (m).
    pub x: f32,
    /// North coordinate (m).
    pub y: f32,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector pointing along `heading` radians.
    pub fn from_heading(heading: f32) -> Self {
        Vec2 { x: heading.cos(), y: heading.sin() }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.x.hypot(self.y)
    }

    /// Squared norm (cheaper for comparisons).
    pub fn norm_sq(&self) -> f32 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(&self, other: Vec2) -> f32 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross).
    pub fn cross(&self, other: Vec2) -> f32 {
        self.x * other.y - self.y * other.x
    }

    /// Distance to `other`.
    pub fn distance(&self, other: Vec2) -> f32 {
        (*self - other).norm()
    }

    /// This vector rotated by `angle` radians counter-clockwise.
    pub fn rotated(&self, angle: f32) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2 { x: c * self.x - s * self.y, y: s * self.x + c * self.y }
    }

    /// Heading of this vector in radians (`atan2(y, x)`).
    pub fn heading(&self) -> f32 {
        self.y.atan2(self.x)
    }

    /// Unit vector in the same direction (zero vector stays zero).
    pub fn normalized(&self) -> Vec2 {
        let n = self.norm();
        if n > 0.0 {
            Vec2 { x: self.x / n, y: self.y / n }
        } else {
            Vec2::ZERO
        }
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(&self, other: Vec2, t: f32) -> Vec2 {
        *self + (other - *self) * t
    }

    /// Perpendicular vector (rotated +90°).
    pub fn perp(&self) -> Vec2 {
        Vec2 { x: -self.y, y: self.x }
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2 { x: self.x + o.x, y: self.y + o.y }
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2 { x: self.x - o.x, y: self.y - o.y }
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f32) -> Vec2 {
        Vec2 { x: self.x * s, y: self.y * s }
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2 { x: -self.x, y: -self.y }
    }
}

/// Position plus orientation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose {
    /// World position (m).
    pub position: Vec2,
    /// Heading in radians, counter-clockwise from +x.
    pub heading: f32,
}

impl Pose {
    /// Creates a pose.
    pub fn new(position: Vec2, heading: f32) -> Self {
        Pose { position, heading }
    }

    /// Transforms a world point into this pose's local frame
    /// (x forward, y left).
    pub fn world_to_local(&self, p: Vec2) -> Vec2 {
        (p - self.position).rotated(-self.heading)
    }

    /// Transforms a local point (x forward, y left) into world coordinates.
    pub fn local_to_world(&self, p: Vec2) -> Vec2 {
        p.rotated(self.heading) + self.position
    }

    /// Forward unit vector.
    pub fn forward(&self) -> Vec2 {
        Vec2::from_heading(self.heading)
    }
}

/// Wraps an angle to `(-pi, pi]`.
pub fn wrap_angle(a: f32) -> f32 {
    let mut a = a % std::f32::consts::TAU;
    if a > std::f32::consts::PI {
        a -= std::f32::consts::TAU;
    } else if a <= -std::f32::consts::PI {
        a += std::f32::consts::TAU;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    #[test]
    fn vector_algebra() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(a.cross(Vec2::new(1.0, 0.0)), -4.0);
        assert_eq!((a - a).norm(), 0.0);
        assert_eq!((-a).x, -3.0);
    }

    #[test]
    fn rotation_quarter_turn() {
        let a = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!((a.x).abs() < 1e-6 && (a.y - 1.0).abs() < 1e-6);
        assert!((Vec2::new(1.0, 0.0).perp().y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn heading_roundtrip() {
        for h in [-2.0f32, -0.5, 0.0, 1.0, 3.0] {
            let v = Vec2::from_heading(h);
            assert!((wrap_angle(v.heading() - h)).abs() < 1e-5);
        }
    }

    #[test]
    fn pose_frame_roundtrip() {
        let pose = Pose::new(Vec2::new(5.0, -2.0), 0.7);
        let p = Vec2::new(3.0, 9.0);
        let back = pose.local_to_world(pose.world_to_local(p));
        assert!(back.distance(p) < 1e-5);
    }

    #[test]
    fn local_frame_semantics() {
        // Ego at origin heading north: a point to the north is "forward"
        // (local +x), a point to the west is "left" (local +y).
        let pose = Pose::new(Vec2::ZERO, FRAC_PI_2);
        let ahead = pose.world_to_local(Vec2::new(0.0, 10.0));
        assert!(ahead.x > 9.9 && ahead.y.abs() < 1e-5);
        let left = pose.world_to_local(Vec2::new(-4.0, 0.0));
        assert!(left.y > 3.9 && left.x.abs() < 1e-5);
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-5);
        assert!((wrap_angle(-3.0 * PI).abs() - PI).abs() < 1e-5);
        assert_eq!(wrap_angle(0.0), 0.0);
        for a in [-10.0f32, -1.0, 0.5, 7.0, 100.0] {
            let w = wrap_angle(a);
            assert!(w > -PI - 1e-6 && w <= PI + 1e-6);
        }
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }
}
