//! Kinematic bicycle model and pure-pursuit path tracking for the ego
//! vehicle.

use crate::geometry::{wrap_angle, Pose, Vec2};
use crate::path::Path;

/// Dynamic state of a bicycle-model vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BicycleState {
    /// Pose of the rear axle.
    pub pose: Pose,
    /// Longitudinal speed (m/s, non-negative).
    pub speed: f32,
}

/// Kinematic bicycle model parameters and limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BicycleModel {
    /// Wheelbase (m).
    pub wheelbase: f32,
    /// Maximum steering angle magnitude (rad).
    pub max_steer: f32,
    /// Maximum acceleration (m/s²).
    pub max_accel: f32,
    /// Maximum braking deceleration (m/s², positive).
    pub max_decel: f32,
}

impl Default for BicycleModel {
    /// A mid-size passenger car.
    fn default() -> Self {
        BicycleModel { wheelbase: 2.8, max_steer: 0.55, max_accel: 3.0, max_decel: 6.0 }
    }
}

impl BicycleModel {
    /// Advances `state` by `dt` under `accel` (m/s²) and `steer` (rad),
    /// clamped to the model limits. Speed never goes negative.
    pub fn step(&self, state: BicycleState, accel: f32, steer: f32, dt: f32) -> BicycleState {
        let accel = accel.clamp(-self.max_decel, self.max_accel);
        let steer = steer.clamp(-self.max_steer, self.max_steer);
        let speed = (state.speed + accel * dt).max(0.0);
        let heading = wrap_angle(state.pose.heading + speed / self.wheelbase * steer.tan() * dt);
        let position = state.pose.position + Vec2::from_heading(heading) * (speed * dt);
        BicycleState { pose: Pose { position, heading }, speed }
    }
}

/// Pure-pursuit steering controller tracking a [`Path`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PurePursuit {
    /// Lookahead distance per unit speed (s).
    pub lookahead_gain: f32,
    /// Minimum lookahead distance (m).
    pub min_lookahead: f32,
}

impl Default for PurePursuit {
    fn default() -> Self {
        PurePursuit { lookahead_gain: 0.8, min_lookahead: 4.0 }
    }
}

impl PurePursuit {
    /// Steering command driving `state` toward the path point one lookahead
    /// distance ahead of arc length `s_now`.
    pub fn steer(
        &self,
        model: &BicycleModel,
        state: &BicycleState,
        path: &Path,
        s_now: f32,
    ) -> f32 {
        let lookahead = (self.lookahead_gain * state.speed).max(self.min_lookahead);
        let target = path.pose_at(s_now + lookahead).position;
        let local = state.pose.world_to_local(target);
        let d2 = local.norm_sq();
        if d2 < 1e-6 {
            return 0.0;
        }
        // Pure pursuit curvature: 2*y / L^2, steering from curvature.
        let curvature = 2.0 * local.y / d2;
        (model.wheelbase * curvature).atan().clamp(-model.max_steer, model.max_steer)
    }
}

/// Proportional speed controller toward a target speed.
pub fn speed_control(model: &BicycleModel, current: f32, target: f32) -> f32 {
    let k = 2.0;
    (k * (target - current)).clamp(-model.max_decel, model.max_accel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_2;

    #[test]
    fn straight_driving_preserves_heading() {
        let model = BicycleModel::default();
        let mut st = BicycleState { pose: Pose::new(Vec2::ZERO, FRAC_PI_2), speed: 10.0 };
        for _ in 0..100 {
            st = model.step(st, 0.0, 0.0, 0.05);
        }
        assert!((st.pose.heading - FRAC_PI_2).abs() < 1e-5);
        assert!((st.pose.position.y - 50.0).abs() < 0.1);
        assert!(st.pose.position.x.abs() < 1e-4);
    }

    #[test]
    fn braking_never_reverses() {
        let model = BicycleModel::default();
        let mut st = BicycleState { pose: Pose::new(Vec2::ZERO, 0.0), speed: 5.0 };
        for _ in 0..100 {
            st = model.step(st, -10.0, 0.0, 0.1);
        }
        assert_eq!(st.speed, 0.0);
    }

    #[test]
    fn steering_turns_the_expected_way() {
        let model = BicycleModel::default();
        let mut st = BicycleState { pose: Pose::new(Vec2::ZERO, FRAC_PI_2), speed: 8.0 };
        for _ in 0..40 {
            st = model.step(st, 0.0, 0.2, 0.05); // positive steer = left
        }
        assert!(st.pose.heading > FRAC_PI_2, "left steer must increase heading");
        assert!(st.pose.position.x < 0.0, "left turn from northbound drifts west");
    }

    #[test]
    fn pure_pursuit_tracks_a_straight_lane() {
        let model = BicycleModel::default();
        let pp = PurePursuit::default();
        let path = Path::line(Vec2::new(1.75, -40.0), FRAC_PI_2, 160.0);
        // Start offset half a meter from the lane center.
        let mut st =
            BicycleState { pose: Pose::new(Vec2::new(2.25, -40.0), FRAC_PI_2), speed: 8.0 };
        let dt = 0.05;
        for _ in 0..(10.0 / dt) as usize {
            let s = path.project(st.pose.position);
            let steer = pp.steer(&model, &st, &path, s);
            let accel = speed_control(&model, st.speed, 8.0);
            st = model.step(st, accel, steer, dt);
        }
        let cte = path.lateral_offset(st.pose.position).abs();
        assert!(cte < 0.2, "cross-track error too large: {cte}");
        assert!((st.speed - 8.0).abs() < 0.2);
    }

    #[test]
    fn pure_pursuit_follows_an_arc() {
        let model = BicycleModel::default();
        let pp = PurePursuit::default();
        let path = Path::arc(Vec2::ZERO, FRAC_PI_2, 30.0, 1.4);
        let mut st = BicycleState { pose: Pose::new(Vec2::ZERO, FRAC_PI_2), speed: 6.0 };
        let dt = 0.05;
        let mut max_cte: f32 = 0.0;
        for _ in 0..(7.0 / dt) as usize {
            let s = path.project(st.pose.position);
            let steer = pp.steer(&model, &st, &path, s);
            let accel = speed_control(&model, st.speed, 6.0);
            st = model.step(st, accel, steer, dt);
            max_cte = max_cte.max(path.lateral_offset(st.pose.position).abs());
        }
        assert!(max_cte < 0.6, "arc tracking error too large: {max_cte}");
    }
}
