//! # tsdx-sim
//!
//! A 2-D traffic micro-simulator that substitutes for real driving footage:
//! road layouts for every SDL road kind, a kinematic-bicycle ego vehicle
//! tracked by pure pursuit, scripted non-ego actors (vehicles, cyclists,
//! pedestrians), a constraint-aware random scenario sampler with exact SDL
//! ground truth, and a kinematic labeler that cross-validates the sampler.
//!
//! # Examples
//!
//! Sample a scenario, simulate it, and check the labeler agrees:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use tsdx_sim::{infer_ego_maneuver, SamplerConfig, ScenarioSampler};
//!
//! let sampler = ScenarioSampler::new(SamplerConfig::default());
//! let mut rng = StdRng::seed_from_u64(1);
//! let generated = sampler.sample(&mut rng);
//! let trajectory = generated.world.simulate(0.05);
//! let maneuver = infer_ego_maneuver(&trajectory, generated.truth.road);
//! assert_eq!(maneuver, generated.truth.ego);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod actors;
mod behavior;
pub mod geometry;
mod labeler;
mod path;
mod road;
mod scenario_gen;
mod traffic_light;
mod vehicle;
mod world;

pub use actors::{body_size, Actor, ActorState, BodySize};
pub use behavior::SpeedProfile;
pub use labeler::{infer_actor_action, infer_ego_maneuver, relative_position};
pub use path::Path;
pub use road::{Lane, RoadLayout, APPROACH_LEN, CURVE_RADIUS, EXIT_LEN, HALF_LANE, LANE_WIDTH};
pub use scenario_gen::{ego_maneuvers_for, GeneratedScenario, SamplerConfig, ScenarioSampler};
pub use traffic_light::{LightPhase, TrafficLight};
pub use vehicle::{speed_control, BicycleModel, BicycleState, PurePursuit};
pub use world::{EgoSetup, EgoState, Trajectory, World};
