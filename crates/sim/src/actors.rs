//! Non-ego traffic participants with scripted motion.

use tsdx_sdl::ActorKind;

use crate::behavior::SpeedProfile;
use crate::geometry::Pose;
use crate::path::Path;

/// Physical footprint of an actor (meters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodySize {
    /// Length along the heading.
    pub length: f32,
    /// Width across the heading.
    pub width: f32,
    /// Height (used by the renderer for apparent size).
    pub height: f32,
}

/// Canonical body size per actor kind.
pub fn body_size(kind: ActorKind) -> BodySize {
    match kind {
        ActorKind::Vehicle => BodySize { length: 4.5, width: 1.8, height: 1.5 },
        ActorKind::Cyclist => BodySize { length: 1.8, width: 0.6, height: 1.7 },
        ActorKind::Pedestrian => BodySize { length: 0.5, width: 0.5, height: 1.7 },
    }
}

/// A scripted actor: a body moving along a [`Path`] under a
/// [`SpeedProfile`], optionally delayed by `start_time`.
#[derive(Debug, Clone, PartialEq)]
pub struct Actor {
    /// What kind of actor this is.
    pub kind: ActorKind,
    /// Route followed by the actor.
    pub path: Path,
    /// Longitudinal behavior along the route.
    pub profile: SpeedProfile,
    /// Arc length at which the actor starts (m).
    pub start_s: f32,
    /// Simulation time before which the actor is absent (s).
    pub start_time: f32,
}

/// Snapshot of one actor at one simulation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActorState {
    /// World pose (heading = travel direction).
    pub pose: Pose,
    /// Speed along the path (m/s).
    pub speed: f32,
    /// Arc length along the actor's path (m).
    pub s: f32,
    /// False before `start_time` or after the path is exhausted.
    pub active: bool,
}

impl Actor {
    /// Creates an actor starting immediately at the beginning of `path`.
    pub fn new(kind: ActorKind, path: Path, profile: SpeedProfile) -> Self {
        Actor { kind, path, profile, start_s: 0.0, start_time: 0.0 }
    }

    /// Builder: initial arc length along the path.
    #[must_use]
    pub fn starting_at(mut self, s: f32) -> Self {
        self.start_s = s;
        self
    }

    /// Builder: spawn delay in seconds.
    #[must_use]
    pub fn delayed(mut self, t: f32) -> Self {
        self.start_time = t;
        self
    }

    /// Body footprint for this actor's kind.
    pub fn size(&self) -> BodySize {
        body_size(self.kind)
    }

    /// Simulates the actor for `duration` seconds at timestep `dt`,
    /// returning one state per step (including t=0).
    pub fn rollout(&self, duration: f32, dt: f32) -> Vec<ActorState> {
        let steps = (duration / dt).round() as usize;
        let mut out = Vec::with_capacity(steps + 1);
        let mut s = self.start_s;
        for step in 0..=steps {
            let t = step as f32 * dt;
            let spawned = t >= self.start_time;
            let on_path = s < self.path.length() - 1e-3;
            let v = if spawned { self.profile.target_speed(s) } else { 0.0 };
            out.push(ActorState {
                pose: self.path.pose_at(s),
                speed: if spawned { v } else { 0.0 },
                s,
                active: spawned && on_path,
            });
            if spawned {
                s = (s + v * dt).min(self.path.length());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec2;
    use std::f32::consts::FRAC_PI_2;

    fn line_actor(kind: ActorKind, speed: f32) -> Actor {
        Actor::new(kind, Path::line(Vec2::ZERO, FRAC_PI_2, 100.0), SpeedProfile::Constant(speed))
    }

    #[test]
    fn body_sizes_are_ordered_sensibly() {
        assert!(body_size(ActorKind::Vehicle).length > body_size(ActorKind::Cyclist).length);
        assert!(body_size(ActorKind::Cyclist).length > body_size(ActorKind::Pedestrian).length);
    }

    #[test]
    fn rollout_advances_at_constant_speed() {
        let a = line_actor(ActorKind::Vehicle, 10.0);
        let states = a.rollout(5.0, 0.1);
        assert_eq!(states.len(), 51);
        let last = states.last().unwrap();
        assert!((last.s - 50.0).abs() < 0.5);
        assert!(last.active);
        assert!((last.pose.position.y - last.s).abs() < 0.5);
    }

    #[test]
    fn delayed_actor_waits_then_moves() {
        let a = line_actor(ActorKind::Pedestrian, 1.5).delayed(2.0);
        let states = a.rollout(4.0, 0.1);
        // Inactive during the delay, stationary at start.
        assert!(!states[10].active);
        assert_eq!(states[10].s, 0.0);
        // Active and moving afterwards.
        assert!(states[35].active);
        assert!(states[35].s > 0.5);
    }

    #[test]
    fn actor_deactivates_at_path_end() {
        let a = Actor::new(
            ActorKind::Cyclist,
            Path::line(Vec2::ZERO, 0.0, 10.0),
            SpeedProfile::Constant(5.0),
        );
        let states = a.rollout(5.0, 0.1);
        let last = states.last().unwrap();
        assert!(!last.active, "actor should deactivate after exhausting its path");
        assert!((last.s - 10.0).abs() < 1e-3);
    }

    #[test]
    fn starting_offset_shifts_initial_position() {
        let a = line_actor(ActorKind::Vehicle, 0.0).starting_at(30.0);
        let states = a.rollout(1.0, 0.5);
        assert!((states[0].pose.position.y - 30.0).abs() < 0.5);
    }
}
