//! Longitudinal behavior: speed profiles over arc length.

/// Target speed as a function of distance traveled along a path.
///
/// Profiles are *targets*; the integrator (ego controller or scripted actor)
/// approaches them under acceleration limits, so the realized speed is
/// smooth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedProfile {
    /// Hold a constant speed (m/s).
    Constant(f32),
    /// Cruise, then brake to a standstill at arc length `stop_s`, using a
    /// comfortable deceleration `decel` (m/s², positive).
    StopAt {
        /// Cruise speed before braking (m/s).
        cruise: f32,
        /// Arc length at which the vehicle must be stopped (m).
        stop_s: f32,
        /// Braking deceleration magnitude (m/s²).
        decel: f32,
    },
    /// Hold `from` until `start_s`, then accelerate at `accel` up to `to`.
    Accelerate {
        /// Initial speed (m/s).
        from: f32,
        /// Final speed (m/s).
        to: f32,
        /// Arc length where the acceleration begins (m).
        start_s: f32,
        /// Acceleration magnitude (m/s²).
        accel: f32,
    },
}

impl SpeedProfile {
    /// Target speed at arc length `s`.
    pub fn target_speed(&self, s: f32) -> f32 {
        match *self {
            SpeedProfile::Constant(v) => v,
            SpeedProfile::StopAt { cruise, stop_s, decel } => {
                if s >= stop_s {
                    0.0
                } else {
                    // v such that braking at `decel` reaches 0 exactly at stop_s.
                    let v_brake = (2.0 * decel * (stop_s - s)).sqrt();
                    cruise.min(v_brake)
                }
            }
            SpeedProfile::Accelerate { from, to, start_s, accel } => {
                if s <= start_s {
                    from
                } else {
                    let v = (from * from + 2.0 * accel * (s - start_s)).sqrt();
                    v.min(to)
                }
            }
        }
    }

    /// Nominal cruise speed of the profile (used for horizon sizing).
    pub fn nominal_speed(&self) -> f32 {
        match *self {
            SpeedProfile::Constant(v) => v,
            SpeedProfile::StopAt { cruise, .. } => cruise,
            SpeedProfile::Accelerate { from, to, .. } => from.max(to),
        }
    }

    /// Integrates the profile from `start_s` for `duration` seconds with
    /// timestep `dt`, returning `(s, speed)` samples (first sample at t=0).
    ///
    /// The speed tracks the target exactly (scripted motion); the ego
    /// vehicle instead tracks it through its dynamics.
    pub fn rollout(&self, start_s: f32, duration: f32, dt: f32) -> Vec<(f32, f32)> {
        assert!(dt > 0.0, "dt must be positive");
        let steps = (duration / dt).round() as usize;
        let mut out = Vec::with_capacity(steps + 1);
        let mut s = start_s;
        for _ in 0..=steps {
            let v = self.target_speed(s);
            out.push((s, v));
            s += v * dt;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let p = SpeedProfile::Constant(8.0);
        assert_eq!(p.target_speed(0.0), 8.0);
        assert_eq!(p.target_speed(1e6), 8.0);
        assert_eq!(p.nominal_speed(), 8.0);
    }

    #[test]
    fn stop_profile_reaches_zero_at_stop_line() {
        let p = SpeedProfile::StopAt { cruise: 10.0, stop_s: 50.0, decel: 2.5 };
        assert_eq!(p.target_speed(0.0), 10.0);
        assert_eq!(p.target_speed(50.0), 0.0);
        assert_eq!(p.target_speed(80.0), 0.0);
        // Just before the stop line the target is small but positive.
        let near = p.target_speed(49.5);
        assert!(near > 0.0 && near < 2.0, "{near}");
        // Monotone non-increasing toward the stop line.
        let mut last = f32::INFINITY;
        for i in 0..100 {
            let v = p.target_speed(i as f32 * 0.5);
            assert!(v <= last + 1e-5);
            last = v;
        }
    }

    #[test]
    fn accelerate_profile_ramps_and_caps() {
        let p = SpeedProfile::Accelerate { from: 2.0, to: 10.0, start_s: 20.0, accel: 2.0 };
        assert_eq!(p.target_speed(0.0), 2.0);
        assert_eq!(p.target_speed(20.0), 2.0);
        assert!(p.target_speed(25.0) > 2.0);
        assert_eq!(p.target_speed(1e5), 10.0);
    }

    #[test]
    fn rollout_advances_monotonically_and_stops() {
        let p = SpeedProfile::StopAt { cruise: 8.0, stop_s: 30.0, decel: 3.0 };
        let r = p.rollout(0.0, 10.0, 0.05);
        for w in r.windows(2) {
            assert!(w[1].0 >= w[0].0, "arc length must not decrease");
        }
        // Ends stopped at (or just before) the stop line.
        let (s_end, v_end) = *r.last().unwrap();
        assert!(v_end < 0.5, "still moving: {v_end}");
        assert!(s_end <= 30.5);
    }
}
