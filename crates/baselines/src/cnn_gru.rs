//! CNN+GRU baseline: convolutional frame features with a recurrent
//! temporal head — the standard pre-transformer video architecture.

use rand::rngs::StdRng;
use tsdx_core::{ClipModel, HeadLogits, SdlHeads};
use tsdx_nn::{Binding, Conv2d, Gru, Linear, ParamStore};
use tsdx_tensor::ops::Conv2dSpec;
use tsdx_tensor::{Graph, Tensor};

/// Configuration of the CNN+GRU baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnnGruConfig {
    /// Frames per clip.
    pub frames: usize,
    /// Frame height (px), must be divisible by 4 (two 2× pools).
    pub height: usize,
    /// Frame width (px), must be divisible by 4.
    pub width: usize,
    /// Channels of the first conv layer (second uses 2×).
    pub channels: usize,
    /// Frame feature width fed to the GRU.
    pub feature: usize,
    /// GRU hidden width (input to the heads).
    pub hidden: usize,
}

impl Default for CnnGruConfig {
    fn default() -> Self {
        CnnGruConfig { frames: 8, height: 32, width: 32, channels: 8, feature: 64, hidden: 64 }
    }
}

/// The CNN+GRU baseline model.
#[derive(Debug, Clone)]
pub struct CnnGru {
    cfg: CnnGruConfig,
    store: ParamStore,
    conv1: Conv2d,
    conv2: Conv2d,
    proj: Linear,
    gru: Gru,
    heads: SdlHeads,
}

impl CnnGru {
    /// Builds the baseline with fresh parameters.
    ///
    /// # Panics
    ///
    /// Panics if the spatial size is not divisible by 4.
    pub fn new(cfg: CnnGruConfig, seed: u64) -> Self {
        use rand::SeedableRng;
        assert!(
            cfg.height.is_multiple_of(4) && cfg.width.is_multiple_of(4),
            "frame size must be divisible by 4 for the two pooling stages"
        );
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let conv1 = Conv2d::new(
            &mut store,
            &mut rng,
            "cnn.conv1",
            1,
            cfg.channels,
            Conv2dSpec::new(3, 1, 1),
        );
        let conv2 = Conv2d::new(
            &mut store,
            &mut rng,
            "cnn.conv2",
            cfg.channels,
            cfg.channels * 2,
            Conv2dSpec::new(3, 1, 1),
        );
        let flat = cfg.channels * 2 * (cfg.height / 4) * (cfg.width / 4);
        let proj = Linear::new(&mut store, &mut rng, "cnn.proj", flat, cfg.feature);
        let gru = Gru::new(&mut store, &mut rng, "gru", cfg.feature, cfg.hidden);
        let heads = SdlHeads::new(&mut store, &mut rng, "heads", cfg.hidden);
        CnnGru { cfg, store, conv1, conv2, proj, gru, heads }
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }
}

impl ClipModel for CnnGru {
    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn forward(
        &self,
        g: &mut Graph,
        p: &Binding,
        videos: &Tensor,
        _rng: &mut StdRng,
        _train: bool,
    ) -> HeadLogits {
        let sh = videos.shape();
        assert_eq!(
            &sh[1..],
            &[self.cfg.frames, self.cfg.height, self.cfg.width],
            "video shape mismatch"
        );
        let b = sh[0];
        let (t, h, w) = (self.cfg.frames, self.cfg.height, self.cfg.width);
        // Frames as independent images: [B*T, 1, H, W].
        let x = g.constant(videos.reshape(&[b * t, 1, h, w]));
        let c1 = self.conv1.forward(g, p, x);
        let a1 = g.relu(c1);
        let p1 = g.avg_pool2d(a1, 2);
        let c2 = self.conv2.forward(g, p, p1);
        let a2 = g.relu(c2);
        let p2 = g.avg_pool2d(a2, 2); // [B*T, 2C, H/4, W/4]
        let flat_w = self.cfg.channels * 2 * (h / 4) * (w / 4);
        let flat = g.reshape(p2, &[b * t, flat_w]);
        let feat = self.proj.forward(g, p, flat);
        let feat = g.relu(feat);
        let seq = g.reshape(feat, &[b, t, self.cfg.feature]);
        let hidden = self.gru.forward(g, p, seq); // [B, hidden]
        self.heads.forward(g, p, hidden)
    }

    fn name(&self) -> &str {
        "cnn-gru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tsdx_core::predict_labels;
    use tsdx_data::{generate_dataset, DatasetConfig};
    use tsdx_render::RenderConfig;

    fn tiny() -> (CnnGru, Vec<tsdx_data::Clip>) {
        let cfg =
            CnnGruConfig { frames: 4, height: 16, width: 16, channels: 4, feature: 16, hidden: 16 };
        let clips = generate_dataset(&DatasetConfig {
            n_clips: 6,
            render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
            ..DatasetConfig::default()
        });
        (CnnGru::new(cfg, 0), clips)
    }

    #[test]
    fn predicts_labels() {
        let (model, clips) = tiny();
        let idx: Vec<usize> = (0..clips.len()).collect();
        let labels = predict_labels(&model, &clips, &idx);
        assert_eq!(labels.len(), clips.len());
    }

    #[test]
    fn temporal_order_matters_to_the_gru() {
        // Unlike the frame-MLP, reversing the clip changes the logits.
        let (model, clips) = tiny();
        let v = &clips[0].video;
        let sh = v.shape().to_vec();
        let (t, h, w) = (sh[0], sh[1], sh[2]);
        let mut rev = Vec::with_capacity(v.numel());
        for f in (0..t).rev() {
            rev.extend_from_slice(&v.data()[f * h * w..(f + 1) * h * w]);
        }
        let forward = v.reshape(&[1, t, h, w]);
        let reversed = Tensor::from_vec(rev, &[t, h, w]).reshape(&[1, t, h, w]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::new();
        let p = model.params().bind_frozen(&mut g);
        let a = model.forward(&mut g, &p, &forward, &mut rng, false);
        let b = model.forward(&mut g, &p, &reversed, &mut rng, false);
        assert!(!g.value(a.ego).allclose(g.value(b.ego), 1e-6), "GRU should be order-sensitive");
    }

    #[test]
    fn overfits_a_handful_of_clips() {
        // Learning smoke test: loss drops markedly on a tiny subset.
        let (mut model, clips) = tiny();
        let idx: Vec<usize> = (0..clips.len()).collect();
        let report = tsdx_core::train(
            &mut model,
            &clips,
            &idx,
            &tsdx_core::TrainConfig {
                epochs: 20,
                batch_size: 6,
                schedule: tsdx_nn::LrSchedule::Constant(4e-3),
                ..tsdx_core::TrainConfig::default()
            },
        );
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first * 0.75, "no learning: {first} -> {last}");
    }

    #[test]
    #[should_panic]
    fn rejects_unpoolable_sizes() {
        CnnGru::new(CnnGruConfig { height: 18, ..CnnGruConfig::default() }, 0);
    }
}
