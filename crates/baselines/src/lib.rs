//! # tsdx-baselines
//!
//! Comparator models for the extraction task, all consuming the same clips
//! and evaluated with the same harness as the video transformer:
//!
//! * [`HeuristicExtractor`] — non-learned pixel-statistics rules (table
//!   floor);
//! * [`FrameMlp`] — per-frame MLP + temporal mean pooling (order-blind);
//! * [`CnnGru`] — convolutional frame features + GRU (the standard
//!   pre-transformer video architecture).
//!
//! The learned baselines implement [`tsdx_core::ClipModel`], so
//! [`tsdx_core::train`] and [`tsdx_core::evaluate`] work on them unchanged.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cnn_gru;
mod frame_mlp;
mod heuristic;

pub use cnn_gru::{CnnGru, CnnGruConfig};
pub use frame_mlp::{FrameMlp, FrameMlpConfig};
pub use heuristic::{HeuristicConfig, HeuristicExtractor};
