//! Non-learned heuristic baseline: hand-written rules over pixel
//! statistics.
//!
//! The heuristic sees exactly the same videos as the learned models and
//! mirrors a pre-ML pipeline: it normalizes global brightness against the
//! sky, detects actors with intensity-band detectors, estimates "came to
//! rest" from inter-frame differences, reads turns from scene streaming,
//! and classifies the road by inverse-projecting road-intensity pixels to
//! ground coordinates. It anchors the bottom of every comparison table.
//!
//! Known blind spots (by design — they motivate the learned models):
//! `accelerate` is indistinguishable from `cruise` at 1 Hz frame spacing
//! (dash-marking aliasing makes inter-frame differences speed-blind),
//! curve direction and cross-street evidence sit near the 32×32
//! discretization limit, and fine-grained vehicle actions depend on
//! fragile blob tracking.

use tsdx_data::{Clip, ClipLabels, POSITION_NONE};
use tsdx_sdl::{vocab, ActorAction, ActorKind, EgoManeuver, Position, RoadKind};
use tsdx_tensor::Tensor;

/// Tunable thresholds of the heuristic extractor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuristicConfig {
    /// "Came to rest": min of the last two motion pairs below this fraction
    /// of the maximum pair.
    pub rest_ratio: f32,
    /// Inter-frame scene-streaming (px) that counts as a turn.
    pub turn_stream_px: f32,
    /// Inter-frame scene-streaming (px) that counts as a lane change.
    pub lane_stream_px: f32,
    /// Far-field road pixels per side (whole clip) that flag a cross street.
    pub cross_px: usize,
    /// Near-probe road width (px) above which the carriageway is the wide
    /// straight layout.
    pub wide_road_px: usize,
    /// Far-probe road centroid offset (px from center) below which the road
    /// curves left.
    pub curve_offset_px: f32,
    /// Minimum total pixels for an actor detection.
    pub min_blob: usize,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            rest_ratio: 0.47,
            turn_stream_px: 3.0,
            lane_stream_px: 1.2,
            cross_px: 6,
            wide_road_px: 14,
            curve_offset_px: -3.0,
            min_blob: 6,
        }
    }
}

/// The rule-based extractor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HeuristicExtractor {
    cfg: HeuristicConfig,
}

/// Camera intrinsics assumed by the rules (matching
/// `tsdx_render::Camera::standard`).
#[derive(Debug, Clone, Copy)]
struct Intrinsics {
    focal: f32,
    horizon: f32,
    cam_height: f32,
    cx: f32,
}

#[derive(Debug, Clone, Copy, Default)]
struct FrameStats {
    vehicle_px: usize,
    vehicle_col: f32,
    cyclist_px: usize,
    cyclist_col: f32,
    ped_px: usize,
    ped_col: f32,
    marking_col_sum: f32,
    marking_px: usize,
    /// Road-surface pixels and column sum in the near probe row (~11 m).
    near_road_px: usize,
    near_road_col_sum: f32,
    /// Road-surface pixels and column sum in the far probe row (~21 m).
    far_road_px: usize,
    far_road_col_sum: f32,
    cross_left: usize,
    cross_right: usize,
}

impl HeuristicExtractor {
    /// Creates an extractor with the given thresholds.
    pub fn new(cfg: HeuristicConfig) -> Self {
        HeuristicExtractor { cfg }
    }

    /// Predicts head labels for one `[T, H, W]` video.
    pub fn predict(&self, video: &Tensor) -> ClipLabels {
        let sh = video.shape();
        assert_eq!(sh.len(), 3, "expected [T, H, W] video");
        let (t, h, w) = (sh[0], sh[1], sh[2]);
        assert!(t >= 3, "heuristic needs at least three frames");
        let intr = Intrinsics {
            focal: w as f32 / 2.0,
            horizon: h as f32 * 0.42,
            cam_height: 1.4,
            cx: w as f32 / 2.0,
        };

        // Brightness normalization against the sky (top two rows).
        let delta = sky_brightness_delta(video, t, h, w);

        let stats: Vec<FrameStats> =
            (0..t).map(|f| frame_stats(video, f, h, w, &intr, delta)).collect();
        let motion = motion_energy(video, t, h, w);

        // --- ego: came to rest? ---------------------------------------------
        // A stopped clip's final frame pairs bottom out at the sensor-noise
        // floor, well below the peak motion of the moving phase.
        let peak = motion.iter().fold(0.0f32, |a, &b| a.max(b));
        let rest = motion[motion.len() - 2..].iter().fold(f32::INFINITY, |a, &b| a.min(b));
        let stopped = peak > 1e-5 && rest < self.cfg.rest_ratio * peak;

        // --- scene streaming (marking centroid inter-frame drift) -----------
        let mut best_stream = 0.0f32;
        for win in stats.windows(2) {
            let (a, b) = (&win[0], &win[1]);
            if a.marking_px > 0 && b.marking_px > 0 {
                let d = b.marking_col_sum / b.marking_px as f32
                    - a.marking_col_sum / a.marking_px as f32;
                if d.abs() > best_stream.abs() {
                    best_stream = d;
                }
            }
        }

        // --- road kind --------------------------------------------------------
        // 1. A cross street paints road intensity far outside the ego
        //    carriageway on *both* sides.
        // 2. The ego carriageway is four lanes wide on straight roads but
        //    two on curves, so the near-probe road width separates them.
        // 3. Curve side comes from the far-probe road centroid: a left
        //    curve pulls the distant road left of the image center.
        let cross_l: usize = stats.iter().map(|s| s.cross_left).sum();
        let cross_r: usize = stats.iter().map(|s| s.cross_right).sum();
        let near_width = stats.iter().map(|s| s.near_road_px).max().unwrap_or(0);
        let far_centroid_off = {
            let px: usize = stats.iter().map(|s| s.far_road_px).sum();
            if px > 0 {
                stats.iter().map(|s| s.far_road_col_sum).sum::<f32>() / px as f32 - intr.cx
            } else {
                0.0
            }
        };
        let road = if cross_l >= self.cfg.cross_px && cross_r >= self.cfg.cross_px {
            RoadKind::Intersection
        } else if near_width >= self.cfg.wide_road_px {
            RoadKind::Straight
        } else if far_centroid_off < self.cfg.curve_offset_px {
            RoadKind::CurveLeft
        } else {
            RoadKind::CurveRight
        };

        // --- ego maneuver ------------------------------------------------------
        let ego = if stopped {
            EgoManeuver::DecelerateToStop
        } else if road == RoadKind::Intersection && best_stream.abs() > self.cfg.turn_stream_px {
            // Rotating left makes the scene stream right (+columns).
            if best_stream > 0.0 {
                EgoManeuver::TurnLeft
            } else {
                EgoManeuver::TurnRight
            }
        } else if road == RoadKind::Straight && best_stream.abs() > self.cfg.lane_stream_px {
            if best_stream > 0.0 {
                EgoManeuver::LaneChangeLeft
            } else {
                EgoManeuver::LaneChangeRight
            }
        } else {
            EgoManeuver::Cruise
        };

        // --- actors -------------------------------------------------------------
        let total = |f: fn(&FrameStats) -> usize| -> usize { stats.iter().map(f).sum() };
        let ped_total = total(|s| s.ped_px);
        let veh_total = total(|s| s.vehicle_px);
        let cyc_total = total(|s| s.cyclist_px);

        let mut presence = [0.0f32; 3];
        if veh_total >= self.cfg.min_blob {
            presence[ActorKind::Vehicle.index()] = 1.0;
        }
        if ped_total >= self.cfg.min_blob / 2 {
            presence[ActorKind::Pedestrian.index()] = 1.0;
        }
        if cyc_total >= self.cfg.min_blob {
            presence[ActorKind::Cyclist.index()] = 1.0;
        }

        let (event, position) = if presence[ActorKind::Pedestrian.index()] > 0.5 {
            let (action, pos) =
                classify_blob(&stats, |s| (s.ped_px, s.ped_col), ActorKind::Pedestrian, w);
            (vocab::event_index(ActorKind::Pedestrian, action).unwrap_or(vocab::EVENT_NONE), pos)
        } else if presence[ActorKind::Vehicle.index()] > 0.5 {
            let (action, pos) =
                classify_blob(&stats, |s| (s.vehicle_px, s.vehicle_col), ActorKind::Vehicle, w);
            (vocab::event_index(ActorKind::Vehicle, action).unwrap_or(vocab::EVENT_NONE), pos)
        } else if presence[ActorKind::Cyclist.index()] > 0.5 {
            let (action, pos) =
                classify_blob(&stats, |s| (s.cyclist_px, s.cyclist_col), ActorKind::Cyclist, w);
            (vocab::event_index(ActorKind::Cyclist, action).unwrap_or(vocab::EVENT_NONE), pos)
        } else {
            (vocab::EVENT_NONE, POSITION_NONE)
        };

        ClipLabels { ego: ego.index(), road: road.index(), event, position, presence }
    }

    /// Predicts labels for a slice of clips.
    pub fn predict_clips(&self, clips: &[Clip]) -> Vec<ClipLabels> {
        clips.iter().map(|c| self.predict(&c.video)).collect()
    }

    /// Baseline display name.
    pub fn name(&self) -> &'static str {
        "heuristic"
    }
}

/// Estimated global brightness shift, measured against the known sky
/// gradient of the renderer.
fn sky_brightness_delta(video: &Tensor, t: usize, h: usize, w: usize) -> f32 {
    let data = video.data();
    let mut sum = 0.0;
    let mut n = 0usize;
    for f in 0..t {
        for r in 0..2usize {
            let row = &data[(f * h + r) * w..(f * h + r + 1) * w];
            sum += row.iter().sum::<f32>();
            n += w;
        }
    }
    // Expected sky intensity for the top two rows.
    let expected = 0.75 - 0.08 * (0.5 + 1.5) / 2.0 / (h as f32 * 0.42);
    sum / n as f32 - expected
}

fn classify_blob(
    stats: &[FrameStats],
    get: impl Fn(&FrameStats) -> (usize, f32),
    kind: ActorKind,
    w: usize,
) -> (ActorAction, usize) {
    let visible: Vec<(usize, f32)> = stats.iter().map(&get).filter(|&(px, _)| px > 0).collect();
    if visible.is_empty() {
        return (ActorAction::Stopped, POSITION_NONE);
    }
    let (first_px, first_col) = visible[0];
    let (last_px, last_col) = *visible.last().expect("non-empty");
    let col_drift = (last_col - first_col) / w as f32;
    let growth = last_px as f32 / first_px.max(1) as f32;
    let center_off = (first_col - w as f32 / 2.0) / w as f32;

    let action = match kind {
        ActorKind::Pedestrian => {
            if col_drift.abs() > 0.08 {
                ActorAction::Crossing
            } else {
                ActorAction::Stopped
            }
        }
        ActorKind::Cyclist => {
            if col_drift.abs() > 0.12 {
                ActorAction::Crossing
            } else if growth > 2.5 {
                ActorAction::Oncoming
            } else {
                ActorAction::Leading
            }
        }
        ActorKind::Vehicle => {
            if col_drift.abs() > 0.20 {
                ActorAction::Crossing
            } else if growth > 2.5 {
                ActorAction::Oncoming
            } else if center_off < -0.20 {
                ActorAction::Overtaking
            } else if center_off > 0.20 {
                ActorAction::CutIn
            } else {
                ActorAction::Leading
            }
        }
    };
    let position = if center_off < -0.15 {
        Position::Left.index()
    } else if center_off > 0.15 {
        Position::Right.index()
    } else {
        Position::Ahead.index()
    };
    (action, position)
}

fn frame_stats(
    video: &Tensor,
    f: usize,
    h: usize,
    w: usize,
    intr: &Intrinsics,
    delta: f32,
) -> FrameStats {
    let data = &video.data()[f * h * w..(f + 1) * h * w];
    let mut s = FrameStats::default();
    let mut sums = [0.0f32; 3]; // vehicle, cyclist, ped column sums
    let horizon = intr.horizon;
    for r in 0..h {
        let rowc = r as f32 + 0.5;
        let below = rowc > horizon + 0.5;
        // Ground geometry for this row.
        let (fwd, valid_ground) = if below {
            (intr.focal * intr.cam_height / (rowc - horizon), true)
        } else {
            (0.0, false)
        };
        for c in 0..w {
            let v = data[r * w + c] - delta;
            let colc = c as f32 + 0.5;
            if !below {
                // Above the horizon only the sky and heads/torsos of near
                // pedestrians appear; markings cannot.
                if v > 0.80 {
                    s.ped_px += 1;
                    sums[2] += colc;
                }
                continue;
            }
            if (0.80..=0.96).contains(&v) {
                s.marking_px += 1;
                s.marking_col_sum += colc;
            } else if v > 0.96 {
                // Very bright below horizon: near pedestrian body.
                s.ped_px += 1;
                sums[2] += colc;
            } else if (0.555..0.74).contains(&v) {
                s.vehicle_px += 1;
                sums[0] += colc;
            } else if (0.455..0.555).contains(&v) {
                s.cyclist_px += 1;
                sums[1] += colc;
            } else if (0.33..0.455).contains(&v) && valid_ground {
                // Road-surface pixel: probe rows for width/centroid, and
                // inverse-project for far-lateral cross-street evidence.
                if (9.0..13.0).contains(&fwd) {
                    s.near_road_px += 1;
                    s.near_road_col_sum += colc;
                } else if (15.0..28.0).contains(&fwd) {
                    s.far_road_px += 1;
                    s.far_road_col_sum += colc;
                }
                if (6.0..45.0).contains(&fwd) {
                    let lateral = -(colc - intr.cx) * fwd / intr.focal;
                    if lateral > 12.6 {
                        s.cross_left += 1;
                    } else if lateral < -12.6 {
                        s.cross_right += 1;
                    }
                }
            }
        }
    }
    if s.vehicle_px > 0 {
        s.vehicle_col = sums[0] / s.vehicle_px as f32;
    }
    if s.cyclist_px > 0 {
        s.cyclist_col = sums[1] / s.cyclist_px as f32;
    }
    if s.ped_px > 0 {
        s.ped_col = sums[2] / s.ped_px as f32;
    }
    s
}

/// Mean absolute inter-frame difference, one value per consecutive pair.
fn motion_energy(video: &Tensor, t: usize, h: usize, w: usize) -> Vec<f32> {
    let data = video.data();
    let hw = h * w;
    (0..t - 1)
        .map(|f| {
            let a = &data[f * hw..(f + 1) * hw];
            let b = &data[(f + 1) * hw..(f + 2) * hw];
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>() / hw as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdx_data::{generate_clip, DatasetConfig};
    use tsdx_render::RenderConfig;
    use tsdx_sim::{SamplerConfig, ScenarioSampler};

    fn clips_with(road: RoadKind, ego: EgoManeuver, n: usize) -> Vec<Clip> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let sampler = ScenarioSampler::new(SamplerConfig {
            duration: 8.0,
            max_events: 0,
            ..SamplerConfig::default()
        });
        let render = RenderConfig::default();
        (0..n)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                let g = sampler.sample_with(&mut rng, road, ego);
                let traj = g.world.simulate(0.1);
                let video = tsdx_render::render_video(&g.world, &traj, &render, &mut rng);
                let labels = ClipLabels::from_scenario(&g.truth);
                Clip { video, truth: g.truth, labels }
            })
            .collect()
    }

    #[test]
    fn detects_stopping_vs_cruising() {
        let h = HeuristicExtractor::default();
        let stops = clips_with(RoadKind::Straight, EgoManeuver::DecelerateToStop, 10);
        let cruises = clips_with(RoadKind::Straight, EgoManeuver::Cruise, 10);
        let stop_hits = stops
            .iter()
            .filter(|c| h.predict(&c.video).ego == EgoManeuver::DecelerateToStop.index())
            .count();
        let false_stops = cruises
            .iter()
            .filter(|c| h.predict(&c.video).ego == EgoManeuver::DecelerateToStop.index())
            .count();
        assert!(stop_hits >= 7, "missed stops: {stop_hits}/10");
        assert!(false_stops <= 2, "false stops: {false_stops}/10");
    }

    #[test]
    fn detects_intersections() {
        let h = HeuristicExtractor::default();
        let ix = clips_with(RoadKind::Intersection, EgoManeuver::Cruise, 8);
        let straight = clips_with(RoadKind::Straight, EgoManeuver::Cruise, 8);
        let hits = ix
            .iter()
            .filter(|c| h.predict(&c.video).road == RoadKind::Intersection.index())
            .count();
        let false_hits = straight
            .iter()
            .filter(|c| h.predict(&c.video).road == RoadKind::Intersection.index())
            .count();
        assert!(hits >= 2, "missed intersections: {hits}/8");
        assert!(false_hits <= 2, "phantom intersections: {false_hits}/8");
    }

    #[test]
    fn beats_chance_on_a_mixed_sample() {
        let cfg = DatasetConfig { n_clips: 60, ..DatasetConfig::default() };
        let clips: Vec<Clip> = (0..60).map(|i| generate_clip(&cfg, i)).collect();
        let h = HeuristicExtractor::default();
        let ego_ok = clips.iter().filter(|c| h.predict(&c.video).ego == c.labels.ego).count();
        let road_ok = clips.iter().filter(|c| h.predict(&c.video).road == c.labels.road).count();
        // Majority-class chance is ~30% for ego and ~25% for road.
        assert!(ego_ok as f32 / 60.0 > 0.3, "ego below chance: {ego_ok}/60");
        assert!(road_ok as f32 / 60.0 > 0.3, "road below chance: {road_ok}/60");
    }

    #[test]
    fn pedestrian_presence_is_detected() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let sampler = ScenarioSampler::new(SamplerConfig {
            duration: 8.0,
            max_events: 2,
            ..SamplerConfig::default()
        });
        let render = RenderConfig::default();
        let h = HeuristicExtractor::default();
        let mut with_ped = 0;
        let mut detected = 0;
        for i in 0..400 {
            let mut rng = StdRng::seed_from_u64(i);
            let g = sampler.sample(&mut rng);
            if !g.truth.actors.iter().any(|a| a.kind == ActorKind::Pedestrian) {
                continue;
            }
            with_ped += 1;
            let traj = g.world.simulate(0.1);
            let video = tsdx_render::render_video(&g.world, &traj, &render, &mut rng);
            if h.predict(&video).presence[ActorKind::Pedestrian.index()] > 0.5 {
                detected += 1;
            }
            if with_ped >= 15 {
                break;
            }
        }
        assert!(with_ped >= 8, "sampler produced too few pedestrians");
        assert!(detected * 2 >= with_ped, "pedestrian detector too weak: {detected}/{with_ped}");
    }

    #[test]
    fn output_labels_are_always_in_range() {
        let cfg = DatasetConfig { n_clips: 1, ..DatasetConfig::default() };
        let clip = generate_clip(&cfg, 0);
        let l = HeuristicExtractor::default().predict(&clip.video);
        assert!(l.ego < EgoManeuver::COUNT);
        assert!(l.road < RoadKind::COUNT);
        assert!(l.event < vocab::EVENT_COUNT);
        assert!(l.position <= POSITION_NONE);
        l.to_scenario().validate().unwrap();
    }
}
