//! Frame-MLP baseline: per-frame MLP features, temporal mean pooling.
//!
//! The weakest learned baseline: it sees every frame independently and can
//! only aggregate by averaging, so it has no access to motion order — the
//! quantity that separates, say, `accelerate` from `decelerate-to-stop`.

use rand::rngs::StdRng;
use tsdx_core::{ClipModel, HeadLogits, SdlHeads};
use tsdx_nn::{Binding, Linear, ParamStore};
use tsdx_tensor::{Graph, Tensor};

/// Configuration of the frame-MLP baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameMlpConfig {
    /// Frames per clip.
    pub frames: usize,
    /// Frame height (px).
    pub height: usize,
    /// Frame width (px).
    pub width: usize,
    /// Hidden width of the per-frame MLP.
    pub hidden: usize,
    /// Frame feature width (input to the heads).
    pub feature: usize,
}

impl Default for FrameMlpConfig {
    fn default() -> Self {
        FrameMlpConfig { frames: 8, height: 32, width: 32, hidden: 128, feature: 64 }
    }
}

/// The frame-MLP baseline model.
#[derive(Debug, Clone)]
pub struct FrameMlp {
    cfg: FrameMlpConfig,
    store: ParamStore,
    fc1: Linear,
    fc2: Linear,
    heads: SdlHeads,
}

impl FrameMlp {
    /// Builds the baseline with fresh parameters.
    pub fn new(cfg: FrameMlpConfig, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let hw = cfg.height * cfg.width;
        let fc1 = Linear::new(&mut store, &mut rng, "mlp.fc1", hw, cfg.hidden);
        let fc2 = Linear::new(&mut store, &mut rng, "mlp.fc2", cfg.hidden, cfg.feature);
        let heads = SdlHeads::new(&mut store, &mut rng, "heads", cfg.feature);
        FrameMlp { cfg, store, fc1, fc2, heads }
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }
}

impl ClipModel for FrameMlp {
    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn forward(
        &self,
        g: &mut Graph,
        p: &Binding,
        videos: &Tensor,
        _rng: &mut StdRng,
        _train: bool,
    ) -> HeadLogits {
        let sh = videos.shape();
        assert_eq!(
            &sh[1..],
            &[self.cfg.frames, self.cfg.height, self.cfg.width],
            "video shape mismatch"
        );
        let b = sh[0];
        let hw = self.cfg.height * self.cfg.width;
        let x = g.constant(videos.reshape(&[b * self.cfg.frames, hw]));
        let h = self.fc1.forward(g, p, x);
        let h = g.relu(h);
        let f = self.fc2.forward(g, p, h); // [B*T, F]
        let grid = g.reshape(f, &[b, self.cfg.frames, self.cfg.feature]);
        let pooled = g.mean_axis(grid, 1, false); // [B, F]
        self.heads.forward(g, p, pooled)
    }

    fn name(&self) -> &str {
        "frame-mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tsdx_core::predict_labels;
    use tsdx_data::{generate_dataset, DatasetConfig};
    use tsdx_render::RenderConfig;

    fn tiny() -> (FrameMlp, Vec<tsdx_data::Clip>) {
        let cfg = FrameMlpConfig { frames: 4, height: 16, width: 16, hidden: 32, feature: 16 };
        let clips = generate_dataset(&DatasetConfig {
            n_clips: 8,
            render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
            ..DatasetConfig::default()
        });
        (FrameMlp::new(cfg, 0), clips)
    }

    #[test]
    fn predicts_labels_for_all_clips() {
        let (model, clips) = tiny();
        let idx: Vec<usize> = (0..clips.len()).collect();
        let labels = predict_labels(&model, &clips, &idx);
        assert_eq!(labels.len(), clips.len());
    }

    #[test]
    fn temporal_order_is_invisible_to_the_mlp() {
        // Mean pooling destroys frame order: reversing the video must give
        // identical logits. This is exactly the weakness the transformer
        // addresses — encoded here as a test of the baseline's contract.
        let (model, clips) = tiny();
        let v = &clips[0].video;
        let sh = v.shape().to_vec();
        let (t, h, w) = (sh[0], sh[1], sh[2]);
        let mut rev = Vec::with_capacity(v.numel());
        for f in (0..t).rev() {
            rev.extend_from_slice(&v.data()[f * h * w..(f + 1) * h * w]);
        }
        let forward = v.reshape(&[1, t, h, w]);
        let reversed = Tensor::from_vec(rev, &[t, h, w]).reshape(&[1, t, h, w]);

        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::new();
        let p = model.params().bind_frozen(&mut g);
        let a = model.forward(&mut g, &p, &forward, &mut rng, false);
        let b = model.forward(&mut g, &p, &reversed, &mut rng, false);
        assert!(g.value(a.ego).allclose(g.value(b.ego), 1e-4));
        assert!(g.value(a.event).allclose(g.value(b.event), 1e-4));
    }

    #[test]
    fn trains_without_nans() {
        let (mut model, clips) = tiny();
        let idx: Vec<usize> = (0..clips.len()).collect();
        let report = tsdx_core::train(
            &mut model,
            &clips,
            &idx,
            &tsdx_core::TrainConfig {
                epochs: 2,
                batch_size: 4,
                schedule: tsdx_nn::LrSchedule::Constant(1e-3),
                ..tsdx_core::TrainConfig::default()
            },
        );
        assert!(report.final_loss().is_finite());
    }
}
