//! Extraction-as-a-service: a fault-hardened, batched HTTP front for
//! [`tsdx_core::ScenarioExtractor`].
//!
//! The build is offline, so the server is hand-rolled over [`std::net`] —
//! no async runtime, no HTTP crate. The design keeps the hot path simple
//! and pushes all cleverness into *robustness*:
//!
//! * **Micro-batching** ([`batcher`]): concurrent `POST /v1/extract`
//!   requests coalesce into one batched encoder forward through
//!   [`ScenarioExtractor::extract_window_batch`], amortizing weight-packing
//!   across clips.
//! * **Multiplexed streaming sessions** ([`sessions`]): `POST /sessions`
//!   opens a server-side [`tsdx_core::StreamState`]; chunk pushes to
//!   `POST /sessions/<id>/frames` flow through the *same* batch queue, and
//!   newly completed time groups from concurrent streams are encoded in
//!   one cross-stream spatial forward ([`tsdx_core::encode_staged`]) —
//!   bit-identical to serving each stream alone. The table is bounded
//!   (typed 429) and idle sessions are evicted after a TTL.
//! * **Bounded admission**: the batch queue has a hard capacity; past it
//!   requests shed with a typed, retryable `429` *before* any model work.
//!   A connection cap sheds with `503` before reading a byte.
//! * **Deadlines**: `X-Deadline-Ms` propagates into the batcher, which
//!   drops entries whose budget an EWMA forward estimate says cannot be
//!   met — shedding beats accepting-then-missing.
//! * **Degrade under pressure**: when queue depth crosses a threshold,
//!   batches flip to the int8 plane (PR 7) — latency is bought with
//!   precision, visibly (the response names the plane that served it).
//! * **Fault containment** ([`error`], [`http`]): every malformed request,
//!   slow client, disconnect, or handler panic maps to a typed
//!   [`ServeError`] and at worst closes *that* connection. The listener
//!   never dies; `tests/fault_injection.rs` proves it with injected accept
//!   stalls, mid-body disconnects, and handler panics.
//! * **Graceful shutdown**: `POST /admin/shutdown` (or [`Server::shutdown`])
//!   stops admission, answers every queued request, drains in-flight
//!   batches, then joins all threads.
//!
//! ```no_run
//! use tsdx_core::{ModelConfig, ScenarioExtractor, VideoScenarioTransformer};
//! use tsdx_serve::{Server, ServerConfig};
//!
//! let cfg = ModelConfig { frames: 4, height: 16, width: 16, ..ModelConfig::default() };
//! let extractor = ScenarioExtractor::new(VideoScenarioTransformer::new(cfg, 0));
//! let mut server = Server::start(extractor, ServerConfig::default()).unwrap();
//! println!("serving on http://{}", server.local_addr());
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batcher;
pub mod error;
pub mod http;
pub mod json;
pub mod search;
pub mod server;
pub mod sessions;
pub mod stats;

pub use batcher::{BatchConfig, Batcher, Extraction, StreamAnswer};
pub use error::ServeError;
pub use search::{Hit, SearchService, MAX_SEARCH_K};
pub use server::{Server, ServerConfig};
pub use sessions::{SessionConfig, SessionEntry, SessionManager};
pub use stats::ServeStats;
