//! Hand-rolled HTTP/1.1 framing over any `BufRead`/`Write` pair.
//!
//! The build is offline (no tokio/hyper), and the subset a batched
//! inference server needs is small: request line + headers +
//! `Content-Length` bodies in, status + JSON out, sequential keep-alive.
//! Everything here is bounded — line lengths, header counts, body sizes —
//! so no request shape can make the server allocate or wait without limit;
//! malformed bytes produce a typed [`ServeError`], never a panic or a hang.
//! Working over traits instead of `TcpStream` keeps the parser unit-testable
//! against in-memory byte slices (`tests/http_errors.rs` fuzzes it).

use std::io::{self, BufRead, Write};

use crate::error::ServeError;

/// Longest accepted request line, in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted header line, in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// A parsed request head: everything before the body.
#[derive(Debug, Clone)]
pub struct Head {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any `?query` stripped.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
}

impl Head {
    /// First value of header `name` (lowercase), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The declared body length.
    ///
    /// # Errors
    ///
    /// `BadRequest` when the value is present but not a number, or when a
    /// `Transfer-Encoding` is declared (chunked bodies are unsupported —
    /// rejecting them outright is what keeps body reads bounded).
    pub fn content_length(&self) -> Result<usize, ServeError> {
        if self.header("transfer-encoding").is_some() {
            return Err(ServeError::BadRequest {
                detail: "transfer-encoding is not supported; send Content-Length".into(),
            });
        }
        match self.header("content-length") {
            None => Ok(0),
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| ServeError::BadRequest { detail: "bad Content-Length".into() }),
        }
    }

    /// Whether the client asked for the connection to close after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Whether the client is waiting for `100 Continue` before sending the
    /// body (curl does this for large uploads).
    pub fn expects_continue(&self) -> bool {
        self.header("expect").is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    }
}

/// Maps an I/O failure during request reading to the client-visible error:
/// timeouts get their own status (the client was too slow), everything else
/// is a malformed/aborted request.
fn io_error(e: io::Error, what: &'static str) -> ServeError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ServeError::ReadTimeout,
        _ => ServeError::BadRequest { detail: format!("{what}: {e}") },
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes, stripping the
/// terminator and any trailing `\r`. `Ok(None)` is clean EOF before the
/// first byte (a keep-alive client hanging up between requests).
fn read_line_bounded(
    r: &mut impl BufRead,
    max: usize,
    what: &'static str,
) -> Result<Option<Vec<u8>>, ServeError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(|e| io_error(e, what))?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(ServeError::BadRequest { detail: format!("{what}: truncated line") })
            };
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            if line.len() + pos > max {
                return Err(ServeError::BadRequest { detail: format!("{what}: line too long") });
            }
            line.extend_from_slice(&buf[..pos]);
            r.consume(pos + 1);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(line));
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        r.consume(n);
        if line.len() > max {
            return Err(ServeError::BadRequest { detail: format!("{what}: line too long") });
        }
    }
}

/// Reads and parses one request head.
///
/// `Ok(None)` means the client closed the connection cleanly before
/// sending anything — the keep-alive loop ends there.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for any malformed or truncated head,
/// [`ServeError::ReadTimeout`] when the socket read timeout fires.
pub fn read_head(r: &mut impl BufRead) -> Result<Option<Head>, ServeError> {
    let Some(line) = read_line_bounded(r, MAX_REQUEST_LINE, "request line")? else {
        return Ok(None);
    };
    let line = String::from_utf8(line)
        .map_err(|_| ServeError::BadRequest { detail: "request line is not UTF-8".into() })?;
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ServeError::BadRequest {
                detail: "request line must be 'METHOD /path HTTP/1.x'".into(),
            })
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::BadRequest { detail: format!("unsupported version {version}") });
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ServeError::BadRequest { detail: "bad method token".into() });
    }
    let path = target.split('?').next().unwrap_or(target);
    if !path.starts_with('/') {
        return Err(ServeError::BadRequest { detail: "target must be an absolute path".into() });
    }

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line_bounded(r, MAX_HEADER_LINE, "header")? else {
            return Err(ServeError::BadRequest { detail: "truncated headers".into() });
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(ServeError::BadRequest { detail: "too many headers".into() });
        }
        let line = String::from_utf8(line)
            .map_err(|_| ServeError::BadRequest { detail: "header is not UTF-8".into() })?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::BadRequest { detail: "header without ':'".into() });
        };
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(ServeError::BadRequest { detail: "bad header name".into() });
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Some(Head { method: method.to_string(), path: path.to_string(), headers }))
}

/// Reads the request body declared by `head`, enforcing `max_body`.
///
/// # Errors
///
/// [`ServeError::PayloadTooLarge`] past the limit,
/// [`ServeError::ReadTimeout`] when the client stalls mid-body, and
/// [`ServeError::BadRequest`] when the client disconnects before delivering
/// the declared length (always a typed outcome — a truncated upload can
/// never wedge a handler or reach the model).
pub fn read_body(
    r: &mut impl BufRead,
    head: &Head,
    max_body: usize,
) -> Result<Vec<u8>, ServeError> {
    let len = head.content_length()?;
    if len > max_body {
        return Err(ServeError::PayloadTooLarge { limit: max_body });
    }
    // Fault injection: the client vanishes after N bytes of body.
    #[cfg(feature = "fault-inject")]
    let len_available = match tsdx_tensor::faults::take_body_disconnect() {
        Some(cut) => cut.min(len),
        None => len,
    };
    #[cfg(not(feature = "fault-inject"))]
    let len_available = len;

    let mut body = vec![0u8; len_available];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ServeError::ReadTimeout,
        _ => ServeError::BadRequest { detail: "client disconnected mid-body".into() },
    })?;
    if len_available < len {
        return Err(ServeError::BadRequest { detail: "client disconnected mid-body".into() });
    }
    Ok(body)
}

/// The reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body (every endpoint speaks JSON).
    pub body: String,
    /// Extra headers (`Retry-After`, ...).
    pub extra: Vec<(&'static str, String)>,
    /// Whether to announce and perform a connection close.
    pub close: bool,
}

impl Response {
    /// A 200 with the given JSON body.
    pub fn ok(body: String) -> Self {
        Response { status: 200, body, extra: Vec::new(), close: false }
    }

    /// The response for a failed request: the error's stable status and
    /// JSON body, a `Retry-After` hint on retryable sheds, and a close on
    /// errors that leave the stream unsynchronized (we cannot know where
    /// the next request would start after a malformed or truncated one).
    pub fn from_error(e: &ServeError) -> Self {
        let mut extra = Vec::new();
        if e.retryable() {
            extra.push(("Retry-After", "1".to_string()));
        }
        let close = matches!(
            e,
            ServeError::BadRequest { .. }
                | ServeError::ReadTimeout
                | ServeError::PayloadTooLarge { .. }
                | ServeError::Internal { .. }
                | ServeError::Busy { .. }
        );
        Response { status: e.status(), body: e.to_json(), extra, close }
    }
}

/// Writes `resp` in full (status line, headers, body).
///
/// # Errors
///
/// Propagates socket write failures; the caller treats any of them as the
/// client having gone away.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len()
    );
    for (k, v) in &resp.extra {
        out.push_str(&format!("{k}: {v}\r\n"));
    }
    if resp.close {
        out.push_str("connection: close\r\n");
    }
    out.push_str("\r\n");
    w.write_all(out.as_bytes())?;
    w.write_all(resp.body.as_bytes())?;
    w.flush()
}

/// Writes the interim `100 Continue` that unblocks clients sending
/// `Expect: 100-continue`.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_continue(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn head_of(raw: &str) -> Result<Option<Head>, ServeError> {
        read_head(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_full_head() {
        let h = head_of("POST /v1/extract?x=1 HTTP/1.1\r\nHost: a\r\nX-Deadline-Ms: 250\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(h.method, "POST");
        assert_eq!(h.path, "/v1/extract");
        assert_eq!(h.header("x-deadline-ms"), Some("250"));
        assert!(!h.wants_close());
        assert!(!h.expects_continue());
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_typed() {
        assert!(head_of("").unwrap().is_none());
        assert!(matches!(head_of("GARBAGE\r\n\r\n"), Err(ServeError::BadRequest { .. })));
        assert!(matches!(head_of("GET /x SPDY/3\r\n\r\n"), Err(ServeError::BadRequest { .. })));
        assert!(matches!(head_of("GET x HTTP/1.1\r\n\r\n"), Err(ServeError::BadRequest { .. })));
        assert!(matches!(
            head_of("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ServeError::BadRequest { .. })
        ));
        // Truncated: head ends before the blank line.
        assert!(matches!(
            head_of("GET / HTTP/1.1\r\nHost: a\r\n"),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn bounds_are_enforced() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert!(matches!(head_of(&long), Err(ServeError::BadRequest { .. })));
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(head_of(&many), Err(ServeError::BadRequest { .. })));
    }

    #[test]
    fn body_respects_declared_length_and_limit() {
        let raw = "POST / HTTP/1.1\r\ncontent-length: 5\r\n\r\nhelloEXTRA";
        let mut r = BufReader::new(raw.as_bytes());
        let h = read_head(&mut r).unwrap().unwrap();
        assert_eq!(read_body(&mut r, &h, 16).unwrap(), b"hello");
        assert!(matches!(read_body(&mut r, &h, 4), Err(ServeError::PayloadTooLarge { .. })));

        let truncated = "POST / HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort";
        let mut r = BufReader::new(truncated.as_bytes());
        let h = read_head(&mut r).unwrap().unwrap();
        assert!(matches!(read_body(&mut r, &h, 64), Err(ServeError::BadRequest { .. })));

        let chunked = "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        let mut r = BufReader::new(chunked.as_bytes());
        let h = read_head(&mut r).unwrap().unwrap();
        assert!(matches!(read_body(&mut r, &h, 64), Err(ServeError::BadRequest { .. })));
    }

    #[test]
    fn responses_frame_correctly() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::ok("{\"a\":1}".into())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));

        let mut out = Vec::new();
        let shed = ServeError::QueueFull { capacity: 8 };
        write_response(&mut out, &Response::from_error(&shed)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("\"kind\":\"queue_full\""));
    }
}
