//! The bounded session table behind the streaming HTTP routes.
//!
//! A session is one client's live video stream: a [`StreamState`] parked
//! server-side between chunk uploads, plus the bookkeeping that makes a
//! fleet of them safe to hold — a **hard capacity** (the next create past
//! it is a typed, retryable 429), an **idle TTL** (streams whose clients
//! vanished are evicted lazily on the next table access, so an abandoned
//! camera feed cannot hold a slot forever), and **close-once semantics**
//! (a closed entry still queued inside the batch worker answers
//! [`ServeError::UnknownSession`] instead of resurrecting).
//!
//! The table hands out `Arc<SessionEntry>` handles; the per-session
//! [`StreamState`] sits behind its own mutex, locked only by the batch
//! worker while staging/encoding and never across a network read — a slow
//! client can stall its own stream, not the table.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tsdx_core::{ModelConfig, StreamState};

use crate::error::ServeError;
use crate::stats::ServeStats;

/// Tuning for the session table.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Most simultaneously live sessions; the next create is a 429.
    pub max_sessions: usize,
    /// A session untouched this long is evicted on the next table access.
    pub idle_ttl: Duration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { max_sessions: 256, idle_ttl: Duration::from_secs(120) }
    }
}

/// One live streaming session: its id, its stream state, and its activity
/// clock.
pub struct SessionEntry {
    id: u64,
    /// The per-stream extraction state. Locked by the batch worker for
    /// staging, batched encodes, and window readout.
    pub(crate) state: Mutex<StreamState>,
    /// Last time a client request touched this session.
    last_active: Mutex<Instant>,
    /// Set on close/evict so copies still queued in the batch worker
    /// answer `UnknownSession` instead of writing into a dead stream.
    closed: AtomicBool,
}

impl SessionEntry {
    /// The table-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the session was closed or evicted.
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    fn touch(&self) {
        *self.last_active.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
    }

    fn idle_since(&self, now: Instant) -> Duration {
        now.saturating_duration_since(*self.last_active.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl std::fmt::Debug for SessionEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionEntry")
            .field("id", &self.id)
            .field("closed", &self.is_closed())
            .finish_non_exhaustive()
    }
}

/// The bounded, TTL-swept table of live sessions.
#[derive(Debug)]
pub struct SessionManager {
    cfg: SessionConfig,
    table: Mutex<HashMap<u64, Arc<SessionEntry>>>,
    next_id: AtomicU64,
    stats: Arc<ServeStats>,
}

impl SessionManager {
    /// An empty table with the given bounds, feeding `stats`.
    pub fn new(cfg: SessionConfig, stats: Arc<ServeStats>) -> Self {
        SessionManager { cfg, table: Mutex::new(HashMap::new()), next_id: AtomicU64::new(1), stats }
    }

    /// The configured bounds.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.lock_table().len()
    }

    /// Whether no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens a new session and returns its entry.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionLimit`] when every slot holds a live stream
    /// (idle sessions are swept first, so a full table means genuinely
    /// concurrent streams).
    pub fn create(&self, model_cfg: ModelConfig) -> Result<Arc<SessionEntry>, ServeError> {
        let mut table = self.lock_table();
        self.sweep_idle_locked(&mut table);
        // Fault injection: the table reports exhaustion without a test
        // having to fill hundreds of real slots.
        #[cfg(feature = "fault-inject")]
        if tsdx_tensor::faults::take_session_table_full() {
            ServeStats::inc(&self.stats.shed_sessions);
            return Err(ServeError::SessionLimit { capacity: self.cfg.max_sessions });
        }
        if table.len() >= self.cfg.max_sessions {
            ServeStats::inc(&self.stats.shed_sessions);
            return Err(ServeError::SessionLimit { capacity: self.cfg.max_sessions });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(SessionEntry {
            id,
            state: Mutex::new(StreamState::new(model_cfg)),
            last_active: Mutex::new(Instant::now()),
            closed: AtomicBool::new(false),
        });
        table.insert(id, Arc::clone(&entry));
        ServeStats::inc(&self.stats.sessions_opened);
        self.stats.active_sessions.store(table.len() as u64, Ordering::Relaxed);
        Ok(entry)
    }

    /// Looks up a live session and refreshes its activity clock.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] when no live session has this id.
    pub fn get(&self, id: u64) -> Result<Arc<SessionEntry>, ServeError> {
        let mut table = self.lock_table();
        self.sweep_idle_locked(&mut table);
        let entry = table.get(&id).ok_or(ServeError::UnknownSession { id })?;
        entry.touch();
        Ok(Arc::clone(entry))
    }

    /// Closes a session, freeing its slot immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] when no live session has this id.
    pub fn close(&self, id: u64) -> Result<(), ServeError> {
        let mut table = self.lock_table();
        let entry = table.remove(&id).ok_or(ServeError::UnknownSession { id })?;
        entry.closed.store(true, Ordering::SeqCst);
        ServeStats::inc(&self.stats.sessions_closed);
        self.stats.active_sessions.store(table.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Evicts every session idle past the TTL (also runs lazily inside
    /// [`create`](Self::create) and [`get`](Self::get)).
    pub fn sweep_idle(&self) {
        let mut table = self.lock_table();
        self.sweep_idle_locked(&mut table);
    }

    fn sweep_idle_locked(&self, table: &mut HashMap<u64, Arc<SessionEntry>>) {
        let now = Instant::now();
        let before = table.len();
        table.retain(|_, entry| {
            let keep = entry.idle_since(now) < self.cfg.idle_ttl;
            if !keep {
                entry.closed.store(true, Ordering::SeqCst);
            }
            keep
        });
        let evicted = before - table.len();
        if evicted > 0 {
            self.stats.evicted_sessions.fetch_add(evicted as u64, Ordering::Relaxed);
            self.stats.active_sessions.store(table.len() as u64, Ordering::Relaxed);
        }
    }

    fn lock_table(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<SessionEntry>>> {
        // Entries are self-contained; recover the table instead of
        // poisoning every later request.
        self.table.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdx_core::ModelConfig;

    fn tiny_cfg() -> ModelConfig {
        ModelConfig {
            frames: 4,
            height: 16,
            width: 16,
            tubelet_t: 2,
            patch: 8,
            dim: 16,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            dropout: 0.0,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn create_get_close_round_trip() {
        let stats = Arc::new(ServeStats::default());
        let m = SessionManager::new(SessionConfig::default(), Arc::clone(&stats));
        let a = m.create(tiny_cfg()).unwrap();
        let b = m.create(tiny_cfg()).unwrap();
        assert_ne!(a.id(), b.id(), "ids are unique");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(a.id()).unwrap().id(), a.id());
        m.close(a.id()).unwrap();
        assert!(a.is_closed(), "held handles observe the close");
        assert!(matches!(m.get(a.id()), Err(ServeError::UnknownSession { .. })));
        assert!(matches!(m.close(a.id()), Err(ServeError::UnknownSession { .. })));
        assert_eq!(m.len(), 1);
        assert_eq!(ServeStats::get(&stats.sessions_opened), 2);
        assert_eq!(ServeStats::get(&stats.sessions_closed), 1);
        assert_eq!(ServeStats::get(&stats.active_sessions), 1);
    }

    #[test]
    fn capacity_is_a_typed_retryable_shed() {
        let stats = Arc::new(ServeStats::default());
        let cfg = SessionConfig { max_sessions: 2, ..SessionConfig::default() };
        let m = SessionManager::new(cfg, stats);
        let a = m.create(tiny_cfg()).unwrap();
        let _b = m.create(tiny_cfg()).unwrap();
        let e = m.create(tiny_cfg()).unwrap_err();
        assert!(matches!(e, ServeError::SessionLimit { capacity: 2 }), "{e:?}");
        assert!(e.retryable());
        // Closing one frees the slot.
        m.close(a.id()).unwrap();
        assert!(m.create(tiny_cfg()).is_ok());
    }

    #[test]
    fn idle_sessions_are_evicted_on_access() {
        let stats = Arc::new(ServeStats::default());
        let cfg = SessionConfig { idle_ttl: Duration::from_millis(0), max_sessions: 8 };
        let m = SessionManager::new(cfg, Arc::clone(&stats));
        let a = m.create(tiny_cfg()).unwrap();
        // TTL 0: any later access sweeps it.
        assert!(matches!(m.get(a.id()), Err(ServeError::UnknownSession { .. })));
        assert!(a.is_closed(), "evicted entries read as closed");
        assert_eq!(ServeStats::get(&stats.evicted_sessions), 1);
        assert_eq!(ServeStats::get(&stats.active_sessions), 0);
    }
}
