//! Server-lifetime counters and the `/stats` SLO snapshot.
//!
//! Two sources feed the endpoint. Cheap process-wide **counters** (atomics
//! here) record every admission decision — accepted, shed, rejected,
//! panicking — from whichever thread made it. **Latency distributions**
//! come from the PR 4 metrics layer: the batch worker runs under a
//! [`tsdx_tensor::metrics::scope`], so the per-stage histograms
//! (`stage/tubelet_embed` → `stage/decode`, plus `stage/serve_batch`)
//! accumulate there and are published after every batch for `/stats` to
//! read without cross-thread metric plumbing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tsdx_tensor::metrics::Snapshot;

/// Monotonic counters over the server's lifetime. All relaxed: they are
/// observability, not synchronization.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests admitted into the batch queue.
    pub accepted: AtomicU64,
    /// Admitted requests answered with a scenario (200).
    pub completed: AtomicU64,
    /// Requests shed at admission with 429 (queue full).
    pub shed_queue_full: AtomicU64,
    /// Requests shed with 503 before their forward (deadline unmakeable).
    pub shed_deadline: AtomicU64,
    /// Connections turned away at the connection cap (503).
    pub shed_busy: AtomicU64,
    /// Requests rejected 4xx (malformed HTTP, bad JSON, invalid video).
    pub rejected: AtomicU64,
    /// Handler or batch-forward panics captured (500s served instead of a
    /// crash).
    pub panics_caught: AtomicU64,
    /// Batched forwards executed.
    pub batches: AtomicU64,
    /// Batched forwards that ran on the int8 plane.
    pub batches_int8: AtomicU64,
    /// Batched forwards the pressure valve degraded to int8.
    pub batches_degraded: AtomicU64,
    /// Clips summed over all executed batches (mean batch size =
    /// `batched_clips / batches`).
    pub batched_clips: AtomicU64,
    /// Current admission-queue depth (gauge, updated on enqueue/drain).
    pub queue_depth: AtomicU64,
    /// Streaming sessions opened over the server's lifetime.
    pub sessions_opened: AtomicU64,
    /// Sessions closed by an explicit `DELETE`.
    pub sessions_closed: AtomicU64,
    /// Sessions evicted after their idle TTL.
    pub evicted_sessions: AtomicU64,
    /// Session creates shed at the table capacity (429).
    pub shed_sessions: AtomicU64,
    /// Currently live sessions (gauge, updated on create/close/evict).
    pub active_sessions: AtomicU64,
    /// Stream chunk pushes answered successfully.
    pub stream_pushes: AtomicU64,
    /// Cross-stream batched group-encode forwards executed.
    pub mux_batches: AtomicU64,
    /// Time groups summed over all batched group encodes.
    pub mux_groups: AtomicU64,
    /// Cross-stream batch-occupancy histogram: how many streams shared
    /// each group-encode forward, bucketed 1 / 2 / 3–4 / 5–8 / 9–16 / 17+.
    pub mux_occupancy: [AtomicU64; 6],
    /// Latest published worker-side metrics snapshot.
    worker_metrics: Mutex<Snapshot>,
}

/// JSON keys for the occupancy buckets, in order.
const OCCUPANCY_KEYS: [&str; 6] = ["1", "2", "3_4", "5_8", "9_16", "17_plus"];

impl ServeStats {
    /// Bumps `c` by one.
    pub fn inc(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads `c`.
    pub fn get(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Records one cross-stream batched group encode spanning `streams`
    /// concurrent streams and `groups` time groups.
    pub fn record_mux_batch(&self, streams: usize, groups: usize) {
        ServeStats::inc(&self.mux_batches);
        self.mux_groups.fetch_add(groups as u64, Ordering::Relaxed);
        let bucket = match streams {
            0..=1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            _ => 5,
        };
        ServeStats::inc(&self.mux_occupancy[bucket]);
    }

    /// Publishes the batch worker's accumulated metrics for `/stats`.
    pub fn publish_worker_metrics(&self, snap: Snapshot) {
        *self.worker_metrics.lock().unwrap_or_else(|e| e.into_inner()) = snap;
    }

    /// The latest published worker metrics.
    pub fn worker_metrics(&self) -> Snapshot {
        self.worker_metrics.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The `/stats` JSON document: admission counters plus p50/p99 (µs) of
    /// every worker-side stage histogram.
    pub fn to_json(&self, active_plane: &str, ready: bool) -> String {
        let snap = self.worker_metrics();
        let mut stages = String::new();
        for (key, h) in &snap.hists {
            if !stages.is_empty() {
                stages.push(',');
            }
            stages.push_str(&format!(
                "\"{}\":{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{}}}",
                crate::json::escape(key),
                h.count,
                h.mean_ns() / 1_000,
                h.quantile_ns(0.5) / 1_000,
                h.quantile_ns(0.99) / 1_000,
            ));
        }
        let mut occupancy = String::new();
        for (key, bucket) in OCCUPANCY_KEYS.iter().zip(&self.mux_occupancy) {
            if !occupancy.is_empty() {
                occupancy.push(',');
            }
            occupancy.push_str(&format!("\"{key}\":{}", Self::get(bucket)));
        }
        format!(
            concat!(
                "{{\"ready\":{ready},\"plane\":\"{plane}\",",
                "\"accepted\":{accepted},\"completed\":{completed},",
                "\"shed_queue_full\":{sqf},\"shed_deadline\":{sd},\"shed_busy\":{sb},",
                "\"rejected\":{rej},\"panics_caught\":{pan},",
                "\"batches\":{batches},\"batches_int8\":{b8},\"batches_degraded\":{bd},",
                "\"batched_clips\":{clips},\"queue_depth\":{depth},",
                "\"active_sessions\":{active},\"sessions_opened\":{opened},",
                "\"sessions_closed\":{closed_n},\"evicted_sessions\":{evicted},",
                "\"shed_sessions\":{shed_s},\"stream_pushes\":{pushes},",
                "\"mux\":{{\"batches\":{mux_b},\"groups\":{mux_g},",
                "\"occupancy\":{{{occupancy}}}}},",
                "\"cache\":{{\"group_hits\":{c_hit},\"group_misses\":{c_miss},",
                "\"window_hits\":{w_hit}}},",
                "\"stages\":{{{stages}}}}}"
            ),
            ready = ready,
            active = Self::get(&self.active_sessions),
            opened = Self::get(&self.sessions_opened),
            closed_n = Self::get(&self.sessions_closed),
            evicted = Self::get(&self.evicted_sessions),
            shed_s = Self::get(&self.shed_sessions),
            pushes = Self::get(&self.stream_pushes),
            mux_b = Self::get(&self.mux_batches),
            mux_g = Self::get(&self.mux_groups),
            occupancy = occupancy,
            c_hit = snap.counter("stage/cache_hit"),
            c_miss = snap.counter("stage/cache_miss"),
            w_hit = snap.counter("stage/window_hit"),
            plane = active_plane,
            accepted = Self::get(&self.accepted),
            completed = Self::get(&self.completed),
            sqf = Self::get(&self.shed_queue_full),
            sd = Self::get(&self.shed_deadline),
            sb = Self::get(&self.shed_busy),
            rej = Self::get(&self.rejected),
            pan = Self::get(&self.panics_caught),
            batches = Self::get(&self.batches),
            b8 = Self::get(&self.batches_int8),
            bd = Self::get(&self.batches_degraded),
            clips = Self::get(&self.batched_clips),
            depth = Self::get(&self.queue_depth),
            stages = stages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_snapshot_carries_counters_and_stages() {
        let stats = ServeStats::default();
        ServeStats::inc(&stats.accepted);
        ServeStats::inc(&stats.shed_queue_full);
        let scope = tsdx_tensor::metrics::scope();
        tsdx_tensor::metrics::stage("stage/serve_batch", || std::hint::black_box(1 + 1));
        stats.publish_worker_metrics(scope.snapshot());
        drop(scope);
        stats.record_mux_batch(3, 7);
        stats.record_mux_batch(1, 2);
        let j = stats.to_json("f32", true);
        assert!(j.contains("\"accepted\":1"), "{j}");
        assert!(j.contains("\"shed_queue_full\":1"), "{j}");
        assert!(j.contains("\"stage/serve_batch\""), "{j}");
        assert!(j.contains("\"ready\":true"), "{j}");
        assert!(j.contains("\"active_sessions\":0"), "{j}");
        assert!(j.contains("\"mux\":{\"batches\":2,\"groups\":9"), "{j}");
        assert!(j.contains("\"3_4\":1"), "{j}");
        assert!(crate::json::parse(j.as_bytes()).is_ok(), "stats must be valid JSON: {j}");
    }

    #[test]
    fn occupancy_buckets_split_at_the_documented_edges() {
        let stats = ServeStats::default();
        for streams in [1, 2, 3, 4, 5, 8, 9, 16, 17, 40] {
            stats.record_mux_batch(streams, streams);
        }
        let got: Vec<u64> = stats.mux_occupancy.iter().map(ServeStats::get).collect();
        assert_eq!(got, vec![1, 1, 2, 2, 2, 2]);
    }
}
