//! Server-lifetime counters and the `/stats` SLO snapshot.
//!
//! Two sources feed the endpoint. Cheap process-wide **counters** (atomics
//! here) record every admission decision — accepted, shed, rejected,
//! panicking — from whichever thread made it. **Latency distributions**
//! come from the PR 4 metrics layer: the batch worker runs under a
//! [`tsdx_tensor::metrics::scope`], so the per-stage histograms
//! (`stage/tubelet_embed` → `stage/decode`, plus `stage/serve_batch`)
//! accumulate there and are published after every batch for `/stats` to
//! read without cross-thread metric plumbing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tsdx_tensor::metrics::Snapshot;

/// Monotonic counters over the server's lifetime. All relaxed: they are
/// observability, not synchronization.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests admitted into the batch queue.
    pub accepted: AtomicU64,
    /// Admitted requests answered with a scenario (200).
    pub completed: AtomicU64,
    /// Requests shed at admission with 429 (queue full).
    pub shed_queue_full: AtomicU64,
    /// Requests shed with 503 before their forward (deadline unmakeable).
    pub shed_deadline: AtomicU64,
    /// Connections turned away at the connection cap (503).
    pub shed_busy: AtomicU64,
    /// Requests rejected 4xx (malformed HTTP, bad JSON, invalid video).
    pub rejected: AtomicU64,
    /// Handler or batch-forward panics captured (500s served instead of a
    /// crash).
    pub panics_caught: AtomicU64,
    /// Batched forwards executed.
    pub batches: AtomicU64,
    /// Batched forwards that ran on the int8 plane.
    pub batches_int8: AtomicU64,
    /// Batched forwards the pressure valve degraded to int8.
    pub batches_degraded: AtomicU64,
    /// Clips summed over all executed batches (mean batch size =
    /// `batched_clips / batches`).
    pub batched_clips: AtomicU64,
    /// Current admission-queue depth (gauge, updated on enqueue/drain).
    pub queue_depth: AtomicU64,
    /// Latest published worker-side metrics snapshot.
    worker_metrics: Mutex<Snapshot>,
}

impl ServeStats {
    /// Bumps `c` by one.
    pub fn inc(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads `c`.
    pub fn get(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Publishes the batch worker's accumulated metrics for `/stats`.
    pub fn publish_worker_metrics(&self, snap: Snapshot) {
        *self.worker_metrics.lock().unwrap_or_else(|e| e.into_inner()) = snap;
    }

    /// The latest published worker metrics.
    pub fn worker_metrics(&self) -> Snapshot {
        self.worker_metrics.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The `/stats` JSON document: admission counters plus p50/p99 (µs) of
    /// every worker-side stage histogram.
    pub fn to_json(&self, active_plane: &str, ready: bool) -> String {
        let snap = self.worker_metrics();
        let mut stages = String::new();
        for (key, h) in &snap.hists {
            if !stages.is_empty() {
                stages.push(',');
            }
            stages.push_str(&format!(
                "\"{}\":{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{}}}",
                crate::json::escape(key),
                h.count,
                h.mean_ns() / 1_000,
                h.quantile_ns(0.5) / 1_000,
                h.quantile_ns(0.99) / 1_000,
            ));
        }
        format!(
            concat!(
                "{{\"ready\":{ready},\"plane\":\"{plane}\",",
                "\"accepted\":{accepted},\"completed\":{completed},",
                "\"shed_queue_full\":{sqf},\"shed_deadline\":{sd},\"shed_busy\":{sb},",
                "\"rejected\":{rej},\"panics_caught\":{pan},",
                "\"batches\":{batches},\"batches_int8\":{b8},\"batches_degraded\":{bd},",
                "\"batched_clips\":{clips},\"queue_depth\":{depth},",
                "\"stages\":{{{stages}}}}}"
            ),
            ready = ready,
            plane = active_plane,
            accepted = Self::get(&self.accepted),
            completed = Self::get(&self.completed),
            sqf = Self::get(&self.shed_queue_full),
            sd = Self::get(&self.shed_deadline),
            sb = Self::get(&self.shed_busy),
            rej = Self::get(&self.rejected),
            pan = Self::get(&self.panics_caught),
            batches = Self::get(&self.batches),
            b8 = Self::get(&self.batches_int8),
            bd = Self::get(&self.batches_degraded),
            clips = Self::get(&self.batched_clips),
            depth = Self::get(&self.queue_depth),
            stages = stages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_snapshot_carries_counters_and_stages() {
        let stats = ServeStats::default();
        ServeStats::inc(&stats.accepted);
        ServeStats::inc(&stats.shed_queue_full);
        let scope = tsdx_tensor::metrics::scope();
        tsdx_tensor::metrics::stage("stage/serve_batch", || std::hint::black_box(1 + 1));
        stats.publish_worker_metrics(scope.snapshot());
        drop(scope);
        let j = stats.to_json("f32", true);
        assert!(j.contains("\"accepted\":1"), "{j}");
        assert!(j.contains("\"shed_queue_full\":1"), "{j}");
        assert!(j.contains("\"stage/serve_batch\""), "{j}");
        assert!(j.contains("\"ready\":true"), "{j}");
        assert!(crate::json::parse(j.as_bytes()).is_ok(), "stats must be valid JSON: {j}");
    }
}
