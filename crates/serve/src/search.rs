//! The scenario-search service behind `POST /search`.
//!
//! A [`SearchService`] pairs a [`tsdx_index::VectorIndex`] with the
//! scenarios it was built from, so a hit comes back as `(id, similarity,
//! canonical SDL text)` rather than a bare row number. The service is
//! immutable once handed to the server — queries are read-only and safe to
//! answer from any connection thread concurrently.

use tsdx_index::{IndexError, VectorIndex};
use tsdx_sdl::Scenario;

use crate::json;

/// Most hits one query may request; past this the request is shed as a
/// `400` before any scan work.
pub const MAX_SEARCH_K: usize = 1000;

/// One search answer: a stored scenario and how similar it is to the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Dense insertion-order id of the stored scenario.
    pub id: u64,
    /// Cosine similarity to the query (embeddings are unit-norm, so this
    /// is the plain dot product).
    pub similarity: f32,
    /// Canonical SDL text of the stored scenario.
    pub sdl: String,
}

/// A searchable corpus: the vector index plus the scenarios behind the ids.
#[derive(Debug, Default, Clone)]
pub struct SearchService {
    index: VectorIndex,
    scenarios: Vec<Scenario>,
}

impl SearchService {
    /// Builds a service over `scenarios`, embedding each in insertion
    /// order (ids are dense from 0).
    pub fn build(scenarios: impl IntoIterator<Item = Scenario>) -> SearchService {
        let mut svc = SearchService::default();
        for s in scenarios {
            svc.insert(s);
        }
        svc
    }

    /// Adds one scenario, returning its id.
    pub fn insert(&mut self, scenario: Scenario) -> u64 {
        let id = self
            .index
            .push_scenario(&scenario)
            .expect("default VectorIndex always matches EMBED_DIM");
        self.scenarios.push(scenario);
        id
    }

    /// Number of indexed scenarios.
    pub fn len(&self) -> u64 {
        self.index.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The `k` most similar stored scenarios to `query`, best first.
    ///
    /// # Errors
    ///
    /// Propagates [`IndexError`] from the underlying scan (a dim mismatch
    /// is impossible by construction, so in practice this is infallible).
    pub fn query(&self, query: &Scenario, k: usize) -> Result<Vec<Hit>, IndexError> {
        let hits = self.index.query_scenario(query, k)?;
        Ok(hits
            .into_iter()
            .map(|(id, similarity)| Hit {
                id,
                similarity,
                sdl: self.scenarios[id as usize].to_string(),
            })
            .collect())
    }
}

/// Renders hits as a JSON array, defensively mapping a non-finite
/// similarity (impossible for unit-norm embeddings, but the wire format
/// must never emit invalid JSON) to `null`.
pub(crate) fn hits_to_json(hits: &[Hit]) -> String {
    let mut out = String::from("[");
    for (i, h) in hits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"id\":{},\"similarity\":", h.id));
        if h.similarity.is_finite() {
            out.push_str(&format!("{}", h.similarity));
        } else {
            out.push_str("null");
        }
        out.push_str(&format!(",\"sdl\":\"{}\"}}", json::escape(&h.sdl)));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdx_sdl::parse_scenario;

    fn svc() -> SearchService {
        SearchService::build(
            [
                "ego cruise; vehicle leading ahead; road straight",
                "ego decelerate-to-stop; pedestrian crossing; road intersection",
                "ego turn-left; road intersection",
            ]
            .iter()
            .map(|t| parse_scenario(t).expect("valid SDL")),
        )
    }

    #[test]
    fn query_returns_self_first_with_sdl_text() {
        let svc = svc();
        let q = parse_scenario("ego turn-left; road intersection").expect("valid SDL");
        let hits = svc.query(&q, 2).expect("query");
        assert_eq!(hits[0].id, 2);
        assert!((hits[0].similarity - 1.0).abs() < 1e-5);
        assert_eq!(hits[0].sdl, "ego turn-left; road intersection");
    }

    #[test]
    fn hits_serialize_to_valid_json() {
        let rendered = hits_to_json(&[
            Hit { id: 0, similarity: 0.5, sdl: "ego cruise; road straight".into() },
            Hit { id: 1, similarity: f32::NAN, sdl: "quote \" here".into() },
        ]);
        let parsed = json::parse(rendered.as_bytes()).expect("valid JSON");
        let arr = parsed.as_arr().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].get("similarity"), Some(&json::Json::Null));
    }

    #[test]
    fn empty_service_answers_empty() {
        let svc = SearchService::default();
        let q = parse_scenario("ego cruise; road straight").expect("valid SDL");
        assert!(svc.query(&q, 5).expect("query").is_empty());
        assert!(svc.is_empty());
        assert_eq!(svc.len(), 0);
    }
}
