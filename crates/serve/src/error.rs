//! The typed request-failure taxonomy and its stable HTTP mapping.
//!
//! Every way a request can fail has exactly one [`ServeError`] variant, one
//! stable status code, and one stable machine-readable `kind` string —
//! clients can dispatch on either without parsing prose. The mapping is
//! pinned by `tests/http_errors.rs`; changing a code or kind is a breaking
//! API change.

use std::error::Error;
use std::fmt;

use tsdx_core::ExtractError;

/// A failed request, as seen by one client.
///
/// The split mirrors the server's decision points: parse-time rejections
/// (`BadRequest`..`PayloadTooLarge`), admission-control sheds (`QueueFull`,
/// `Busy`, `ShuttingDown`), deadline enforcement (`DeadlineExceeded`),
/// input validation (`InvalidInput`), and the never-crash backstop
/// (`Internal`). Load sheds are **pre-acceptance**: a shed request has done
/// no model work and holds no queue slot, so retrying is always safe.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request line, headers, or body could not be parsed (400).
    BadRequest {
        /// What was malformed.
        detail: String,
    },
    /// No route matches the request path (404).
    NotFound {
        /// The path that matched nothing.
        path: String,
    },
    /// The path exists but not for this method (405).
    MethodNotAllowed {
        /// The offending method.
        method: String,
        /// The path it was tried on.
        path: String,
    },
    /// The client took longer than the read timeout to deliver its request
    /// (408). Slow clients cannot hold a handler hostage.
    ReadTimeout,
    /// The declared or actual body size exceeds the server limit (413).
    PayloadTooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The video failed model-side validation (422); wraps the typed
    /// [`ExtractError`] so every variant keeps its identity on the wire.
    InvalidInput(ExtractError),
    /// The admission queue is full (429) — the canonical backpressure
    /// signal. Retry after a backoff.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The session table is full (429): every slot holds a live stream.
    /// Retry after a backoff, or after closing a stream you own.
    SessionLimit {
        /// The configured session capacity.
        capacity: usize,
    },
    /// No live session has this id (404): never created, already closed,
    /// or evicted after its idle TTL.
    UnknownSession {
        /// The id that matched nothing.
        id: u64,
    },
    /// The connection cap is reached (503): the listener accepted, said so,
    /// and hung up without reading the request.
    Busy {
        /// The configured connection cap.
        limit: usize,
    },
    /// The request cannot make its deadline (503): rejected *before* the
    /// batch forward rather than after wasting one.
    DeadlineExceeded {
        /// Milliseconds of budget the request arrived with.
        budget_ms: u64,
    },
    /// The server is draining for shutdown and admits no new work (503).
    ShuttingDown,
    /// A handler panicked or another invariant broke (500). The connection
    /// closes; the listener and every other connection are unaffected.
    Internal {
        /// Diagnostic detail (panic payload text).
        detail: String,
    },
}

impl ServeError {
    /// The stable HTTP status code for this failure.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest { .. } => 400,
            ServeError::NotFound { .. } => 404,
            ServeError::MethodNotAllowed { .. } => 405,
            ServeError::ReadTimeout => 408,
            ServeError::PayloadTooLarge { .. } => 413,
            ServeError::InvalidInput(_) => 422,
            ServeError::QueueFull { .. } | ServeError::SessionLimit { .. } => 429,
            ServeError::UnknownSession { .. } => 404,
            ServeError::Busy { .. } | ServeError::DeadlineExceeded { .. } => 503,
            ServeError::ShuttingDown => 503,
            ServeError::Internal { .. } => 500,
        }
    }

    /// The stable machine-readable discriminant for this failure. For
    /// `InvalidInput` this is the [`extract_error_kind`] of the wrapped
    /// validation error, so clients see *which* way the video was bad.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::NotFound { .. } => "not_found",
            ServeError::MethodNotAllowed { .. } => "method_not_allowed",
            ServeError::ReadTimeout => "read_timeout",
            ServeError::PayloadTooLarge { .. } => "payload_too_large",
            ServeError::InvalidInput(e) => extract_error_kind(e),
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::SessionLimit { .. } => "session_limit",
            ServeError::UnknownSession { .. } => "unknown_session",
            ServeError::Busy { .. } => "busy",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Internal { .. } => "internal",
        }
    }

    /// Whether the client may blindly retry (sheds and timeouts: the server
    /// did no work) versus must change the request first (4xx validation).
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ServeError::QueueFull { .. }
                | ServeError::SessionLimit { .. }
                | ServeError::Busy { .. }
                | ServeError::DeadlineExceeded { .. }
                | ServeError::ShuttingDown
                | ServeError::ReadTimeout
        )
    }

    /// The JSON error body sent to the client:
    /// `{"error":{"kind":...,"status":...,"retryable":...,"detail":...}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"error\":{{\"kind\":\"{}\",\"status\":{},\"retryable\":{},\"detail\":\"{}\"}}}}",
            self.kind(),
            self.status(),
            self.retryable(),
            crate::json::escape(&self.to_string()),
        )
    }
}

/// The stable wire `kind` for each [`ExtractError`] variant.
///
/// Kept exhaustive over today's variants with a deliberate fallback:
/// `ExtractError` is `#[non_exhaustive]`, and a new variant must degrade to
/// a generic-but-still-422 kind rather than break the server.
pub fn extract_error_kind(e: &ExtractError) -> &'static str {
    match e {
        ExtractError::BadRank { .. } => "bad_rank",
        ExtractError::BadShape { .. } => "bad_shape",
        ExtractError::NonFinite { .. } => "non_finite",
        ExtractError::Empty => "empty",
        ExtractError::TooShort { .. } => "too_short",
        ExtractError::BadFrameShape { .. } => "bad_frame_shape",
        _ => "invalid_input",
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest { detail } => write!(f, "malformed request: {detail}"),
            ServeError::NotFound { path } => write!(f, "no route for {path}"),
            ServeError::MethodNotAllowed { method, path } => {
                write!(f, "{method} is not allowed on {path}")
            }
            ServeError::ReadTimeout => write!(f, "client was too slow delivering the request"),
            ServeError::PayloadTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            ServeError::InvalidInput(e) => write!(f, "invalid video: {e}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue is full ({capacity} waiting); retry with backoff")
            }
            ServeError::SessionLimit { capacity } => {
                write!(f, "session table is full ({capacity} live streams); retry with backoff")
            }
            ServeError::UnknownSession { id } => {
                write!(f, "no live session {id} (closed, evicted, or never created)")
            }
            ServeError::Busy { limit } => {
                write!(f, "connection limit ({limit}) reached; retry with backoff")
            }
            ServeError::DeadlineExceeded { budget_ms } => {
                write!(f, "cannot finish within the {budget_ms}ms deadline; rejected unstarted")
            }
            ServeError::ShuttingDown => write!(f, "server is draining for shutdown"),
            ServeError::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::InvalidInput(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExtractError> for ServeError {
    fn from(e: ExtractError) -> Self {
        ServeError::InvalidInput(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_errors_are_retryable_and_validation_is_not() {
        assert!(ServeError::QueueFull { capacity: 4 }.retryable());
        assert!(ServeError::SessionLimit { capacity: 4 }.retryable());
        assert!(!ServeError::UnknownSession { id: 9 }.retryable());
        assert!(ServeError::ShuttingDown.retryable());
        assert!(!ServeError::InvalidInput(ExtractError::Empty).retryable());
        assert!(!ServeError::BadRequest { detail: "x".into() }.retryable());
    }

    #[test]
    fn json_bodies_carry_kind_and_status() {
        let e = ServeError::DeadlineExceeded { budget_ms: 40 };
        let j = e.to_json();
        assert!(j.contains("\"kind\":\"deadline_exceeded\""), "{j}");
        assert!(j.contains("\"status\":503"), "{j}");
        assert!(j.contains("\"retryable\":true"), "{j}");
    }
}
