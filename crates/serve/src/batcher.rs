//! The dynamic micro-batching queue between connection handlers and the
//! model.
//!
//! Concurrent requests land in one bounded **mixed** queue; a single worker
//! thread drains up to `max_batch` of them at a time. Two job kinds share
//! the queue and its admission/deadline/degrade machinery:
//!
//! * **One-shot clips** (`POST /v1/extract`): coalesced into one batched
//!   encoder forward ([`ScenarioExtractor::extract_window_batch`]).
//! * **Stream chunk pushes** (`POST /sessions/<id>/frames`): each chunk is
//!   staged into its session's [`StreamState`], then every newly completed
//!   time group across *all* streams in the round is encoded in **one**
//!   cross-stream [`tsdx_core::encode_staged`] forward — N concurrent
//!   streams completing a group pay one spatial forward at batch N instead
//!   of N forwards at batch 1 (bit-identical per group, by the stage's row
//!   independence).
//!
//! The robustness rules:
//!
//! * **Bounded admission.** [`Batcher::submit`] / [`Batcher::submit_stream`]
//!   shed with a typed [`ServeError::QueueFull`] the moment the queue is at
//!   capacity — the server never accepts work it has no room for.
//! * **Deadline budget propagation.** Each entry carries its deadline into
//!   the worker; before a forward, entries that cannot finish within an
//!   EWMA-estimated cost (per clip for one-shots, per group for streams)
//!   are answered [`ServeError::DeadlineExceeded`] instead of wasting model
//!   time.
//! * **Degrade under pressure.** When the queue depth at drain time crosses
//!   `degrade_depth`, the whole round — clip forward and group encodes —
//!   runs on the int8 plane ([`Precision::Int8`]). A session whose window
//!   readout flips plane drops its temporal K/V cache instead of mixing
//!   planes (see [`tsdx_core::StreamState`]).
//! * **Panic containment.** Both forwards run under `catch_unwind`; a panic
//!   answers the affected jobs with a typed 500 and the worker keeps
//!   serving. A panic inside the group encode leaves staged groups staged —
//!   the next push simply re-encodes them.
//! * **Drain, never drop.** [`Batcher::drain`] stops admission, then the
//!   worker answers everything still queued — clip or stream — before
//!   exiting.
//! * **FIFO per session.** At most one push per session joins a round, and
//!   queue order is preserved, so replies report exactly the groups that
//!   push completed.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tsdx_core::precision::{self, Precision};
use tsdx_core::ScenarioExtractor;
use tsdx_sdl::Scenario;
use tsdx_tensor::{metrics, Tensor};

use crate::error::ServeError;
use crate::sessions::SessionEntry;
use crate::stats::ServeStats;

/// Tuning for the batching queue.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Most requests that may wait in the admission queue; one more is a
    /// 429.
    pub queue_capacity: usize,
    /// Most jobs (clips + stream pushes) coalesced into one drain round.
    pub max_batch: usize,
    /// Queue depth (measured when the worker starts a drain) at or above
    /// which batches run int8. `None` disables pressure degradation.
    pub degrade_depth: Option<usize>,
    /// Numeric plane for unpressured batches; `None` follows the process
    /// `TSDX_PRECISION` dial.
    pub precision: Option<Precision>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { queue_capacity: 64, max_batch: 8, degrade_depth: Some(32), precision: None }
    }
}

/// A successful extraction, annotated with how it was served.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The decoded scenario.
    pub scenario: Scenario,
    /// Numeric plane the batch ran on.
    pub plane: Precision,
    /// Time spent waiting in the queue, µs.
    pub queued_us: u64,
    /// How many clips shared the forward.
    pub batch_size: usize,
}

/// What a handler gets back for one submitted one-shot request.
pub type BatchResult = Result<Extraction, ServeError>;

/// A successful stream chunk push, annotated with how it was served.
#[derive(Debug, Clone)]
pub struct StreamAnswer {
    /// The session the chunk landed in.
    pub session: u64,
    /// Time groups this push completed (and the round encoded).
    pub groups_new: usize,
    /// Total frames the session has accepted.
    pub frames_seen: u64,
    /// Whether a full window has arrived.
    pub ready: bool,
    /// The current window's scenario; `None` before the first full window.
    pub scenario: Option<Scenario>,
    /// Numeric plane the round ran on.
    pub plane: Precision,
    /// Time spent waiting in the queue, µs.
    pub queued_us: u64,
    /// Streams whose groups shared this round's batched spatial forward.
    pub mux_streams: usize,
    /// Total groups that forward encoded.
    pub mux_groups: usize,
}

/// What a handler gets back for one submitted stream push.
pub type StreamResult = Result<StreamAnswer, ServeError>;

struct Pending {
    video: Tensor,
    enqueued: Instant,
    deadline: Option<Instant>,
    budget_ms: u64,
    reply: Sender<BatchResult>,
}

struct StreamJob {
    entry: Arc<SessionEntry>,
    chunk: Tensor,
    enqueued: Instant,
    deadline: Option<Instant>,
    budget_ms: u64,
    reply: Sender<StreamResult>,
}

enum Job {
    Clip(Pending),
    Stream(StreamJob),
}

struct Queue {
    items: VecDeque<Job>,
    draining: bool,
}

struct Shared {
    q: Mutex<Queue>,
    cv: Condvar,
    cfg: BatchConfig,
    stats: Arc<ServeStats>,
    /// EWMA of per-clip forward cost in µs (0 = no estimate yet).
    est_clip_us: AtomicU64,
    /// EWMA of per-group stream-encode cost in µs (0 = no estimate yet).
    est_group_us: AtomicU64,
}

/// The batching queue plus its worker thread. Dropping the batcher drains
/// it.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Starts the worker thread over `extractor`.
    ///
    /// When the int8 plane is reachable (configured, dialed in, or armed as
    /// the pressure fallback), the weights are prepacked up front so the
    /// first degraded batch does not pay quantization cost mid-overload.
    pub fn start(
        extractor: Arc<ScenarioExtractor>,
        cfg: BatchConfig,
        stats: Arc<ServeStats>,
    ) -> Batcher {
        let int8_reachable = cfg.degrade_depth.is_some()
            || cfg.precision == Some(Precision::Int8)
            || (cfg.precision.is_none() && precision::active() == Precision::Int8);
        if int8_reachable {
            extractor.quantize();
        }
        let shared = Arc::new(Shared {
            q: Mutex::new(Queue { items: VecDeque::new(), draining: false }),
            cv: Condvar::new(),
            cfg,
            stats,
            est_clip_us: AtomicU64::new(0),
            est_group_us: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("tsdx-serve-batcher".into())
            .spawn(move || worker_loop(&worker_shared, &extractor))
            .expect("spawn batch worker");
        Batcher { shared, worker: Mutex::new(Some(worker)) }
    }

    /// Admits one validated window into the queue.
    ///
    /// `deadline` is absolute; `budget_ms` is the client-visible budget it
    /// was derived from (echoed in shed responses).
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] after [`drain`](Batcher::drain) and
    /// [`ServeError::QueueFull`] at capacity — both *before* the request
    /// occupies a slot.
    pub fn submit(
        &self,
        video: Tensor,
        deadline: Option<Instant>,
        budget_ms: u64,
    ) -> Result<Receiver<BatchResult>, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.admit(Job::Clip(Pending {
            video,
            enqueued: Instant::now(),
            deadline,
            budget_ms,
            reply: tx,
        }))?;
        Ok(rx)
    }

    /// Admits one stream chunk push for `entry` into the queue (same
    /// admission and deadline rules as [`submit`](Batcher::submit)). The
    /// chunk is validated and staged by the worker, so a bad chunk answers
    /// a typed 422 with the session untouched.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] after [`drain`](Batcher::drain) and
    /// [`ServeError::QueueFull`] at capacity.
    pub fn submit_stream(
        &self,
        entry: Arc<SessionEntry>,
        chunk: Tensor,
        deadline: Option<Instant>,
        budget_ms: u64,
    ) -> Result<Receiver<StreamResult>, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.admit(Job::Stream(StreamJob {
            entry,
            chunk,
            enqueued: Instant::now(),
            deadline,
            budget_ms,
            reply: tx,
        }))?;
        Ok(rx)
    }

    fn admit(&self, job: Job) -> Result<(), ServeError> {
        {
            let mut q = lock(&self.shared.q);
            if q.draining {
                return Err(ServeError::ShuttingDown);
            }
            if q.items.len() >= self.shared.cfg.queue_capacity {
                ServeStats::inc(&self.shared.stats.shed_queue_full);
                return Err(ServeError::QueueFull { capacity: self.shared.cfg.queue_capacity });
            }
            q.items.push_back(job);
            self.shared.stats.queue_depth.store(q.items.len() as u64, Ordering::Relaxed);
        }
        ServeStats::inc(&self.shared.stats.accepted);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Current queue depth (for readiness probes and tests).
    pub fn depth(&self) -> usize {
        lock(&self.shared.q).items.len()
    }

    /// The per-clip forward estimate the deadline gate uses, µs (0 before
    /// the first batch).
    pub fn estimated_clip_us(&self) -> u64 {
        self.shared.est_clip_us.load(Ordering::Relaxed)
    }

    /// The per-group stream-encode estimate the deadline gate uses, µs (0
    /// before the first stream round).
    pub fn estimated_group_us(&self) -> u64 {
        self.shared.est_group_us.load(Ordering::Relaxed)
    }

    /// Stops admission, answers everything already queued, and joins the
    /// worker. Idempotent; callable from any thread holding the batcher.
    pub fn drain(&self) {
        {
            let mut q = lock(&self.shared.q);
            q.draining = true;
        }
        self.shared.cv.notify_all();
        if let Some(worker) = lock(&self.worker).take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.drain();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // The queue holds no invariants across a panic (entries are
    // self-contained), so recover the data instead of poisoning the server.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(shared: &Shared, extractor: &ScenarioExtractor) {
    // All model stages of every batch record into this scope; snapshots are
    // published after each batch for /stats.
    let scope = metrics::scope();
    loop {
        let (batch, depth_at_drain) = {
            let mut q = lock(&shared.q);
            while q.items.is_empty() && !q.draining {
                q = shared.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.items.is_empty() {
                break; // draining and nothing left
            }
            let depth = q.items.len();
            // Take up to max_batch jobs, but at most one push per session:
            // a second push for a session already in the round stops the
            // drain there (FIFO preserved), so each reply reports exactly
            // its own push's groups.
            let mut batch: Vec<Job> = Vec::new();
            let mut in_round: HashSet<u64> = HashSet::new();
            while batch.len() < shared.cfg.max_batch {
                match q.items.front() {
                    None => break,
                    Some(Job::Stream(sj)) if in_round.contains(&sj.entry.id()) => break,
                    Some(_) => {
                        let job = q.items.pop_front().expect("front was Some");
                        if let Job::Stream(sj) = &job {
                            in_round.insert(sj.entry.id());
                        }
                        batch.push(job);
                    }
                }
            }
            shared.stats.queue_depth.store(q.items.len() as u64, Ordering::Relaxed);
            (batch, depth)
        };
        run_round(shared, extractor, batch, depth_at_drain);
        shared.stats.publish_worker_metrics(scope.snapshot());
    }
    shared.stats.publish_worker_metrics(scope.snapshot());
}

/// One drain round: deadline-gate every job, pick the plane once, then at
/// most two forwards — one batched clip extraction, one cross-stream group
/// encode (plus per-stream window readouts).
fn run_round(shared: &Shared, extractor: &ScenarioExtractor, batch: Vec<Job>, depth: usize) {
    let mut clips: Vec<Pending> = Vec::new();
    let mut streams: Vec<StreamJob> = Vec::new();
    for job in batch {
        match job {
            Job::Clip(p) => clips.push(p),
            Job::Stream(s) => streams.push(s),
        }
    }

    // Deadline gate: answer entries that cannot make it instead of
    // spending a forward on them. The round's cost estimate is the clip
    // forward plus the stream groups this round will encode; with no
    // estimate yet (cold start) only already-expired deadlines are shed.
    let est_clip = shared.est_clip_us.load(Ordering::Relaxed);
    let est_group = shared.est_group_us.load(Ordering::Relaxed);
    let tubelet_t = extractor.model().config().tubelet_t.max(1);
    let est_groups: u64 = streams
        .iter()
        .map(|s| {
            let frames = s.chunk.shape().first().copied().unwrap_or(0);
            (frames.div_ceil(tubelet_t) + 1) as u64 // +1 ≈ the window readout
        })
        .sum();
    let est_round = Duration::from_micros(
        est_clip.saturating_mul(clips.len() as u64).saturating_add(est_group * est_groups),
    );
    let now = Instant::now();
    let live_clips: Vec<Pending> = clips
        .into_iter()
        .filter_map(|p| {
            if p.deadline.is_some_and(|d| now + est_round > d) {
                ServeStats::inc(&shared.stats.shed_deadline);
                let _ = p.reply.send(Err(ServeError::DeadlineExceeded { budget_ms: p.budget_ms }));
                None
            } else {
                Some(p)
            }
        })
        .collect();
    let live_streams: Vec<StreamJob> = streams
        .into_iter()
        .filter_map(|s| {
            if s.deadline.is_some_and(|d| now + est_round > d) {
                ServeStats::inc(&shared.stats.shed_deadline);
                let _ = s.reply.send(Err(ServeError::DeadlineExceeded { budget_ms: s.budget_ms }));
                None
            } else {
                Some(s)
            }
        })
        .collect();
    if live_clips.is_empty() && live_streams.is_empty() {
        return;
    }

    let degraded = shared.cfg.degrade_depth.is_some_and(|t| depth >= t);
    let plane = if degraded {
        Precision::Int8
    } else {
        shared.cfg.precision.unwrap_or_else(precision::active)
    };
    if !live_clips.is_empty() || !live_streams.is_empty() {
        ServeStats::inc(&shared.stats.batches);
        if plane == Precision::Int8 {
            ServeStats::inc(&shared.stats.batches_int8);
        }
        if degraded {
            ServeStats::inc(&shared.stats.batches_degraded);
        }
    }

    run_clips(shared, extractor, live_clips, plane);
    run_streams(shared, extractor, live_streams, plane);
}

/// The one-shot half of a round: one batched window forward.
fn run_clips(shared: &Shared, extractor: &ScenarioExtractor, live: Vec<Pending>, plane: Precision) {
    if live.is_empty() {
        return;
    }
    let videos: Vec<&Tensor> = live.iter().map(|p| &p.video).collect();
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        precision::with_forced(plane, || {
            metrics::stage("stage/serve_batch", || extractor.extract_window_batch(&videos))
        })
    }));
    let elapsed = t0.elapsed();
    shared.stats.batched_clips.fetch_add(live.len() as u64, Ordering::Relaxed);

    match outcome {
        Ok(results) => {
            // EWMA (3:1 old:new) of per-clip latency feeds the next gate.
            let per_clip = (elapsed.as_micros() as u64) / live.len() as u64;
            let old = shared.est_clip_us.load(Ordering::Relaxed);
            let next = if old == 0 { per_clip } else { (3 * old + per_clip) / 4 };
            shared.est_clip_us.store(next.max(1), Ordering::Relaxed);

            let size = live.len();
            for (p, r) in live.into_iter().zip(results) {
                let reply = match r {
                    Ok(scenario) => {
                        ServeStats::inc(&shared.stats.completed);
                        Ok(Extraction {
                            scenario,
                            plane,
                            queued_us: p.enqueued.elapsed().as_micros() as u64,
                            batch_size: size,
                        })
                    }
                    // Validation normally happens at admission; this arm
                    // only fires if a caller submitted unvalidated input.
                    Err(e) => Err(ServeError::InvalidInput(e)),
                };
                let _ = p.reply.send(reply);
            }
        }
        Err(payload) => {
            // A panic anywhere in the forward answers the whole batch with
            // a typed 500 and leaves the worker serving.
            ServeStats::inc(&shared.stats.panics_caught);
            let detail = panic_text(payload.as_ref());
            for p in live {
                let _ = p.reply.send(Err(ServeError::Internal { detail: detail.clone() }));
            }
        }
    }
}

/// The streaming half of a round: stage every chunk, encode all completed
/// groups across sessions in one batched forward, then read out each ready
/// window.
fn run_streams(
    shared: &Shared,
    extractor: &ScenarioExtractor,
    jobs: Vec<StreamJob>,
    plane: Precision,
) {
    if jobs.is_empty() {
        return;
    }
    // Sessions closed or evicted while the push waited in the queue answer
    // typed 404s; their chunks never touch the dead state.
    let mut live: Vec<StreamJob> = Vec::new();
    for j in jobs {
        if j.entry.is_closed() {
            let _ = j.reply.send(Err(ServeError::UnknownSession { id: j.entry.id() }));
        } else {
            live.push(j);
        }
    }
    if live.is_empty() {
        return;
    }

    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        precision::with_forced(plane, || stream_round(shared, extractor, &live, plane))
    }));
    let elapsed = t0.elapsed();
    match outcome {
        Ok((replies, groups)) => {
            if groups > 0 {
                // EWMA (3:1 old:new) of per-group cost feeds the next gate.
                let per_group = (elapsed.as_micros() as u64) / groups as u64;
                let old = shared.est_group_us.load(Ordering::Relaxed);
                let next = if old == 0 { per_group } else { (3 * old + per_group) / 4 };
                shared.est_group_us.store(next.max(1), Ordering::Relaxed);
            }
            for (j, r) in live.into_iter().zip(replies) {
                if r.is_ok() {
                    ServeStats::inc(&shared.stats.stream_pushes);
                }
                let _ = j.reply.send(r);
            }
        }
        Err(payload) => {
            // A panic in the group encode or a window readout answers every
            // push in the round with a typed 500. Staged groups stay staged
            // (the ring is only written after a completed forward), so the
            // sessions stay consistent and the next push re-encodes them.
            ServeStats::inc(&shared.stats.panics_caught);
            let detail = panic_text(payload.as_ref());
            for j in live {
                let _ = j.reply.send(Err(ServeError::Internal { detail: detail.clone() }));
            }
        }
    }
}

/// The lock-stage-encode-readout body of the streaming half. Returns one
/// reply per job (same order) and the number of groups encoded.
fn stream_round(
    shared: &Shared,
    extractor: &ScenarioExtractor,
    jobs: &[StreamJob],
    plane: Precision,
) -> (Vec<StreamResult>, usize) {
    // Hold every session's state lock for the whole round: staging, the
    // shared batched encode, and the readouts are one atomic step per
    // session. The worker is the only contender (session routes go through
    // the queue), so these locks never wait.
    let mut guards: Vec<_> = jobs.iter().map(|j| lock(&j.entry.state)).collect();

    // Stage every chunk. A bad chunk gets its typed error and leaves its
    // session untouched (the rejected-chunk contract); the rest of the
    // round proceeds without it.
    let mut staged: Vec<Result<usize, ServeError>> = jobs
        .iter()
        .zip(guards.iter_mut())
        .map(|(j, g)| {
            metrics::stage("stage/stream_stage", || g.stage_frames(&j.chunk))
                .map_err(ServeError::from)
        })
        .collect();

    // One cross-stream spatial forward over every group staged this round.
    let report = {
        let mut refs: Vec<&mut tsdx_core::StreamState> =
            guards.iter_mut().map(|g| &mut **g).collect();
        tsdx_core::encode_staged(extractor.model(), &mut refs)
    };
    if report.groups > 0 {
        shared.stats.record_mux_batch(report.streams, report.groups);
    }

    // Per-session window readout (temporal stage + heads, KV-cached).
    let replies = jobs
        .iter()
        .zip(guards.iter_mut())
        .zip(staged.iter_mut())
        .map(|((j, g), staged)| {
            let groups_new = match staged {
                Ok(n) => *n,
                Err(e) => return Err(e.clone()),
            };
            let scenario = if g.ready() {
                match g.describe(extractor.model()) {
                    Ok(s) => Some(s),
                    Err(e) => return Err(ServeError::from(e)),
                }
            } else {
                None
            };
            Ok(StreamAnswer {
                session: j.entry.id(),
                groups_new,
                frames_seen: g.frames_seen(),
                ready: g.ready(),
                scenario,
                plane,
                queued_us: j.enqueued.elapsed().as_micros() as u64,
                mux_streams: report.streams,
                mux_groups: report.groups,
            })
        })
        .collect();
    (replies, report.groups)
}

/// Best-effort text of a panic payload.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sessions::{SessionConfig, SessionManager};
    use tsdx_core::ModelConfig;

    fn tiny_cfg() -> ModelConfig {
        ModelConfig {
            frames: 4,
            height: 16,
            width: 16,
            tubelet_t: 2,
            patch: 8,
            dim: 16,
            spatial_depth: 1,
            temporal_depth: 1,
            heads: 2,
            dropout: 0.0,
            ..ModelConfig::default()
        }
    }

    fn tiny_extractor() -> Arc<ScenarioExtractor> {
        Arc::new(ScenarioExtractor::untrained(tiny_cfg(), 0))
    }

    fn video(seed: f32) -> Tensor {
        Tensor::from_fn(&[4, 16, 16], |i| ((i as f32 + seed) * 0.01).sin())
    }

    #[test]
    fn coalesces_concurrent_submissions_into_one_forward() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        let b = Batcher::start(
            Arc::clone(&ex),
            BatchConfig { max_batch: 8, degrade_depth: None, ..BatchConfig::default() },
            Arc::clone(&stats),
        );
        let rxs: Vec<_> = (0..6).map(|i| b.submit(video(i as f32), None, 0).unwrap()).collect();
        let mut sizes = Vec::new();
        for (i, rx) in rxs.into_iter().enumerate() {
            let out = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
            assert_eq!(out.scenario, ex.extract_checked(&video(i as f32)).unwrap());
            sizes.push(out.batch_size);
        }
        // At least one batch carried more than one clip (the first may run
        // alone if the worker won the race to the queue).
        assert!(
            ServeStats::get(&stats.batches) < 6 || sizes.iter().any(|&s| s > 1),
            "batches={} sizes={sizes:?}",
            ServeStats::get(&stats.batches)
        );
        assert_eq!(ServeStats::get(&stats.completed), 6);
        b.drain();
    }

    #[test]
    fn queue_capacity_sheds_typed_429() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        // Stall the worker with a first entry whose forward takes real time,
        // then fill the queue behind it.
        let b = Batcher::start(
            Arc::clone(&ex),
            BatchConfig { queue_capacity: 2, max_batch: 1, ..BatchConfig::default() },
            Arc::clone(&stats),
        );
        let mut kept = Vec::new();
        let mut shed = 0;
        for i in 0..50 {
            match b.submit(video(i as f32), None, 0) {
                Ok(rx) => kept.push(rx),
                Err(e) => {
                    assert!(matches!(e, ServeError::QueueFull { capacity: 2 }), "{e:?}");
                    shed += 1;
                }
            }
        }
        assert!(shed > 0, "50 rapid submits into a 2-slot queue must shed");
        // Every accepted request still gets answered.
        for rx in kept {
            assert!(rx.recv_timeout(Duration::from_secs(30)).unwrap().is_ok());
        }
        assert_eq!(ServeStats::get(&stats.shed_queue_full), shed);
        b.drain();
    }

    #[test]
    fn drain_answers_everything_and_rejects_new_work() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        let b = Batcher::start(Arc::clone(&ex), BatchConfig::default(), Arc::clone(&stats));
        let rxs: Vec<_> = (0..5).map(|i| b.submit(video(i as f32), None, 0).unwrap()).collect();
        b.drain();
        for rx in rxs {
            assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap().is_ok());
        }
        assert!(matches!(b.submit(video(0.0), None, 0), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn expired_deadlines_are_shed_before_the_forward() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        let b = Batcher::start(Arc::clone(&ex), BatchConfig::default(), Arc::clone(&stats));
        // A deadline already in the past is unmakeable even with no cost
        // estimate.
        let past = Instant::now() - Duration::from_millis(5);
        let rx = b.submit(video(1.0), Some(past), 5).unwrap();
        let out = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(matches!(out, Err(ServeError::DeadlineExceeded { budget_ms: 5 })), "{out:?}");
        assert_eq!(ServeStats::get(&stats.shed_deadline), 1);
        // A generous deadline passes.
        let rx = b.submit(video(2.0), Some(Instant::now() + Duration::from_secs(60)), 60_000);
        assert!(rx.unwrap().recv_timeout(Duration::from_secs(30)).unwrap().is_ok());
        b.drain();
    }

    #[test]
    fn degrade_threshold_flips_batches_to_int8() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        // Threshold 1: every batch sees depth >= 1 at drain time.
        let b = Batcher::start(
            Arc::clone(&ex),
            BatchConfig { degrade_depth: Some(1), ..BatchConfig::default() },
            Arc::clone(&stats),
        );
        let rx = b.submit(video(3.0), None, 0).unwrap();
        let out = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
        assert_eq!(out.plane, Precision::Int8);
        assert!(ServeStats::get(&stats.batches_degraded) >= 1);
        // The degraded answer matches the int8 plane run directly.
        let reference =
            precision::with_forced(Precision::Int8, || ex.extract_checked(&video(3.0)).unwrap());
        assert_eq!(out.scenario, reference);
        b.drain();
    }

    #[test]
    fn stream_pushes_flow_through_the_mixed_queue() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        let sessions = SessionManager::new(SessionConfig::default(), Arc::clone(&stats));
        let b = Batcher::start(Arc::clone(&ex), BatchConfig::default(), Arc::clone(&stats));
        let entry = sessions.create(tiny_cfg()).unwrap();

        // Half a window first: staged + encoded, not ready.
        let half = Tensor::from_fn(&[2, 16, 16], |i| (i as f32 * 0.01).sin());
        let rx = b.submit_stream(Arc::clone(&entry), half.clone(), None, 0).unwrap();
        let a = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
        assert_eq!(a.groups_new, 1);
        assert_eq!(a.frames_seen, 2);
        assert!(!a.ready);
        assert!(a.scenario.is_none());

        // Second half: ready, scenario matches an independent session.
        let rest = Tensor::from_fn(&[2, 16, 16], |i| ((i + 512) as f32 * 0.01).sin());
        let rx = b.submit_stream(Arc::clone(&entry), rest.clone(), None, 0).unwrap();
        let a = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
        assert!(a.ready);
        let mut solo = ex.open_stream();
        solo.push_frames(&half).unwrap();
        solo.push_frames(&rest).unwrap();
        assert_eq!(a.scenario.unwrap(), solo.describe().unwrap());
        assert_eq!(ServeStats::get(&stats.stream_pushes), 2);
        assert!(ServeStats::get(&stats.mux_batches) >= 2);

        // A bad chunk is a typed error and leaves the session intact.
        let rx = b.submit_stream(Arc::clone(&entry), Tensor::zeros(&[1, 8, 8]), None, 0).unwrap();
        let e = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap_err();
        assert!(matches!(e, ServeError::InvalidInput(_)), "{e:?}");
        let rx = b.submit_stream(Arc::clone(&entry), Tensor::zeros(&[0, 16, 16]), None, 0).unwrap();
        let a = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
        assert_eq!(a.frames_seen, 4, "failed pushes must not consume frames");

        // Closing the session mid-queue answers 404, not a write.
        sessions.close(entry.id()).unwrap();
        let rx = b.submit_stream(Arc::clone(&entry), half, None, 0).unwrap();
        let e = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap_err();
        assert!(matches!(e, ServeError::UnknownSession { .. }), "{e:?}");
        b.drain();
    }

    #[test]
    fn interleaved_streams_share_one_batched_encode() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        let sessions = SessionManager::new(SessionConfig::default(), Arc::clone(&stats));
        let b = Batcher::start(
            Arc::clone(&ex),
            BatchConfig { max_batch: 16, ..BatchConfig::default() },
            Arc::clone(&stats),
        );
        let entries: Vec<_> = (0..4).map(|_| sessions.create(tiny_cfg()).unwrap()).collect();
        let window =
            |s: usize| Tensor::from_fn(&[4, 16, 16], |i| ((i + s * 777) as f32 * 0.013).sin());

        // Submit a full window for every stream before the worker can run:
        // the round coalesces their group encodes.
        let rxs: Vec<_> = entries
            .iter()
            .enumerate()
            .map(|(s, e)| b.submit_stream(Arc::clone(e), window(s), None, 0).unwrap())
            .collect();
        let mut max_mux = 0;
        for (s, rx) in rxs.into_iter().enumerate() {
            let a = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
            assert!(a.ready);
            let mut solo = ex.open_stream();
            solo.push_frames(&window(s)).unwrap();
            assert_eq!(a.scenario.unwrap(), solo.describe().unwrap(), "mux parity for stream {s}");
            max_mux = max_mux.max(a.mux_streams);
        }
        // At least one round served more than one stream (the first may run
        // alone if the worker won the race to the queue).
        assert!(
            max_mux > 1 || ServeStats::get(&stats.mux_batches) >= 4,
            "max_mux={max_mux} batches={}",
            ServeStats::get(&stats.mux_batches)
        );
        b.drain();
    }
}
