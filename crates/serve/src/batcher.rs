//! The dynamic micro-batching queue between connection handlers and the
//! model.
//!
//! Concurrent requests land in one bounded queue; a single worker thread
//! drains up to `max_batch` of them at a time and runs **one** batched
//! encoder forward ([`ScenarioExtractor::extract_window_batch`]), so the
//! packed-GEMM / fused-attention / int8 wins amortize across requests that
//! arrived independently. The robustness rules live here:
//!
//! * **Bounded admission.** [`Batcher::submit`] sheds with a typed
//!   [`ServeError::QueueFull`] the moment the queue is at capacity — the
//!   server never accepts work it has no room for.
//! * **Deadline budget propagation.** Each entry carries its deadline into
//!   the worker; before a forward, entries that cannot finish within an
//!   EWMA-estimated batch latency are answered
//!   [`ServeError::DeadlineExceeded`] instead of wasting model time.
//! * **Degrade under pressure.** When the queue depth at drain time crosses
//!   `degrade_depth`, the whole batch runs on the int8 plane
//!   ([`Precision::Int8`]) — trading a bounded accuracy epsilon (PR 7) for
//!   roughly 1.4× forward throughput exactly when it is needed.
//! * **Panic containment.** The forward runs under `catch_unwind`; a panic
//!   (including worker-pool panics re-raised on this thread by the PR 3
//!   capture) answers every batch member with a typed 500 and the worker
//!   keeps serving.
//! * **Drain, never drop.** [`Batcher::drain`] stops admission, then the
//!   worker answers everything still queued before exiting — an admitted
//!   request always gets a response.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tsdx_core::precision::{self, Precision};
use tsdx_core::ScenarioExtractor;
use tsdx_sdl::Scenario;
use tsdx_tensor::{metrics, Tensor};

use crate::error::ServeError;
use crate::stats::ServeStats;

/// Tuning for the batching queue.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Most requests that may wait in the admission queue; one more is a
    /// 429.
    pub queue_capacity: usize,
    /// Most clips coalesced into one forward.
    pub max_batch: usize,
    /// Queue depth (measured when the worker starts a drain) at or above
    /// which batches run int8. `None` disables pressure degradation.
    pub degrade_depth: Option<usize>,
    /// Numeric plane for unpressured batches; `None` follows the process
    /// `TSDX_PRECISION` dial.
    pub precision: Option<Precision>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { queue_capacity: 64, max_batch: 8, degrade_depth: Some(32), precision: None }
    }
}

/// A successful extraction, annotated with how it was served.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The decoded scenario.
    pub scenario: Scenario,
    /// Numeric plane the batch ran on.
    pub plane: Precision,
    /// Time spent waiting in the queue, µs.
    pub queued_us: u64,
    /// How many clips shared the forward.
    pub batch_size: usize,
}

/// What a handler gets back for one submitted request.
pub type BatchResult = Result<Extraction, ServeError>;

struct Pending {
    video: Tensor,
    enqueued: Instant,
    deadline: Option<Instant>,
    budget_ms: u64,
    reply: Sender<BatchResult>,
}

struct Queue {
    items: VecDeque<Pending>,
    draining: bool,
}

struct Shared {
    q: Mutex<Queue>,
    cv: Condvar,
    cfg: BatchConfig,
    stats: Arc<ServeStats>,
    /// EWMA of per-clip forward cost in µs (0 = no estimate yet).
    est_clip_us: AtomicU64,
}

/// The batching queue plus its worker thread. Dropping the batcher drains
/// it.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Starts the worker thread over `extractor`.
    ///
    /// When the int8 plane is reachable (configured, dialed in, or armed as
    /// the pressure fallback), the weights are prepacked up front so the
    /// first degraded batch does not pay quantization cost mid-overload.
    pub fn start(
        extractor: Arc<ScenarioExtractor>,
        cfg: BatchConfig,
        stats: Arc<ServeStats>,
    ) -> Batcher {
        let int8_reachable = cfg.degrade_depth.is_some()
            || cfg.precision == Some(Precision::Int8)
            || (cfg.precision.is_none() && precision::active() == Precision::Int8);
        if int8_reachable {
            extractor.quantize();
        }
        let shared = Arc::new(Shared {
            q: Mutex::new(Queue { items: VecDeque::new(), draining: false }),
            cv: Condvar::new(),
            cfg,
            stats,
            est_clip_us: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("tsdx-serve-batcher".into())
            .spawn(move || worker_loop(&worker_shared, &extractor))
            .expect("spawn batch worker");
        Batcher { shared, worker: Mutex::new(Some(worker)) }
    }

    /// Admits one validated window into the queue.
    ///
    /// `deadline` is absolute; `budget_ms` is the client-visible budget it
    /// was derived from (echoed in shed responses).
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] after [`drain`](Batcher::drain) and
    /// [`ServeError::QueueFull`] at capacity — both *before* the request
    /// occupies a slot.
    pub fn submit(
        &self,
        video: Tensor,
        deadline: Option<Instant>,
        budget_ms: u64,
    ) -> Result<Receiver<BatchResult>, ServeError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock(&self.shared.q);
            if q.draining {
                return Err(ServeError::ShuttingDown);
            }
            if q.items.len() >= self.shared.cfg.queue_capacity {
                ServeStats::inc(&self.shared.stats.shed_queue_full);
                return Err(ServeError::QueueFull { capacity: self.shared.cfg.queue_capacity });
            }
            q.items.push_back(Pending {
                video,
                enqueued: Instant::now(),
                deadline,
                budget_ms,
                reply: tx,
            });
            self.shared.stats.queue_depth.store(q.items.len() as u64, Ordering::Relaxed);
        }
        ServeStats::inc(&self.shared.stats.accepted);
        self.shared.cv.notify_one();
        Ok(rx)
    }

    /// Current queue depth (for readiness probes and tests).
    pub fn depth(&self) -> usize {
        lock(&self.shared.q).items.len()
    }

    /// The per-clip forward estimate the deadline gate uses, µs (0 before
    /// the first batch).
    pub fn estimated_clip_us(&self) -> u64 {
        self.shared.est_clip_us.load(Ordering::Relaxed)
    }

    /// Stops admission, answers everything already queued, and joins the
    /// worker. Idempotent; callable from any thread holding the batcher.
    pub fn drain(&self) {
        {
            let mut q = lock(&self.shared.q);
            q.draining = true;
        }
        self.shared.cv.notify_all();
        if let Some(worker) = lock(&self.worker).take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.drain();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // The queue holds no invariants across a panic (entries are
    // self-contained), so recover the data instead of poisoning the server.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(shared: &Shared, extractor: &ScenarioExtractor) {
    // All model stages of every batch record into this scope; snapshots are
    // published after each batch for /stats.
    let scope = metrics::scope();
    loop {
        let (batch, depth_at_drain) = {
            let mut q = lock(&shared.q);
            while q.items.is_empty() && !q.draining {
                q = shared.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.items.is_empty() {
                break; // draining and nothing left
            }
            let depth = q.items.len();
            let take = depth.min(shared.cfg.max_batch);
            let batch: Vec<Pending> = q.items.drain(..take).collect();
            shared.stats.queue_depth.store(q.items.len() as u64, Ordering::Relaxed);
            (batch, depth)
        };
        run_batch(shared, extractor, batch, depth_at_drain);
        shared.stats.publish_worker_metrics(scope.snapshot());
    }
    shared.stats.publish_worker_metrics(scope.snapshot());
}

fn run_batch(shared: &Shared, extractor: &ScenarioExtractor, batch: Vec<Pending>, depth: usize) {
    // Deadline gate: answer entries that cannot make it instead of
    // spending a forward on them. With no estimate yet (cold start) only
    // already-expired deadlines are shed.
    let est_clip = shared.est_clip_us.load(Ordering::Relaxed);
    let est_batch = Duration::from_micros(est_clip.saturating_mul(batch.len() as u64));
    let now = Instant::now();
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        let unmakeable = p.deadline.is_some_and(|d| now + est_batch > d);
        if unmakeable {
            ServeStats::inc(&shared.stats.shed_deadline);
            let _ = p.reply.send(Err(ServeError::DeadlineExceeded { budget_ms: p.budget_ms }));
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }

    let degraded = shared.cfg.degrade_depth.is_some_and(|t| depth >= t);
    let plane = if degraded {
        Precision::Int8
    } else {
        shared.cfg.precision.unwrap_or_else(precision::active)
    };

    let videos: Vec<&Tensor> = live.iter().map(|p| &p.video).collect();
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        precision::with_forced(plane, || {
            metrics::stage("stage/serve_batch", || extractor.extract_window_batch(&videos))
        })
    }));
    let elapsed = t0.elapsed();

    ServeStats::inc(&shared.stats.batches);
    shared.stats.batched_clips.fetch_add(live.len() as u64, Ordering::Relaxed);
    if plane == Precision::Int8 {
        ServeStats::inc(&shared.stats.batches_int8);
    }
    if degraded {
        ServeStats::inc(&shared.stats.batches_degraded);
    }

    match outcome {
        Ok(results) => {
            // EWMA (3:1 old:new) of per-clip latency feeds the next gate.
            let per_clip = (elapsed.as_micros() as u64) / live.len() as u64;
            let old = shared.est_clip_us.load(Ordering::Relaxed);
            let next = if old == 0 { per_clip } else { (3 * old + per_clip) / 4 };
            shared.est_clip_us.store(next.max(1), Ordering::Relaxed);

            let size = live.len();
            for (p, r) in live.into_iter().zip(results) {
                let reply = match r {
                    Ok(scenario) => {
                        ServeStats::inc(&shared.stats.completed);
                        Ok(Extraction {
                            scenario,
                            plane,
                            queued_us: p.enqueued.elapsed().as_micros() as u64,
                            batch_size: size,
                        })
                    }
                    // Validation normally happens at admission; this arm
                    // only fires if a caller submitted unvalidated input.
                    Err(e) => Err(ServeError::InvalidInput(e)),
                };
                let _ = p.reply.send(reply);
            }
        }
        Err(payload) => {
            // A panic anywhere in the forward answers the whole batch with
            // a typed 500 and leaves the worker serving.
            ServeStats::inc(&shared.stats.panics_caught);
            let detail = panic_text(payload.as_ref());
            for p in live {
                let _ = p.reply.send(Err(ServeError::Internal { detail: detail.clone() }));
            }
        }
    }
}

/// Best-effort text of a panic payload.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdx_core::ModelConfig;

    fn tiny_extractor() -> Arc<ScenarioExtractor> {
        Arc::new(ScenarioExtractor::untrained(
            ModelConfig {
                frames: 4,
                height: 16,
                width: 16,
                tubelet_t: 2,
                patch: 8,
                dim: 16,
                spatial_depth: 1,
                temporal_depth: 1,
                heads: 2,
                dropout: 0.0,
                ..ModelConfig::default()
            },
            0,
        ))
    }

    fn video(seed: f32) -> Tensor {
        Tensor::from_fn(&[4, 16, 16], |i| ((i as f32 + seed) * 0.01).sin())
    }

    #[test]
    fn coalesces_concurrent_submissions_into_one_forward() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        let b = Batcher::start(
            Arc::clone(&ex),
            BatchConfig { max_batch: 8, degrade_depth: None, ..BatchConfig::default() },
            Arc::clone(&stats),
        );
        let rxs: Vec<_> = (0..6).map(|i| b.submit(video(i as f32), None, 0).unwrap()).collect();
        let mut sizes = Vec::new();
        for (i, rx) in rxs.into_iter().enumerate() {
            let out = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
            assert_eq!(out.scenario, ex.extract_checked(&video(i as f32)).unwrap());
            sizes.push(out.batch_size);
        }
        // At least one batch carried more than one clip (the first may run
        // alone if the worker won the race to the queue).
        assert!(
            ServeStats::get(&stats.batches) < 6 || sizes.iter().any(|&s| s > 1),
            "batches={} sizes={sizes:?}",
            ServeStats::get(&stats.batches)
        );
        assert_eq!(ServeStats::get(&stats.completed), 6);
        b.drain();
    }

    #[test]
    fn queue_capacity_sheds_typed_429() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        // Stall the worker with a first entry whose forward takes real time,
        // then fill the queue behind it.
        let b = Batcher::start(
            Arc::clone(&ex),
            BatchConfig { queue_capacity: 2, max_batch: 1, ..BatchConfig::default() },
            Arc::clone(&stats),
        );
        let mut kept = Vec::new();
        let mut shed = 0;
        for i in 0..50 {
            match b.submit(video(i as f32), None, 0) {
                Ok(rx) => kept.push(rx),
                Err(e) => {
                    assert!(matches!(e, ServeError::QueueFull { capacity: 2 }), "{e:?}");
                    shed += 1;
                }
            }
        }
        assert!(shed > 0, "50 rapid submits into a 2-slot queue must shed");
        // Every accepted request still gets answered.
        for rx in kept {
            assert!(rx.recv_timeout(Duration::from_secs(30)).unwrap().is_ok());
        }
        assert_eq!(ServeStats::get(&stats.shed_queue_full), shed);
        b.drain();
    }

    #[test]
    fn drain_answers_everything_and_rejects_new_work() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        let b = Batcher::start(Arc::clone(&ex), BatchConfig::default(), Arc::clone(&stats));
        let rxs: Vec<_> = (0..5).map(|i| b.submit(video(i as f32), None, 0).unwrap()).collect();
        b.drain();
        for rx in rxs {
            assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap().is_ok());
        }
        assert!(matches!(b.submit(video(0.0), None, 0), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn expired_deadlines_are_shed_before_the_forward() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        let b = Batcher::start(Arc::clone(&ex), BatchConfig::default(), Arc::clone(&stats));
        // A deadline already in the past is unmakeable even with no cost
        // estimate.
        let past = Instant::now() - Duration::from_millis(5);
        let rx = b.submit(video(1.0), Some(past), 5).unwrap();
        let out = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(matches!(out, Err(ServeError::DeadlineExceeded { budget_ms: 5 })), "{out:?}");
        assert_eq!(ServeStats::get(&stats.shed_deadline), 1);
        // A generous deadline passes.
        let rx = b.submit(video(2.0), Some(Instant::now() + Duration::from_secs(60)), 60_000);
        assert!(rx.unwrap().recv_timeout(Duration::from_secs(30)).unwrap().is_ok());
        b.drain();
    }

    #[test]
    fn degrade_threshold_flips_batches_to_int8() {
        let ex = tiny_extractor();
        let stats = Arc::new(ServeStats::default());
        // Threshold 1: every batch sees depth >= 1 at drain time.
        let b = Batcher::start(
            Arc::clone(&ex),
            BatchConfig { degrade_depth: Some(1), ..BatchConfig::default() },
            Arc::clone(&stats),
        );
        let rx = b.submit(video(3.0), None, 0).unwrap();
        let out = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
        assert_eq!(out.plane, Precision::Int8);
        assert!(ServeStats::get(&stats.batches_degraded) >= 1);
        // The degraded answer matches the int8 plane run directly.
        let reference =
            precision::with_forced(Precision::Int8, || ex.extract_checked(&video(3.0)).unwrap());
        assert_eq!(out.scenario, reference);
        b.drain();
    }
}
