//! A minimal, hardened JSON subset: parse untrusted request bodies, escape
//! response strings.
//!
//! Hand-rolled because the build is offline (no serde); deliberately small
//! because the wire schema is flat. The parser is the security boundary for
//! request bodies, so it is bounded in depth and input size by
//! construction, rejects trailing garbage, and never panics on any byte
//! sequence — `tests/http_errors.rs` proptests that.

use std::fmt;

/// Maximum nesting depth the parser accepts — the wire schema needs 2.
const MAX_DEPTH: usize = 16;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite: the grammar has no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys: last one wins via
    /// [`Json::get`] scanning from the front of the reversed list — we keep
    /// first-wins for determinism).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// First value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, when this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string, when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Why a body failed to parse. One variant per grammar rule violated keeps
/// diagnostics stable for tests without leaking buffer contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was expected or violated.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON value spanning the whole input.
///
/// # Errors
///
/// A [`JsonError`] naming the first violated grammar rule; never a panic,
/// for any byte sequence.
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { b: input, at: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.at != p.b.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.at, what }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, word: &'static [u8], v: Json) -> Result<Json, JsonError> {
        if self.b[self.at..].starts_with(word) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err("expected literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.lit(b"null", Json::Null),
            Some(b't') => self.lit(b"true", Json::Bool(true)),
            Some(b'f') => self.lit(b"false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let digits_from = self.at;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.at == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            let frac_from = self.at;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
            }
            if self.at == frac_from {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            let exp_from = self.at;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
            }
            if self.at == exp_from {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.at])
            .expect("number bytes are ASCII by construction");
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.at + 1..self.at + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired —
                            // the wire schema has no astral-plane needs.
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.at += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Decode one UTF-8 scalar; invalid sequences are errors.
                    // The shortest valid prefix of a well-formed stream is
                    // exactly its first character, so try lengths 1..=4.
                    let rest = &self.b[self.at..];
                    let ch = (1..=rest.len().min(4))
                        .find_map(|len| std::str::from_utf8(&rest[..len]).ok())
                        .and_then(|s| s.chars().next());
                    match ch {
                        Some(ch) => {
                            out.push(ch);
                            self.at += ch.len_utf8();
                        }
                        None => return Err(self.err("invalid utf-8 in string")),
                    }
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_wire_schema() {
        let v = parse(br#"{"shape":[2,2],"pixels":[0.5,-1,1e-2,3]}"#).unwrap();
        let shape: Vec<f64> =
            v.get("shape").unwrap().as_arr().unwrap().iter().map(|j| j.as_num().unwrap()).collect();
        assert_eq!(shape, [2.0, 2.0]);
        assert_eq!(v.get("pixels").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse(b"{}x").is_err());
        assert!(parse(b"[1,]").is_err());
        assert!(parse(b"{\"a\"1}").is_err());
        assert!(parse(b"nul").is_err());
        assert!(parse(b"NaN").is_err());
        assert!(parse(b"1e999").is_err(), "overflowing numbers are errors, not inf");
        assert!(parse(b"").is_err());
        assert!(parse(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn depth_is_bounded() {
        let mut deep = Vec::new();
        deep.extend(std::iter::repeat_n(b'[', 100));
        deep.extend(std::iter::repeat_n(b']', 100));
        assert_eq!(parse(&deep).unwrap_err().what, "nesting too deep");
    }

    #[test]
    fn strings_roundtrip_escapes() {
        let v = parse(br#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\nA".into()));
        let unicode = parse("\"ab€é\"".as_bytes()).unwrap();
        assert_eq!(unicode, Json::Str("ab€é".into()));
        assert_eq!(escape("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
    }
}
