//! The TCP front: listener, connection handling, routing, and graceful
//! shutdown.
//!
//! One OS thread per live connection (bounded by
//! [`ServerConfig::max_connections`] — past the cap a connection is told
//! `503 busy` and closed without reading a byte), sequential HTTP/1.1
//! keep-alive per connection, and every handler wrapped in `catch_unwind`
//! so a panic answers `500` and closes **that** connection while the
//! listener and every other connection keep going. Slow clients are bounded
//! by socket read/write timeouts. Extraction requests funnel into the
//! [`Batcher`]; admission control and deadlines are enforced there.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tsdx_core::precision;
use tsdx_core::ScenarioExtractor;
use tsdx_tensor::Tensor;

use crate::batcher::{BatchConfig, Batcher};
use crate::error::ServeError;
use crate::http::{self, Head, Response};
use crate::json::{self, Json};
use crate::search::{hits_to_json, SearchService, MAX_SEARCH_K};
use crate::sessions::{SessionConfig, SessionManager};
use crate::stats::ServeStats;

/// Longest a handler will wait on the batcher for an answer beyond the
/// request's own deadline. The batcher always replies — this is the
/// never-hang backstop, not a tuning knob.
const REPLY_SLACK: Duration = Duration::from_secs(60);

/// Server tuning. The defaults favor shedding early over queueing deep.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Micro-batching queue tuning.
    pub batch: BatchConfig,
    /// Most simultaneously open connections; the next one is told `503
    /// busy` and closed.
    pub max_connections: usize,
    /// Socket read timeout: a client that stalls longer mid-request gets
    /// `408` and the connection closed.
    pub read_timeout: Duration,
    /// Socket write timeout: a client that stops reading its response this
    /// long has the connection closed.
    pub write_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Deadline applied to requests that do not send `X-Deadline-Ms`.
    /// `None` means such requests never expire.
    pub default_deadline_ms: Option<u64>,
    /// Streaming session table bounds (capacity and idle TTL).
    pub sessions: SessionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig::default(),
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: 16 * 1024 * 1024,
            default_deadline_ms: None,
            sessions: SessionConfig::default(),
        }
    }
}

/// Hits served to requests that do not pick a `k` themselves.
const DEFAULT_SEARCH_K: usize = 5;

struct Inner {
    cfg: ServerConfig,
    extractor: Arc<ScenarioExtractor>,
    batcher: Batcher,
    /// Scenario corpus behind `POST /search`; servers started without one
    /// answer `404` there.
    search: Option<Arc<SearchService>>,
    /// Live streaming sessions behind the `/sessions` routes.
    sessions: SessionManager,
    stats: Arc<ServeStats>,
    shutting_down: AtomicBool,
    /// Accepted-request counter; also the index the handler-panic fault
    /// keys on.
    next_request: AtomicU64,
    /// Live connection count, guarded so shutdown can wait for it to reach
    /// zero.
    conns: Mutex<usize>,
    conns_cv: Condvar,
    local_addr: SocketAddr,
}

/// A running scenario-extraction server.
///
/// Start with [`Server::start`], stop with [`Server::shutdown`] (also runs
/// on drop). The listener thread, connection threads, and batch worker are
/// all owned here; nothing outlives the struct.
pub struct Server {
    inner: Arc<Inner>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and batch worker, and returns once the
    /// server is reachable.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(extractor: ScenarioExtractor, cfg: ServerConfig) -> std::io::Result<Server> {
        Server::start_with_search(extractor, None, cfg)
    }

    /// [`Server::start`] plus a scenario corpus served at `POST /search`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start_with_search(
        extractor: ScenarioExtractor,
        search: Option<Arc<SearchService>>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let extractor = Arc::new(extractor);
        let stats = Arc::new(ServeStats::default());
        let batcher = Batcher::start(Arc::clone(&extractor), cfg.batch.clone(), Arc::clone(&stats));
        let sessions = SessionManager::new(cfg.sessions.clone(), Arc::clone(&stats));
        let inner = Arc::new(Inner {
            cfg,
            extractor,
            batcher,
            search,
            sessions,
            stats,
            shutting_down: AtomicBool::new(false),
            next_request: AtomicU64::new(0),
            conns: Mutex::new(0),
            conns_cv: Condvar::new(),
            local_addr,
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("tsdx-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_inner))
            .expect("spawn accept loop");
        Ok(Server { inner, accept_thread: Some(accept_thread) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Lifetime counters (shared with the batcher).
    pub fn stats(&self) -> &ServeStats {
        &self.inner.stats
    }

    /// The live streaming-session table behind the `/sessions` routes.
    pub fn sessions(&self) -> &SessionManager {
        &self.inner.sessions
    }

    /// Whether the server is still admitting work.
    pub fn ready(&self) -> bool {
        !self.inner.shutting_down.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, let open connections finish their
    /// current exchange, answer everything already admitted to the batch
    /// queue, then join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.begin_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    /// The shutdown sequence shared by [`Server::shutdown`] and the
    /// `/admin/shutdown` endpoint.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            // Someone else is already draining; the batcher join below is
            // idempotent and makes every caller block until fully drained.
            self.batcher.drain();
            return;
        }
        // Unblock the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        // Let in-flight connections finish their exchange. Socket timeouts
        // bound each read/write, so this converges; the extra slack covers
        // a final batched forward.
        let bound = self.cfg.read_timeout + self.cfg.write_timeout + Duration::from_secs(10);
        let deadline = Instant::now() + bound;
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        while *conns > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break; // never hang shutdown on a wedged connection
            }
            let (guard, _timeout) =
                self.conns_cv.wait_timeout(conns, left).unwrap_or_else(|e| e.into_inner());
            conns = guard;
        }
        drop(conns);
        // Answer everything already admitted, then stop the worker.
        self.batcher.drain();
    }

    fn connection_opened(&self) -> usize {
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        *conns += 1;
        *conns
    }

    fn connection_closed(&self) {
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        *conns = conns.saturating_sub(1);
        drop(conns);
        self.conns_cv.notify_all();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Fault injection: the listener stalls before handling the next
        // connection (a GC pause, a noisy neighbor). Requests queued behind
        // the stall must still complete.
        #[cfg(feature = "fault-inject")]
        if let Some(ms) = tsdx_tensor::faults::take_accept_stall() {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let open = inner.connection_opened();
        if open > inner.cfg.max_connections {
            ServeStats::inc(&inner.stats.shed_busy);
            let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
            let mut stream = stream;
            let busy = ServeError::Busy { limit: inner.cfg.max_connections };
            let _ = http::write_response(&mut stream, &Response::from_error(&busy));
            inner.connection_closed();
            continue;
        }
        let conn_inner = Arc::clone(inner);
        let spawned = std::thread::Builder::new().name("tsdx-serve-conn".into()).spawn(move || {
            handle_connection(&conn_inner, stream);
            conn_inner.connection_closed();
        });
        if spawned.is_err() {
            inner.connection_closed();
        }
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;

    loop {
        let head = match http::read_head(&mut reader) {
            Ok(Some(head)) => head,
            Ok(None) => return, // clean keep-alive hang-up
            Err(e) => {
                ServeStats::inc(&inner.stats.rejected);
                let _ = http::write_response(&mut writer, &Response::from_error(&e));
                return; // stream position is unknown; never try to resync
            }
        };
        let request_index = inner.next_request.fetch_add(1, Ordering::SeqCst);
        let wants_close = head.wants_close();

        // The handler boundary: a panic anywhere in routing answers 500 on
        // this connection and leaves the process serving.
        let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            #[cfg(feature = "fault-inject")]
            if tsdx_tensor::faults::handler_panic_at(request_index) {
                panic!("injected fault: handler panic at request {request_index}");
            }
            route(inner, &head, &mut reader, &mut writer, request_index)
        }));
        let mut response = match routed {
            Ok(Ok(response)) => response,
            Ok(Err(e)) => {
                if e.status() < 500 && !matches!(e, ServeError::QueueFull { .. }) {
                    ServeStats::inc(&inner.stats.rejected);
                }
                Response::from_error(&e)
            }
            Err(payload) => {
                ServeStats::inc(&inner.stats.panics_caught);
                let detail = crate::batcher::panic_text(payload.as_ref());
                Response::from_error(&ServeError::Internal { detail })
            }
        };
        if inner.shutting_down.load(Ordering::SeqCst) || wants_close {
            response.close = true;
        }
        if http::write_response(&mut writer, &response).is_err() {
            return; // client went away mid-response
        }
        if response.close {
            return;
        }
    }
}

/// Dispatches one parsed request head to its endpoint.
fn route(
    inner: &Arc<Inner>,
    head: &Head,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_index: u64,
) -> Result<Response, ServeError> {
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => Ok(Response::ok("{\"status\":\"ok\"}".into())),
        ("GET", "/readyz") => {
            if inner.shutting_down.load(Ordering::SeqCst) {
                Err(ServeError::ShuttingDown)
            } else {
                Ok(Response::ok(format!(
                    "{{\"ready\":true,\"queue_depth\":{}}}",
                    inner.batcher.depth()
                )))
            }
        }
        ("GET", "/stats" | "/metrics") => {
            let plane = inner.cfg.batch.precision.unwrap_or_else(precision::active);
            Ok(Response::ok(
                inner.stats.to_json(plane.label(), !inner.shutting_down.load(Ordering::SeqCst)),
            ))
        }
        ("POST", "/v1/extract") => extract_endpoint(inner, head, reader, writer, request_index),
        ("POST", "/search") => search_endpoint(inner, head, reader, writer, request_index),
        (_, p) if p == "/sessions" || p.starts_with("/sessions/") => {
            // Fault injection: the session-route handler dies before
            // touching any session state. The connection-boundary
            // catch_unwind turns this into a 500; the listener and every
            // other session must be unaffected.
            #[cfg(feature = "fault-inject")]
            if tsdx_tensor::faults::take_session_route_panic() {
                panic!("injected fault: session route panic at request {request_index}");
            }
            session_route(inner, head, reader, writer, request_index)
        }
        ("POST", "/admin/shutdown") => {
            // Drain on a helper thread: this handler's own connection must
            // close for the connection count to reach zero.
            let drain_inner = Arc::clone(inner);
            let _ = std::thread::Builder::new()
                .name("tsdx-serve-shutdown".into())
                .spawn(move || drain_inner.begin_shutdown());
            let mut r = Response::ok("{\"status\":\"draining\"}".into());
            r.status = 202;
            r.close = true;
            Ok(r)
        }
        (
            _,
            "/healthz" | "/readyz" | "/stats" | "/metrics" | "/v1/extract" | "/search"
            | "/admin/shutdown",
        ) => Err(ServeError::MethodNotAllowed {
            method: head.method.clone(),
            path: head.path.clone(),
        }),
        (_, path) => Err(ServeError::NotFound { path: path.to_string() }),
    }
}

/// `POST /v1/extract`: read and decode the body, validate, admit, await the
/// batched answer.
fn extract_endpoint(
    inner: &Arc<Inner>,
    head: &Head,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_index: u64,
) -> Result<Response, ServeError> {
    // Reject before the (possibly large) body upload when already draining.
    if inner.shutting_down.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    let budget_ms = match head.header("x-deadline-ms") {
        None => inner.cfg.default_deadline_ms,
        Some(v) => Some(v.parse::<u64>().map_err(|_| ServeError::BadRequest {
            detail: "X-Deadline-Ms must be an integer millisecond budget".into(),
        })?),
    };
    if head.expects_continue() {
        http::write_continue(writer)
            .map_err(|_| ServeError::BadRequest { detail: "client went away".into() })?;
    }
    let body = http::read_body(reader, head, inner.cfg.max_body_bytes)?;
    let video = decode_video(head, &body)?;
    inner.extractor.validate_window(&video)?;

    // The deadline clock starts after upload: the budget covers queueing
    // and inference, not the client's own send rate.
    let deadline = budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let rx = inner.batcher.submit(video, deadline, budget_ms.unwrap_or(0))?;
    let wait = deadline
        .map(|d| d.saturating_duration_since(Instant::now()) + REPLY_SLACK)
        .unwrap_or(REPLY_SLACK);
    let answer = rx.recv_timeout(wait).map_err(|_| ServeError::Internal {
        detail: "batch worker did not answer within the reply bound".into(),
    })??;
    Ok(Response::ok(format!(
        concat!(
            "{{\"scenario\":\"{scenario}\",\"plane\":\"{plane}\",",
            "\"batch_size\":{batch},\"queued_us\":{queued},\"request\":{index}}}"
        ),
        scenario = json::escape(&answer.scenario.to_string()),
        plane = answer.plane.label(),
        batch = answer.batch_size,
        queued = answer.queued_us,
        index = request_index,
    )))
}

/// `POST /search`: the `k` most similar indexed scenarios — to an SDL
/// query string (`{"sdl":"...","k":3}`, no model work), or to a clip
/// (extract → embed → query; same body encodings, admission control, and
/// deadline handling as `/v1/extract`, with `k` from the `X-Search-K`
/// header or a `"k"` body field).
fn search_endpoint(
    inner: &Arc<Inner>,
    head: &Head,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_index: u64,
) -> Result<Response, ServeError> {
    // A server started without an index has no search surface at all.
    let Some(search) = inner.search.as_ref() else {
        return Err(ServeError::NotFound { path: head.path.clone() });
    };
    if inner.shutting_down.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    let budget_ms = match head.header("x-deadline-ms") {
        None => inner.cfg.default_deadline_ms,
        Some(v) => Some(v.parse::<u64>().map_err(|_| ServeError::BadRequest {
            detail: "X-Deadline-Ms must be an integer millisecond budget".into(),
        })?),
    };
    if head.expects_continue() {
        http::write_continue(writer)
            .map_err(|_| ServeError::BadRequest { detail: "client went away".into() })?;
    }
    let body = http::read_body(reader, head, inner.cfg.max_body_bytes)?;

    let content_type = head.header("content-type").unwrap_or("application/json");
    let k;
    if content_type.starts_with("application/octet-stream") {
        k = match head.header("x-search-k") {
            None => DEFAULT_SEARCH_K,
            Some(v) => validate_k(v.parse::<f64>().ok())?,
        };
    } else {
        let parsed = json::parse(&body)
            .map_err(|e| ServeError::BadRequest { detail: format!("bad JSON body: {e}") })?;
        k = match parsed.get("k") {
            None => DEFAULT_SEARCH_K,
            Some(j) => validate_k(j.as_num())?,
        };
        // Query-by-SDL: rank against a parsed description, no model work.
        if let Some(sdl) = parsed.get("sdl") {
            let text = sdl.as_str().ok_or_else(|| ServeError::BadRequest {
                detail: "\"sdl\" must be a string of SDL text".into(),
            })?;
            let query = tsdx_sdl::parse_scenario(text)
                .map_err(|e| ServeError::BadRequest { detail: format!("bad SDL query: {e}") })?;
            let hits = search.query(&query, k).map_err(index_internal)?;
            return Ok(Response::ok(format!(
                "{{\"hits\":{hits},\"k\":{k},\"indexed\":{len},\"request\":{request_index}}}",
                hits = hits_to_json(&hits),
                len = search.len(),
            )));
        }
    }

    // Query-by-clip: extract through the batcher (full admission control,
    // deadline gating, and degrade-under-pressure reuse), then rank.
    let video = decode_video(head, &body)?;
    inner.extractor.validate_window(&video)?;
    let deadline = budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let rx = inner.batcher.submit(video, deadline, budget_ms.unwrap_or(0))?;
    let wait = deadline
        .map(|d| d.saturating_duration_since(Instant::now()) + REPLY_SLACK)
        .unwrap_or(REPLY_SLACK);
    let answer = rx.recv_timeout(wait).map_err(|_| ServeError::Internal {
        detail: "batch worker did not answer within the reply bound".into(),
    })??;
    let hits = search.query(&answer.scenario, k).map_err(index_internal)?;
    Ok(Response::ok(format!(
        concat!(
            "{{\"hits\":{hits},\"k\":{k},\"indexed\":{len},\"scenario\":\"{scenario}\",",
            "\"plane\":\"{plane}\",\"batch_size\":{batch},\"queued_us\":{queued},",
            "\"request\":{index}}}"
        ),
        hits = hits_to_json(&hits),
        k = k,
        len = search.len(),
        scenario = json::escape(&answer.scenario.to_string()),
        plane = answer.plane.label(),
        batch = answer.batch_size,
        queued = answer.queued_us,
        index = request_index,
    )))
}

/// Dispatches the `/sessions` route family.
///
/// * `POST /sessions` — open a session, answer its id;
/// * `POST /sessions/<id>/frames` — push a chunk through the batch queue;
/// * `DELETE /sessions/<id>` — close a session, freeing its slot.
fn session_route(
    inner: &Arc<Inner>,
    head: &Head,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_index: u64,
) -> Result<Response, ServeError> {
    let method = head.method.as_str();
    let path = head.path.as_str();
    if path == "/sessions" {
        if method != "POST" {
            return Err(ServeError::MethodNotAllowed {
                method: head.method.clone(),
                path: head.path.clone(),
            });
        }
        return create_session_endpoint(inner, request_index);
    }
    let rest = &path["/sessions/".len()..];
    let (id_text, tail) = match rest.split_once('/') {
        None => (rest, None),
        Some((id, tail)) => (id, Some(tail)),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return Err(ServeError::NotFound { path: head.path.clone() });
    };
    match (method, tail) {
        ("DELETE", None) => {
            inner.sessions.close(id)?;
            Ok(Response::ok(format!(
                "{{\"session\":{id},\"status\":\"closed\",\"request\":{request_index}}}"
            )))
        }
        (_, None) => Err(ServeError::MethodNotAllowed {
            method: head.method.clone(),
            path: head.path.clone(),
        }),
        ("POST", Some("frames")) => frames_endpoint(inner, head, reader, writer, id, request_index),
        (_, Some("frames")) => Err(ServeError::MethodNotAllowed {
            method: head.method.clone(),
            path: head.path.clone(),
        }),
        _ => Err(ServeError::NotFound { path: head.path.clone() }),
    }
}

/// `POST /sessions`: opens a streaming session sized to the server's model.
fn create_session_endpoint(inner: &Arc<Inner>, request_index: u64) -> Result<Response, ServeError> {
    if inner.shutting_down.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    let entry = inner.sessions.create(*inner.extractor.model().config())?;
    let cfg = inner.extractor.model().config();
    Ok(Response::ok(format!(
        concat!(
            "{{\"session\":{id},\"window_frames\":{frames},",
            "\"frame_shape\":[{h},{w}],\"tubelet_t\":{tt},\"request\":{index}}}"
        ),
        id = entry.id(),
        frames = cfg.frames,
        h = cfg.height,
        w = cfg.width,
        tt = cfg.tubelet_t,
        index = request_index,
    )))
}

/// `POST /sessions/<id>/frames`: read and decode a chunk (same body
/// encodings as `/v1/extract`, any frame count), admit it into the mixed
/// batch queue, and answer with the session's current window state. Newly
/// completed time groups are encoded alongside every other stream in the
/// same drain round — one cross-stream spatial forward.
fn frames_endpoint(
    inner: &Arc<Inner>,
    head: &Head,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    id: u64,
    request_index: u64,
) -> Result<Response, ServeError> {
    if inner.shutting_down.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    let budget_ms = match head.header("x-deadline-ms") {
        None => inner.cfg.default_deadline_ms,
        Some(v) => Some(v.parse::<u64>().map_err(|_| ServeError::BadRequest {
            detail: "X-Deadline-Ms must be an integer millisecond budget".into(),
        })?),
    };
    if head.expects_continue() {
        http::write_continue(writer)
            .map_err(|_| ServeError::BadRequest { detail: "client went away".into() })?;
    }
    // A torn upload (client disconnect mid-chunk) fails here, before the
    // session is looked up or touched: the stream keeps its pre-push state
    // and the client can resend the whole chunk.
    let body = http::read_body(reader, head, inner.cfg.max_body_bytes)?;
    let chunk = decode_video(head, &body)?;
    let entry = inner.sessions.get(id)?;

    let deadline = budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let rx = inner.batcher.submit_stream(entry, chunk, deadline, budget_ms.unwrap_or(0))?;
    let wait = deadline
        .map(|d| d.saturating_duration_since(Instant::now()) + REPLY_SLACK)
        .unwrap_or(REPLY_SLACK);
    let answer = rx.recv_timeout(wait).map_err(|_| ServeError::Internal {
        detail: "batch worker did not answer within the reply bound".into(),
    })??;
    let scenario = match &answer.scenario {
        Some(s) => format!("\"{}\"", json::escape(&s.to_string())),
        None => "null".into(),
    };
    Ok(Response::ok(format!(
        concat!(
            "{{\"session\":{id},\"groups_new\":{gn},\"frames_seen\":{fs},",
            "\"ready\":{ready},\"scenario\":{scenario},\"plane\":\"{plane}\",",
            "\"mux_streams\":{ms},\"mux_groups\":{mg},\"queued_us\":{queued},",
            "\"request\":{index}}}"
        ),
        id = answer.session,
        gn = answer.groups_new,
        fs = answer.frames_seen,
        ready = answer.ready,
        scenario = scenario,
        plane = answer.plane.label(),
        ms = answer.mux_streams,
        mg = answer.mux_groups,
        queued = answer.queued_us,
        index = request_index,
    )))
}

/// Bounds a requested hit count: an integer in `1..=MAX_SEARCH_K`.
fn validate_k(k: Option<f64>) -> Result<usize, ServeError> {
    k.filter(|n| n.fract() == 0.0 && (1.0..=MAX_SEARCH_K as f64).contains(n))
        .map(|n| n as usize)
        .ok_or_else(|| ServeError::BadRequest {
            detail: format!("k must be an integer in 1..={MAX_SEARCH_K}"),
        })
}

/// The index is constructed server-side, so a scan error is our bug, not
/// the client's: surface it as a 500 with the typed detail.
fn index_internal(e: tsdx_index::IndexError) -> ServeError {
    ServeError::Internal { detail: format!("index scan failed: {e}") }
}

/// Decodes a request body into a `[T, H, W]` video tensor.
///
/// Two encodings:
/// * `application/octet-stream` — raw little-endian f32 pixels, shape in an
///   `X-Video-Shape: TxHxW` header (the fast path; `servebench` uses it);
/// * JSON (the default) — `{"shape":[T,H,W],"pixels":[...]}`.
fn decode_video(head: &Head, body: &[u8]) -> Result<Tensor, ServeError> {
    let content_type = head.header("content-type").unwrap_or("application/json");
    if content_type.starts_with("application/octet-stream") {
        let shape_header = head.header("x-video-shape").ok_or_else(|| ServeError::BadRequest {
            detail: "octet-stream bodies need an X-Video-Shape: TxHxW header".into(),
        })?;
        let dims: Vec<usize> = shape_header
            .split('x')
            .map(|d| d.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| ServeError::BadRequest {
                detail: "X-Video-Shape must be three integers like 8x32x32".into(),
            })?;
        let [t, h, w] = dims[..] else {
            return Err(ServeError::BadRequest {
                detail: "X-Video-Shape must have exactly three dimensions".into(),
            });
        };
        let numel = checked_numel(t, h, w)?;
        if body.len() != numel * 4 {
            return Err(ServeError::BadRequest {
                detail: format!(
                    "body is {} bytes but {t}x{h}x{w} f32 pixels need {}",
                    body.len(),
                    numel * 4
                ),
            });
        }
        let pixels: Vec<f32> =
            body.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        Ok(Tensor::from_vec(pixels, &[t, h, w]))
    } else {
        let parsed = json::parse(body)
            .map_err(|e| ServeError::BadRequest { detail: format!("bad JSON body: {e}") })?;
        let dim = |j: &Json| -> Option<usize> {
            let n = j.as_num()?;
            (n.fract() == 0.0 && (0.0..=1e9).contains(&n)).then_some(n as usize)
        };
        let shape: Vec<usize> = parsed
            .get("shape")
            .and_then(Json::as_arr)
            .and_then(|a| a.iter().map(&dim).collect::<Option<Vec<_>>>())
            .ok_or_else(|| ServeError::BadRequest {
                detail: "body needs \"shape\": an array of non-negative integers".into(),
            })?;
        let [t, h, w] = shape[..] else {
            return Err(ServeError::BadRequest {
                detail: "\"shape\" must be exactly [frames, height, width]".into(),
            });
        };
        let numel = checked_numel(t, h, w)?;
        let pixels: Vec<f32> = parsed
            .get("pixels")
            .and_then(Json::as_arr)
            .and_then(|a| {
                a.iter().map(|j| j.as_num().map(|n| n as f32)).collect::<Option<Vec<_>>>()
            })
            .ok_or_else(|| ServeError::BadRequest {
                detail: "body needs \"pixels\": an array of numbers".into(),
            })?;
        if pixels.len() != numel {
            return Err(ServeError::BadRequest {
                detail: format!(
                    "\"pixels\" has {} values but shape {t}x{h}x{w} needs {numel}",
                    pixels.len()
                ),
            });
        }
        Ok(Tensor::from_vec(pixels, &[t, h, w]))
    }
}

fn checked_numel(t: usize, h: usize, w: usize) -> Result<usize, ServeError> {
    t.checked_mul(h)
        .and_then(|th| th.checked_mul(w))
        .filter(|&n| n <= (1 << 30))
        .ok_or_else(|| ServeError::BadRequest { detail: "video shape is absurdly large".into() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head_with(headers: &[(&str, &str)]) -> Head {
        Head {
            method: "POST".into(),
            path: "/v1/extract".into(),
            headers: headers.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }

    #[test]
    fn octet_stream_bodies_decode_with_shape_header() {
        let pixels: Vec<u8> =
            [0.5f32, -1.0, 2.0, 0.0].iter().flat_map(|f| f.to_le_bytes()).collect();
        let head =
            head_with(&[("content-type", "application/octet-stream"), ("x-video-shape", "1x2x2")]);
        let t = decode_video(&head, &pixels).unwrap();
        assert_eq!(t.shape(), &[1, 2, 2]);
        assert_eq!(t.data(), &[0.5, -1.0, 2.0, 0.0]);

        let wrong_len = decode_video(&head, &pixels[..12]);
        assert!(matches!(wrong_len, Err(ServeError::BadRequest { .. })));
        let no_shape = head_with(&[("content-type", "application/octet-stream")]);
        assert!(matches!(decode_video(&no_shape, &pixels), Err(ServeError::BadRequest { .. })));
        let bad_shape =
            head_with(&[("content-type", "application/octet-stream"), ("x-video-shape", "1x-2x2")]);
        assert!(matches!(decode_video(&bad_shape, &pixels), Err(ServeError::BadRequest { .. })));
    }

    #[test]
    fn json_bodies_decode_and_misshapes_are_typed() {
        let head = head_with(&[]);
        let t = decode_video(&head, br#"{"shape":[1,2,2],"pixels":[1,2,3,4]}"#).unwrap();
        assert_eq!(t.shape(), &[1, 2, 2]);
        for bad in [
            &b"not json"[..],
            br#"{"shape":[1,2],"pixels":[1,2]}"#,
            br#"{"shape":[1,2,2],"pixels":[1,2,3]}"#,
            br#"{"shape":[1,2,2.5],"pixels":[1,2,3,4,5]}"#,
            br#"{"pixels":[1,2,3,4]}"#,
            br#"{"shape":[1,2,2]}"#,
            br#"{"shape":[99999999,99999999,99999999],"pixels":[]}"#,
        ] {
            let e = decode_video(&head, bad);
            assert!(matches!(e, Err(ServeError::BadRequest { .. })), "{e:?}");
        }
    }

    #[test]
    fn numel_overflow_is_rejected() {
        assert!(checked_numel(usize::MAX, 2, 2).is_err());
        assert!(checked_numel(1 << 29, 4, 4).is_err());
        assert_eq!(checked_numel(8, 32, 32).unwrap(), 8192);
    }
}
