//! Shared helpers for the serve integration tests: a tiny model and a
//! bare-bones blocking HTTP client over `TcpStream`.

// Each suite compiles its own copy and uses the subset it needs.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use tsdx_core::{ModelConfig, ScenarioExtractor, VideoScenarioTransformer};

/// The smallest config the encoder accepts; one valid clip is `[4, 16, 16]`.
pub fn tiny_config() -> ModelConfig {
    ModelConfig {
        frames: 4,
        height: 16,
        width: 16,
        tubelet_t: 2,
        patch: 8,
        dim: 16,
        spatial_depth: 1,
        temporal_depth: 1,
        heads: 2,
        dropout: 0.0,
        ..ModelConfig::default()
    }
}

/// An extractor over an untrained tiny model (outputs are arbitrary but
/// deterministic — the tests assert service behavior, not accuracy).
pub fn tiny_extractor() -> ScenarioExtractor {
    ScenarioExtractor::new(VideoScenarioTransformer::new(tiny_config(), 0))
}

/// A valid clip body for [`tiny_config`]: 4·16·16 f32 pixels in `[0, 1)`.
pub fn valid_pixels() -> Vec<f32> {
    (0..4 * 16 * 16).map(|i| (i % 97) as f32 / 97.0).collect()
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// A blocking keep-alive HTTP/1.1 client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, writer: stream }
    }

    /// Writes raw request bytes (caller is responsible for framing).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one full response. Skips interim `100 Continue` responses.
    pub fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        loop {
            let resp = self.read_one()?;
            if resp.status != 100 {
                return Ok(resp);
            }
        }
    }

    fn read_one(&mut self) -> std::io::Result<HttpResponse> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line: {line:?}"));
        let mut headers = Vec::new();
        loop {
            let mut h = String::new();
            self.reader.read_line(&mut h)?;
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                headers.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(HttpResponse { status, headers, body: String::from_utf8_lossy(&body).into_owned() })
    }

    /// Sends a request with a body and reads the response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        let mut req = format!("{method} {path} HTTP/1.1\r\nhost: test\r\n");
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        if !body.is_empty() || method == "POST" {
            req.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        req.push_str("\r\n");
        self.send_raw(req.as_bytes())?;
        self.send_raw(body)?;
        self.read_response()
    }
}

/// One-shot GET against `addr`.
pub fn get(addr: SocketAddr, path: &str) -> HttpResponse {
    Client::connect(addr).request("GET", path, &[], b"").expect("GET should get a response")
}

/// One-shot `POST /v1/extract` with an octet-stream body of `pixels` and
/// the given `TxHxW` shape string.
pub fn post_clip(
    addr: SocketAddr,
    shape: &str,
    pixels: &[f32],
    extra: &[(&str, &str)],
) -> std::io::Result<HttpResponse> {
    let body: Vec<u8> = pixels.iter().flat_map(|f| f.to_le_bytes()).collect();
    let mut headers = vec![("content-type", "application/octet-stream"), ("x-video-shape", shape)];
    headers.extend_from_slice(extra);
    Client::connect(addr).request("POST", "/v1/extract", &headers, &body)
}
