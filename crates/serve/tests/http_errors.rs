//! The HTTP error-mapping contract: every way a request can be wrong maps
//! to a stable status code and a typed JSON body — and no byte sequence,
//! however malformed or truncated, can panic or hang the server.

mod common;

use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use common::{get, post_clip, tiny_extractor, valid_pixels, Client};
use proptest::prelude::*;
use tsdx_core::ExtractError;
use tsdx_serve::{ServeError, Server, ServerConfig};

/// Every `ExtractError` variant has a stable status and kind string — the
/// wire contract clients and dashboards key on.
#[test]
fn every_extract_error_variant_maps_stably() {
    let cases: Vec<(ExtractError, &str)> = vec![
        (ExtractError::BadRank { found: 2 }, "bad_rank"),
        (ExtractError::BadShape { expected: [4, 16, 16], found: vec![4, 16, 8] }, "bad_shape"),
        (ExtractError::NonFinite { index: 7 }, "non_finite"),
        (ExtractError::Empty, "empty"),
        (ExtractError::TooShort { frames: 2, min: 4 }, "too_short"),
        (ExtractError::BadFrameShape { expected: [16, 16], found: [16, 8] }, "bad_frame_shape"),
    ];
    for (e, kind) in cases {
        let serve_err = ServeError::from(e);
        assert_eq!(serve_err.status(), 422, "{kind} must be 422");
        assert_eq!(serve_err.kind(), kind);
        assert!(!serve_err.retryable(), "validation failures are not retryable");
        let body = serve_err.to_json();
        let parsed = tsdx_serve::json::parse(body.as_bytes()).expect("error body is JSON");
        let err = parsed.get("error").expect("error envelope");
        assert_eq!(err.get("kind"), Some(&tsdx_serve::json::Json::Str(kind.into())));
        assert_eq!(err.get("status").and_then(|j| j.as_num()), Some(422.0));
    }
}

/// The reachable validation failures, exercised over a real socket.
#[test]
fn invalid_videos_get_422_over_the_wire() {
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Wrong spatial shape.
    let resp = post_clip(addr, "4x16x8", &vec![0.0; 4 * 16 * 8], &[]).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"bad_shape\""), "{}", resp.body);

    // No frames at all.
    let resp = post_clip(addr, "0x16x16", &[], &[]).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"empty\""), "{}", resp.body);

    // Too few frames for one window.
    let resp = post_clip(addr, "2x16x16", &vec![0.0; 2 * 16 * 16], &[]).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"too_short\""), "{}", resp.body);

    // A NaN pixel — unrepresentable in JSON, so sent on the binary path.
    let mut pixels = valid_pixels();
    pixels[100] = f32::NAN;
    let resp = post_clip(addr, "4x16x16", &pixels, &[]).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"non_finite\""), "{}", resp.body);

    server.shutdown();
}

/// Routing and framing failures, each with its stable status.
#[test]
fn routing_and_framing_failures_are_typed() {
    let cfg = ServerConfig { max_body_bytes: 1024, ..ServerConfig::default() };
    let mut server = Server::start(tiny_extractor(), cfg).unwrap();
    let addr = server.local_addr();

    let resp = get(addr, "/no/such/path");
    assert_eq!(resp.status, 404);
    assert!(resp.body.contains("\"kind\":\"not_found\""), "{}", resp.body);

    let resp = Client::connect(addr).request("DELETE", "/v1/extract", &[], b"").unwrap();
    assert_eq!(resp.status, 405);
    assert!(resp.body.contains("\"kind\":\"method_not_allowed\""), "{}", resp.body);

    let mut c = Client::connect(addr);
    let resp = c.request("POST", "/v1/extract", &[], b"this is not json").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("\"kind\":\"bad_request\""), "{}", resp.body);

    // Over the body limit: 413 names the limit.
    let resp = post_clip(addr, "4x16x16", &valid_pixels(), &[]).unwrap();
    assert_eq!(resp.status, 413, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"payload_too_large\""), "{}", resp.body);

    // A bad deadline header is caught before any body handling.
    let resp = Client::connect(addr)
        .request("POST", "/v1/extract", &[("x-deadline-ms", "soon")], b"{}")
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    // Garbage on the wire: typed 400, then the connection closes.
    let mut c = Client::connect(addr);
    c.send_raw(b"GARBAGE WITHOUT MEANING\r\n\r\n").unwrap();
    let resp = c.read_response().unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(resp.header("connection"), Some("close"));

    server.shutdown();
}

/// A client that disconnects mid-body can never wedge a handler: the
/// server sees the truncation and moves on, and the next connection works.
#[test]
fn truncated_bodies_close_cleanly_and_the_listener_survives() {
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    w.write_all(b"POST /v1/extract HTTP/1.1\r\nhost: t\r\ncontent-length: 4096\r\n\r\nonly-this")
        .unwrap();
    w.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    // The server answers 400 (or just closes) — either way, no hang:
    let mut reader = BufReader::new(stream);
    let _ = std::io::BufRead::fill_buf(&mut reader);

    // And the listener is still alive and correct.
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    server.shutdown();
}

/// A client that connects and stalls is bounded by the read timeout.
#[test]
fn slow_clients_time_out_with_408() {
    let cfg = ServerConfig { read_timeout: Duration::from_millis(200), ..ServerConfig::default() };
    let mut server = Server::start(tiny_extractor(), cfg).unwrap();
    let addr = server.local_addr();

    let mut c = Client::connect(addr);
    // Half a request line, then silence.
    c.send_raw(b"POST /v1/ex").unwrap();
    let resp = c.read_response().unwrap();
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"read_timeout\""), "{}", resp.body);

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // No byte sequence can panic the head parser; the outcome is always
    // a typed result.
    #[test]
    fn arbitrary_bytes_never_panic_the_head_parser(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = tsdx_serve::http::read_head(&mut BufReader::new(bytes.as_slice()));
    }

    // No byte sequence can panic the JSON parser.
    #[test]
    fn arbitrary_bytes_never_panic_the_json_parser(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = tsdx_serve::json::parse(&bytes);
    }

    // Truncating a valid request at any byte still yields a typed result
    // from the parser stack (a `Head`, a clean EOF, or a `BadRequest`) —
    // the failure mode a dying client actually produces.
    #[test]
    fn truncated_valid_requests_stay_typed(cut in 0usize..120) {
        let full = b"POST /v1/extract HTTP/1.1\r\nhost: t\r\ncontent-length: 20\r\n\r\n{\"shape\":[1],\"pixels\"";
        let cut = cut.min(full.len());
        let mut r = BufReader::new(&full[..cut]);
        if let Ok(Some(head)) = tsdx_serve::http::read_head(&mut r) {
            let _ = tsdx_serve::http::read_body(&mut r, &head, 1024);
        }
    }
}
