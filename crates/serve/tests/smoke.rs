//! End-to-end smoke: boot a real server on a real socket, health-check it,
//! run extraction round-trips in both encodings, and prove graceful
//! shutdown answers everything already admitted.
//!
//! `scripts/check.sh` runs this file as its serve smoke stage under
//! `TSDX_NUM_THREADS=2`.

mod common;

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use common::{get, post_clip, tiny_extractor, valid_pixels, Client};
use tsdx_sdl::parse_scenario;
use tsdx_serve::{BatchConfig, SearchService, Server, ServerConfig};

fn test_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

#[test]
fn health_ready_stats_round_trip() {
    let mut server = Server::start(tiny_extractor(), test_config()).unwrap();
    let addr = server.local_addr();

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200, "{}", health.body);
    assert!(health.body.contains("\"ok\""));

    let ready = get(addr, "/readyz");
    assert_eq!(ready.status, 200, "{}", ready.body);
    assert!(ready.body.contains("\"ready\":true"));

    let stats = get(addr, "/stats");
    assert_eq!(stats.status, 200);
    assert!(
        tsdx_serve::json::parse(stats.body.as_bytes()).is_ok(),
        "stats must be valid JSON: {}",
        stats.body
    );

    server.shutdown();
}

#[test]
fn extraction_round_trips_in_both_encodings() {
    let mut server = Server::start(tiny_extractor(), test_config()).unwrap();
    let addr = server.local_addr();
    let pixels = valid_pixels();

    // Fast path: raw f32 little-endian body + shape header.
    let resp = post_clip(addr, "4x16x16", &pixels, &[]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = tsdx_serve::json::parse(resp.body.as_bytes()).unwrap();
    let scenario = parsed.get("scenario").expect("response carries a scenario");
    assert!(matches!(scenario, tsdx_serve::json::Json::Str(s) if s.contains("ego ")));
    assert!(resp.body.contains("\"plane\":\"f32\""), "{}", resp.body);

    // JSON path answers the same scenario for the same pixels.
    let pixel_list = pixels.iter().map(|p| format!("{p}")).collect::<Vec<_>>().join(",");
    let body = format!("{{\"shape\":[4,16,16],\"pixels\":[{pixel_list}]}}");
    let mut c = Client::connect(addr);
    let json_resp = c.request("POST", "/v1/extract", &[], body.as_bytes()).unwrap();
    assert_eq!(json_resp.status, 200, "{}", json_resp.body);
    let json_parsed = tsdx_serve::json::parse(json_resp.body.as_bytes()).unwrap();
    assert_eq!(json_parsed.get("scenario"), parsed.get("scenario"));

    server.shutdown();
}

fn tiny_corpus() -> Arc<SearchService> {
    Arc::new(SearchService::build(
        [
            "ego cruise; vehicle leading ahead; road straight",
            "ego decelerate-to-stop; pedestrian crossing; road intersection",
            "ego turn-left; road intersection",
            "ego accelerate; cyclist crossing left; road straight",
        ]
        .iter()
        .map(|t| parse_scenario(t).expect("valid SDL")),
    ))
}

#[test]
fn search_by_sdl_round_trips_with_typed_rejections() {
    let mut server =
        Server::start_with_search(tiny_extractor(), Some(tiny_corpus()), test_config()).unwrap();
    let addr = server.local_addr();

    let body = br#"{"sdl":"ego turn-left; road intersection","k":2}"#;
    let resp = Client::connect(addr).request("POST", "/search", &[], body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = tsdx_serve::json::parse(resp.body.as_bytes()).unwrap();
    let hits = parsed.get("hits").and_then(|h| h.as_arr()).expect("hits array");
    assert_eq!(hits.len(), 2);
    // The query is itself indexed (id 2): exact match first.
    assert_eq!(hits[0].get("id").and_then(|j| j.as_num()), Some(2.0));
    let sim = hits[0].get("similarity").and_then(|j| j.as_num()).expect("similarity");
    assert!((sim - 1.0).abs() < 1e-4, "{sim}");
    assert!(matches!(
        hits[0].get("sdl"),
        Some(tsdx_serve::json::Json::Str(s)) if s == "ego turn-left; road intersection"
    ));
    assert_eq!(parsed.get("indexed").and_then(|j| j.as_num()), Some(4.0));

    // Malformed queries are typed 400s, wrong method a 405.
    for bad in [
        &br#"{"sdl":"ego warp-drive; road moon"}"#[..],
        br#"{"sdl":42}"#,
        br#"{"sdl":"ego cruise; road straight","k":0}"#,
        br#"{"sdl":"ego cruise; road straight","k":1e9}"#,
    ] {
        let r = Client::connect(addr).request("POST", "/search", &[], bad).unwrap();
        assert_eq!(r.status, 400, "{bad:?} gave {}", r.body);
    }
    let r = Client::connect(addr).request("GET", "/search", &[], b"").unwrap();
    assert_eq!(r.status, 405, "{}", r.body);

    server.shutdown();
}

#[test]
fn search_by_clip_round_trips_in_both_encodings() {
    let mut server =
        Server::start_with_search(tiny_extractor(), Some(tiny_corpus()), test_config()).unwrap();
    let addr = server.local_addr();
    let pixels = valid_pixels();

    // Fast path: raw pixels + shape header, k from X-Search-K.
    let body: Vec<u8> = pixels.iter().flat_map(|f| f.to_le_bytes()).collect();
    let headers = [
        ("content-type", "application/octet-stream"),
        ("x-video-shape", "4x16x16"),
        ("x-search-k", "3"),
    ];
    let resp = Client::connect(addr).request("POST", "/search", &headers, &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = tsdx_serve::json::parse(resp.body.as_bytes()).unwrap();
    let hits = parsed.get("hits").and_then(|h| h.as_arr()).expect("hits array");
    assert_eq!(hits.len(), 3);
    assert!(matches!(
        parsed.get("scenario"),
        Some(tsdx_serve::json::Json::Str(s)) if s.contains("ego ")
    ));
    assert!(resp.body.contains("\"plane\":\"f32\""), "{}", resp.body);

    // JSON clip variant: same pixels, k in the body, identical extraction.
    let pixel_list = pixels.iter().map(|p| format!("{p}")).collect::<Vec<_>>().join(",");
    let json_body = format!("{{\"shape\":[4,16,16],\"pixels\":[{pixel_list}],\"k\":3}}");
    let json_resp =
        Client::connect(addr).request("POST", "/search", &[], json_body.as_bytes()).unwrap();
    assert_eq!(json_resp.status, 200, "{}", json_resp.body);
    let json_parsed = tsdx_serve::json::parse(json_resp.body.as_bytes()).unwrap();
    assert_eq!(json_parsed.get("scenario"), parsed.get("scenario"));
    assert_eq!(json_parsed.get("hits"), parsed.get("hits"));

    server.shutdown();
}

#[test]
fn search_without_an_index_is_not_found() {
    let mut server = Server::start(tiny_extractor(), test_config()).unwrap();
    let body = br#"{"sdl":"ego cruise; road straight"}"#;
    let resp = Client::connect(server.local_addr()).request("POST", "/search", &[], body).unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    server.shutdown();
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let mut server = Server::start(tiny_extractor(), test_config()).unwrap();
    let mut c = Client::connect(server.local_addr());
    for _ in 0..3 {
        let r = c.request("GET", "/healthz", &[], b"").unwrap();
        assert_eq!(r.status, 200);
    }
    // An explicit Connection: close is honored.
    let r = c.request("GET", "/healthz", &[("connection", "close")], b"").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("connection"), Some("close"));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_everything_admitted() {
    let cfg = ServerConfig {
        batch: BatchConfig { max_batch: 4, ..BatchConfig::default() },
        ..test_config()
    };
    let mut server = Server::start(tiny_extractor(), cfg).unwrap();
    let addr = server.local_addr();
    let pixels = valid_pixels();

    // A burst of concurrent extractions...
    let clients: Vec<_> = (0..6)
        .map(|_| {
            let pixels = pixels.clone();
            std::thread::spawn(move || post_clip(addr, "4x16x16", &pixels, &[]).unwrap().status)
        })
        .collect();
    // ...and a graceful shutdown racing them.
    std::thread::sleep(Duration::from_millis(20));
    server.shutdown();

    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    // Every request got a typed answer: 200 if admitted, 503 if it arrived
    // after draining began. Nothing was accepted-then-dropped.
    for s in &statuses {
        assert!(*s == 200 || *s == 503, "unexpected status {s} in {statuses:?}");
    }
    let stats = server.stats();
    let accepted = stats.accepted.load(Ordering::Relaxed);
    let completed = stats.completed.load(Ordering::Relaxed);
    assert_eq!(
        accepted, completed,
        "drain must answer every admitted request (accepted={accepted} completed={completed})"
    );
    assert_eq!(statuses.iter().filter(|&&s| s == 200).count() as u64, completed);

    // The listener is gone: readiness probes now fail to connect.
    assert!(
        std::net::TcpStream::connect(addr).is_err() || {
            // Accept loop may have exited with the socket still in TIME_WAIT on
            // some kernels; a connect that succeeds must at least get no answer.
            let mut c = Client::connect(addr);
            c.request("GET", "/readyz", &[], b"").map(|r| r.status == 503).unwrap_or(true)
        }
    );
}

#[test]
fn admin_shutdown_endpoint_drains_remotely() {
    let mut server = Server::start(tiny_extractor(), test_config()).unwrap();
    let addr = server.local_addr();

    let resp = Client::connect(addr).request("POST", "/admin/shutdown", &[], b"").unwrap();
    assert_eq!(resp.status, 202, "{}", resp.body);
    assert!(resp.body.contains("draining"));

    // The server refuses new work while draining and is fully down soon.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match std::net::TcpStream::connect(addr) {
            Err(_) => break, // listener closed: drained
            Ok(_) => {
                assert!(std::time::Instant::now() < deadline, "drain never finished");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    server.shutdown(); // idempotent
}
