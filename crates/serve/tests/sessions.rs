//! End-to-end coverage of the multiplexed streaming session routes:
//! lifecycle, parity with independent core sessions, typed limits and
//! evictions, and the `/stats` observability fields they feed.

mod common;

use std::net::SocketAddr;
use std::time::Duration;

use common::{get, tiny_extractor, Client, HttpResponse};
use tsdx_serve::{json, Server, ServerConfig, SessionConfig};

/// `POST /sessions`, returning the new session id.
fn create_session(addr: SocketAddr) -> u64 {
    let resp = Client::connect(addr).request("POST", "/sessions", &[], b"").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    parse_u64_field(&resp.body, "session")
}

/// `POST /sessions/<id>/frames` with an octet-stream chunk.
fn push_chunk(addr: SocketAddr, id: u64, shape: &str, pixels: &[f32]) -> HttpResponse {
    let body: Vec<u8> = pixels.iter().flat_map(|f| f.to_le_bytes()).collect();
    Client::connect(addr)
        .request(
            "POST",
            &format!("/sessions/{id}/frames"),
            &[("content-type", "application/octet-stream"), ("x-video-shape", shape)],
            &body,
        )
        .unwrap()
}

/// Extracts `"name":<u64>` from a flat JSON body.
fn parse_u64_field(body: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let at = body.find(&key).unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in {body}"))
}

/// Frames for stream `s`, chunk `c`: distinct per stream so parity checks
/// cannot pass by accident.
fn chunk_pixels(s: usize, c: usize) -> Vec<f32> {
    (0..2 * 16 * 16).map(|i| ((i + 1000 * s + 131 * c) as f32 * 0.011).sin()).collect()
}

fn chunk_tensor(s: usize, c: usize) -> tsdx_tensor::Tensor {
    tsdx_tensor::Tensor::from_vec(chunk_pixels(s, c), &[2, 16, 16])
}

#[test]
fn session_lifecycle_round_trip() {
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let id = create_session(addr);
    assert!(id > 0);
    // The create response describes the window the stream must fill.
    let resp = Client::connect(addr).request("POST", "/sessions", &[], b"").unwrap();
    assert!(resp.body.contains("\"window_frames\":4"), "{}", resp.body);
    assert!(resp.body.contains("\"frame_shape\":[16,16]"), "{}", resp.body);

    // Half a window: accepted, staged+encoded, not yet describable.
    let resp = push_chunk(addr, id, "2x16x16", &chunk_pixels(0, 0));
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"ready\":false"), "{}", resp.body);
    assert!(resp.body.contains("\"scenario\":null"), "{}", resp.body);
    assert_eq!(parse_u64_field(&resp.body, "groups_new"), 1);
    assert_eq!(parse_u64_field(&resp.body, "frames_seen"), 2);

    // The second half completes the window and answers a scenario.
    let resp = push_chunk(addr, id, "2x16x16", &chunk_pixels(0, 1));
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"ready\":true"), "{}", resp.body);
    assert!(resp.body.contains("\"scenario\":\""), "{}", resp.body);
    assert_eq!(parse_u64_field(&resp.body, "frames_seen"), 4);

    // Close frees the slot; everything after is a typed 404.
    let resp =
        Client::connect(addr).request("DELETE", &format!("/sessions/{id}"), &[], b"").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"status\":\"closed\""), "{}", resp.body);
    let resp = push_chunk(addr, id, "2x16x16", &chunk_pixels(0, 2));
    assert_eq!(resp.status, 404, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"unknown_session\""), "{}", resp.body);
    let resp =
        Client::connect(addr).request("DELETE", &format!("/sessions/{id}"), &[], b"").unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);

    server.shutdown();
}

#[test]
fn interleaved_http_streams_match_independent_core_sessions() {
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    // The same deterministic weights the server holds.
    let reference = tiny_extractor();

    let ids: Vec<u64> = (0..3).map(|_| create_session(addr)).collect();
    let mut solo: Vec<_> = (0..3).map(|_| reference.open_stream()).collect();

    // Six chunks per stream (three sliding windows), pushed round-robin so
    // consecutive HTTP pushes belong to different sessions.
    for c in 0..6 {
        for (s, &id) in ids.iter().enumerate() {
            let resp = push_chunk(addr, id, "2x16x16", &chunk_pixels(s, c));
            assert_eq!(resp.status, 200, "{}", resp.body);
            solo[s].push_frames(&chunk_tensor(s, c)).unwrap();
            if c >= 1 {
                // Window complete: the HTTP answer must match the
                // independent single-stream session bit for bit (the
                // scenario string is a function of the head logits).
                let expected = format!(
                    "\"scenario\":\"{}\"",
                    json::escape(&solo[s].describe().unwrap().to_string())
                );
                assert!(
                    resp.body.contains(&expected),
                    "stream {s} chunk {c}: {} !~ {expected}",
                    resp.body
                );
            } else {
                assert!(resp.body.contains("\"scenario\":null"), "{}", resp.body);
            }
        }
    }

    // The cross-stream occupancy histogram is exposed; every push also
    // bumps the stream counter.
    let stats = get(addr, "/stats");
    assert_eq!(stats.status, 200);
    assert_eq!(parse_u64_field(&stats.body, "stream_pushes"), 18);
    assert!(stats.body.contains("\"occupancy\""), "{}", stats.body);
    assert!(stats.body.contains("\"active_sessions\":3"), "{}", stats.body);
    assert_eq!(parse_u64_field(&stats.body, "sessions_opened"), 3);

    server.shutdown();
}

#[test]
fn session_paths_answer_typed_404s_and_405s() {
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let resp = Client::connect(addr).request("GET", "/sessions", &[], b"").unwrap();
    assert_eq!(resp.status, 405, "{}", resp.body);
    let resp = Client::connect(addr).request("PUT", "/sessions/1", &[], b"").unwrap();
    assert_eq!(resp.status, 405, "{}", resp.body);
    let resp = Client::connect(addr).request("GET", "/sessions/1/frames", &[], b"").unwrap();
    assert_eq!(resp.status, 405, "{}", resp.body);
    let resp = Client::connect(addr).request("POST", "/sessions/abc/frames", &[], b"").unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    let resp = Client::connect(addr).request("POST", "/sessions/1/nope", &[], b"").unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    let resp = Client::connect(addr).request("DELETE", "/sessions/424242", &[], b"").unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"unknown_session\""), "{}", resp.body);

    // A bad chunk on a real session is a 422 with the model's taxonomy.
    let id = create_session(addr);
    let resp = push_chunk(addr, id, "2x8x8", &[0.0; 2 * 8 * 8]);
    assert_eq!(resp.status, 422, "{}", resp.body);
    server.shutdown();
}

#[test]
fn session_table_capacity_is_a_typed_retryable_429() {
    let cfg = ServerConfig {
        sessions: SessionConfig { max_sessions: 2, ..SessionConfig::default() },
        ..ServerConfig::default()
    };
    let mut server = Server::start(tiny_extractor(), cfg).unwrap();
    let addr = server.local_addr();

    let a = create_session(addr);
    let _b = create_session(addr);
    let resp = Client::connect(addr).request("POST", "/sessions", &[], b"").unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"session_limit\""), "{}", resp.body);
    assert!(resp.body.contains("\"retryable\":true"), "{}", resp.body);
    assert!(resp.header("retry-after").is_some(), "sheds advertise a backoff");

    // Closing one stream frees the slot for the retry.
    let resp =
        Client::connect(addr).request("DELETE", &format!("/sessions/{a}"), &[], b"").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let _c = create_session(addr);
    let stats = get(addr, "/stats");
    assert_eq!(parse_u64_field(&stats.body, "shed_sessions"), 1);
    server.shutdown();
}

#[test]
fn idle_sessions_are_evicted_and_counted() {
    let cfg = ServerConfig {
        sessions: SessionConfig { idle_ttl: Duration::from_millis(60), ..SessionConfig::default() },
        ..ServerConfig::default()
    };
    let mut server = Server::start(tiny_extractor(), cfg).unwrap();
    let addr = server.local_addr();

    let id = create_session(addr);
    let resp = push_chunk(addr, id, "2x16x16", &chunk_pixels(0, 0));
    assert_eq!(resp.status, 200, "{}", resp.body);

    // Past the TTL the next touch evicts the abandoned stream.
    std::thread::sleep(Duration::from_millis(120));
    let resp = push_chunk(addr, id, "2x16x16", &chunk_pixels(0, 1));
    assert_eq!(resp.status, 404, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"unknown_session\""), "{}", resp.body);

    let stats = get(addr, "/stats");
    assert_eq!(parse_u64_field(&stats.body, "evicted_sessions"), 1);
    assert!(stats.body.contains("\"active_sessions\":0"), "{}", stats.body);
    assert_eq!(server.sessions().len(), 0);
    server.shutdown();
}
