//! Injected serve-side faults — an accept-loop stall, a client dying
//! mid-body, a handler panicking — and the invariant they all share: the
//! listener survives and keeps answering.
//!
//! Gated on `--features fault-inject`; `scripts/check.sh` runs it.

#![cfg(feature = "fault-inject")]

mod common;

use std::sync::Mutex;
use std::time::{Duration, Instant};

use common::{get, post_clip, tiny_extractor, valid_pixels};
use tsdx_serve::{Server, ServerConfig};

/// The fault registry is process-global; serialize the tests that arm it.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tsdx_tensor::faults::clear_all();
    guard
}

#[test]
fn accept_stall_delays_but_never_drops_requests() {
    let _guard = locked();
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    tsdx_tensor::faults::arm_accept_stall(300);
    let t0 = Instant::now();
    // The first connection eats the stall; the one behind it queues in the
    // OS backlog and still completes.
    let first = std::thread::spawn(move || get(addr, "/healthz").status);
    let second = std::thread::spawn(move || get(addr, "/healthz").status);
    assert_eq!(first.join().unwrap(), 200);
    assert_eq!(second.join().unwrap(), 200);
    assert!(t0.elapsed() >= Duration::from_millis(300), "the stall must actually bite");

    let resp = post_clip(addr, "4x16x16", &valid_pixels(), &[]).unwrap();
    assert_eq!(resp.status, 200, "listener must keep extracting after the stall");
    server.shutdown();
}

#[test]
fn mid_body_disconnect_is_typed_and_contained() {
    let _guard = locked();
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // The injected fault truncates the body read partway through, exactly
    // what a client dying mid-upload produces.
    tsdx_tensor::faults::arm_body_disconnect(64);
    let resp = post_clip(addr, "4x16x16", &valid_pixels(), &[]).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("mid-body"), "{}", resp.body);

    // Fresh connection, fresh request: full service.
    let resp = post_clip(addr, "4x16x16", &valid_pixels(), &[]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.shutdown();
}

/// `POST /sessions` via the raw client, returning the new id.
fn open_session(addr: std::net::SocketAddr) -> u64 {
    let resp = common::Client::connect(addr).request("POST", "/sessions", &[], b"").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let key = "\"session\":";
    let at = resp.body.find(key).unwrap();
    resp.body[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// `POST /sessions/<id>/frames` with 2 frames of deterministic pixels.
fn push_half_window(addr: std::net::SocketAddr, id: u64, salt: usize) -> common::HttpResponse {
    let pixels: Vec<f32> =
        (0..2 * 16 * 16).map(|i| ((i + 131 * salt) as f32 * 0.011).sin()).collect();
    let body: Vec<u8> = pixels.iter().flat_map(|f| f.to_le_bytes()).collect();
    common::Client::connect(addr)
        .request(
            "POST",
            &format!("/sessions/{id}/frames"),
            &[("content-type", "application/octet-stream"), ("x-video-shape", "2x16x16")],
            &body,
        )
        .unwrap()
}

#[test]
fn mid_chunk_disconnect_leaves_the_session_resumable() {
    let _guard = locked();
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let id = open_session(addr);

    let resp = push_half_window(addr, id, 0);
    assert_eq!(resp.status, 200, "{}", resp.body);

    // The client dies mid-chunk: a typed 400 before the session is even
    // looked up — no torn frames land in the stream.
    tsdx_tensor::faults::arm_body_disconnect(64);
    let resp = push_half_window(addr, id, 1);
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("mid-body"), "{}", resp.body);

    // Resending the same chunk completes the window, and the result matches
    // an untouched independent stream of the same frames: the disconnect
    // left no residue.
    let resp = push_half_window(addr, id, 1);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"ready\":true"), "{}", resp.body);
    assert!(resp.body.contains("\"frames_seen\":4"), "{}", resp.body);
    let reference = tiny_extractor();
    let mut solo = reference.open_stream();
    for salt in [0, 1] {
        let pixels: Vec<f32> =
            (0..2 * 16 * 16).map(|i| ((i + 131 * salt) as f32 * 0.011).sin()).collect();
        solo.push_frames(&tsdx_tensor::Tensor::from_vec(pixels, &[2, 16, 16])).unwrap();
    }
    let expected = format!(
        "\"scenario\":\"{}\"",
        tsdx_serve::json::escape(&solo.describe().unwrap().to_string())
    );
    assert!(resp.body.contains(&expected), "{} !~ {expected}", resp.body);
    server.shutdown();
}

#[test]
fn session_table_exhaustion_is_typed_and_transient() {
    let _guard = locked();
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // The injected fault makes the table report capacity without filling
    // 256 real slots.
    tsdx_tensor::faults::arm_session_table_full();
    let resp = common::Client::connect(addr).request("POST", "/sessions", &[], b"").unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"session_limit\""), "{}", resp.body);
    assert!(resp.body.contains("\"retryable\":true"), "{}", resp.body);

    // The shed is admission-time only: the retry succeeds and streams.
    let id = open_session(addr);
    let resp = push_half_window(addr, id, 0);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(server.stats().shed_sessions.load(std::sync::atomic::Ordering::Relaxed), 1);
    server.shutdown();
}

#[test]
fn session_route_panic_spares_listener_and_other_sessions() {
    let _guard = locked();
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // An innocent bystander session with half a window in flight.
    let id = open_session(addr);
    let resp = push_half_window(addr, id, 0);
    assert_eq!(resp.status, 200, "{}", resp.body);

    // The next session-route handler dies before touching any state.
    tsdx_tensor::faults::arm_session_route_panic();
    let resp = common::Client::connect(addr).request("POST", "/sessions", &[], b"").unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body);
    assert!(resp.body.contains("injected fault"), "{}", resp.body);

    // The listener survives, and the bystander session streams on with its
    // buffered half-window intact.
    assert_eq!(get(addr, "/healthz").status, 200);
    let resp = push_half_window(addr, id, 1);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"ready\":true"), "{}", resp.body);
    assert!(resp.body.contains("\"frames_seen\":4"), "{}", resp.body);
    assert_eq!(server.stats().panics_caught.load(std::sync::atomic::Ordering::Relaxed), 1);
    server.shutdown();
}

#[test]
fn handler_panic_answers_500_and_spares_the_listener() {
    let _guard = locked();
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Request indices are assigned in arrival order; the first request on a
    // fresh server is index 0.
    tsdx_tensor::faults::arm_handler_panic(0);
    let resp = get(addr, "/healthz");
    assert_eq!(resp.status, 500, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"internal\""), "{}", resp.body);
    assert!(resp.body.contains("injected fault"), "{}", resp.body);

    // The panic was contained to that connection: the very next request —
    // including real model work — succeeds.
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    let resp = post_clip(addr, "4x16x16", &valid_pixels(), &[]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(server.stats().panics_caught.load(std::sync::atomic::Ordering::Relaxed), 1);
    server.shutdown();
}
