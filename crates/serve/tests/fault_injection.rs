//! Injected serve-side faults — an accept-loop stall, a client dying
//! mid-body, a handler panicking — and the invariant they all share: the
//! listener survives and keeps answering.
//!
//! Gated on `--features fault-inject`; `scripts/check.sh` runs it.

#![cfg(feature = "fault-inject")]

mod common;

use std::sync::Mutex;
use std::time::{Duration, Instant};

use common::{get, post_clip, tiny_extractor, valid_pixels};
use tsdx_serve::{Server, ServerConfig};

/// The fault registry is process-global; serialize the tests that arm it.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tsdx_tensor::faults::clear_all();
    guard
}

#[test]
fn accept_stall_delays_but_never_drops_requests() {
    let _guard = locked();
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    tsdx_tensor::faults::arm_accept_stall(300);
    let t0 = Instant::now();
    // The first connection eats the stall; the one behind it queues in the
    // OS backlog and still completes.
    let first = std::thread::spawn(move || get(addr, "/healthz").status);
    let second = std::thread::spawn(move || get(addr, "/healthz").status);
    assert_eq!(first.join().unwrap(), 200);
    assert_eq!(second.join().unwrap(), 200);
    assert!(t0.elapsed() >= Duration::from_millis(300), "the stall must actually bite");

    let resp = post_clip(addr, "4x16x16", &valid_pixels(), &[]).unwrap();
    assert_eq!(resp.status, 200, "listener must keep extracting after the stall");
    server.shutdown();
}

#[test]
fn mid_body_disconnect_is_typed_and_contained() {
    let _guard = locked();
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // The injected fault truncates the body read partway through, exactly
    // what a client dying mid-upload produces.
    tsdx_tensor::faults::arm_body_disconnect(64);
    let resp = post_clip(addr, "4x16x16", &valid_pixels(), &[]).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("mid-body"), "{}", resp.body);

    // Fresh connection, fresh request: full service.
    let resp = post_clip(addr, "4x16x16", &valid_pixels(), &[]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.shutdown();
}

#[test]
fn handler_panic_answers_500_and_spares_the_listener() {
    let _guard = locked();
    let mut server = Server::start(tiny_extractor(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Request indices are assigned in arrival order; the first request on a
    // fresh server is index 0.
    tsdx_tensor::faults::arm_handler_panic(0);
    let resp = get(addr, "/healthz");
    assert_eq!(resp.status, 500, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"internal\""), "{}", resp.body);
    assert!(resp.body.contains("injected fault"), "{}", resp.body);

    // The panic was contained to that connection: the very next request —
    // including real model work — succeeds.
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    let resp = post_clip(addr, "4x16x16", &valid_pixels(), &[]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(server.stats().panics_caught.load(std::sync::atomic::Ordering::Relaxed), 1);
    server.shutdown();
}
