//! Determinism and exactness contract of [`VectorIndex::query`].
//!
//! The bar, per the index's documentation: answers are bit-identical
//! across worker-pool sizes and shard capacities, equal to an exact
//! full-sort reference scan, immune to adversarial rows (NaN, zero
//! vectors), and stable across a save/load round trip.

use proptest::prelude::*;
use tsdx_index::{IndexConfig, VectorIndex};
use tsdx_sdl::{dot, rank_order, vocab, ActorClause, EgoManeuver, Position, RoadKind, Scenario};
use tsdx_tensor::pool;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let actor = ((0..vocab::EVENT_CLASSES.len()), 0..=Position::COUNT).prop_map(|(e, p)| {
        let (kind, action) = vocab::EVENT_CLASSES[e];
        let position = if p == Position::COUNT { None } else { Some(Position::from_index(p)) };
        ActorClause { kind, action, position }
    });
    (
        (0..EgoManeuver::COUNT).prop_map(EgoManeuver::from_index),
        (0..RoadKind::COUNT).prop_map(RoadKind::from_index),
        prop::collection::vec(actor, 0..=4),
    )
        .prop_map(|(ego, road, actors)| Scenario { ego, actors, road })
}

/// Rows that a well-behaved caller would never push: NaN-poisoned, zero,
/// and denormal-ish vectors alongside ordinary ones.
fn arb_adversarial_row(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![
            -1.0f32..=1.0,
            Just(0.0f32),
            Just(f32::NAN),
            Just(f32::INFINITY),
            Just(f32::MIN_POSITIVE),
        ],
        dim..=dim,
    )
}

fn build(capacity: usize, rows: &[Vec<f32>]) -> VectorIndex {
    let dim = rows[0].len();
    let mut ix = VectorIndex::new(IndexConfig { dim, shard_capacity: capacity });
    for r in rows {
        ix.push(r).expect("fixed dim");
    }
    ix
}

/// Exact reference: score every row serially, full-sort with the same
/// total order, truncate.
fn reference_scan(q: &[f32], rows: &[Vec<f32>], k: usize) -> Vec<(u64, f32)> {
    let mut scored: Vec<(u64, f32)> =
        rows.iter().enumerate().map(|(i, r)| (i as u64, dot(q, r))).collect();
    scored.sort_by(rank_order::<u64>);
    scored.truncate(k);
    scored
}

fn bits(hits: &[(u64, f32)]) -> Vec<(u64, u32)> {
    hits.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

proptest! {
    #[test]
    fn query_matches_exact_reference_even_on_adversarial_rows(
        rows in prop::collection::vec(arb_adversarial_row(6), 1..40),
        q in arb_adversarial_row(6),
        k in 1usize..12,
        capacity in 1usize..9,
    ) {
        let ix = build(capacity, &rows);
        let got = ix.query(&q, k).expect("dim matches");
        let want = reference_scan(&q, &rows, k);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn query_is_bit_identical_across_pool_sizes(
        rows in prop::collection::vec(arb_adversarial_row(6), 1..40),
        q in arb_adversarial_row(6),
        k in 1usize..8,
    ) {
        let ix = build(5, &rows);
        let answers: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                pool::with_forced_threads(threads, || ix.query(&q, k).expect("dim matches"))
            })
            .collect();
        prop_assert_eq!(bits(&answers[0]), bits(&answers[1]));
        prop_assert_eq!(bits(&answers[0]), bits(&answers[2]));
    }

    #[test]
    fn query_is_bit_identical_across_shard_capacities(
        rows in prop::collection::vec(arb_adversarial_row(6), 1..40),
        q in arb_adversarial_row(6),
        k in 1usize..8,
        cap_a in 1usize..9,
        cap_b in 9usize..64,
    ) {
        let a = build(cap_a, &rows).query(&q, k).expect("dim matches");
        let b = build(cap_b, &rows).query(&q, k).expect("dim matches");
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn scenario_queries_round_trip_through_disk(
        entries in prop::collection::vec(arb_scenario(), 1..20),
        k in 1usize..6,
        capacity in 1usize..7,
    ) {
        let mut ix = VectorIndex::new(IndexConfig {
            shard_capacity: capacity,
            ..IndexConfig::default()
        });
        for s in &entries {
            ix.push_scenario(s).expect("EMBED_DIM index");
        }
        let dir = std::env::temp_dir()
            .join(format!("tsdx-index-parity-{}-{}", std::process::id(), entries.len()));
        ix.save_to(&dir).expect("save");
        let back = VectorIndex::load(&dir).expect("load");
        std::fs::remove_dir_all(&dir).ok();

        let query = &entries[0];
        let a = ix.query_scenario(query, k).expect("dim matches");
        let b = back.query_scenario(query, k).expect("dim matches");
        prop_assert_eq!(bits(&a), bits(&b));
        // The query itself is indexed, so the best hit is exact.
        prop_assert!((a[0].1 - 1.0).abs() < 1e-5);
    }
}

#[test]
fn duplicate_rows_tie_break_on_ascending_id() {
    let row = vec![0.5f32, 0.5, 0.5, 0.5];
    let ix = build(2, &[row.clone(), row.clone(), row.clone(), row.clone(), row.clone()]);
    let hits = ix.query(&row, 3).expect("dim matches");
    assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![0, 1, 2]);
}
