//! Corrupted shards must load as typed [`IndexError`]s — never a panic,
//! never silently wrong data.
//!
//! The always-on tests corrupt shard files by hand (truncation at every
//! length, single-bit flips); the `fault-inject` module drives the same
//! failure modes through the deterministic fault registry, exercising the
//! production polling points inside the shard writer.

use std::path::PathBuf;

use tsdx_index::{IndexConfig, IndexError, VectorIndex};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsdx-index-corrupt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn saved_index(tag: &str) -> (PathBuf, PathBuf) {
    let mut ix = VectorIndex::new(IndexConfig { dim: 4, shard_capacity: 3 });
    for i in 0..7 {
        let mut v = [0.0f32; 4];
        v[i % 4] = 1.0;
        ix.push(&v).expect("dim matches");
    }
    let dir = fresh_dir(tag);
    ix.save_to(&dir).expect("save");
    (dir.join("shard-00001.idx"), dir)
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let (shard, dir) = saved_index("trunc");
    let bytes = std::fs::read(&shard).expect("read shard");
    for n in 0..bytes.len() {
        std::fs::write(&shard, &bytes[..n]).expect("write truncated");
        match VectorIndex::load(&dir) {
            Err(IndexError::Truncated { .. }) | Err(IndexError::Format(_)) => {}
            other => panic!("truncation to {n} bytes gave {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_single_bit_flip_is_detected() {
    let (shard, dir) = saved_index("flip");
    let bytes = std::fs::read(&shard).expect("read shard");
    for bit in 0..bytes.len() * 8 {
        let mut corrupt = bytes.clone();
        corrupt[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&shard, &corrupt).expect("write corrupted");
        assert!(VectorIndex::load(&dir).is_err(), "bit flip at {bit} went undetected");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_shard_breaks_id_contiguity() {
    let (shard, dir) = saved_index("gap");
    std::fs::remove_file(&shard).expect("remove middle shard");
    assert!(matches!(VectorIndex::load(&dir), Err(IndexError::Format(_))));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_file_with_shard_name_is_rejected() {
    let (shard, dir) = saved_index("foreign");
    std::fs::write(&shard, b"definitely not a shard").expect("write garbage");
    match VectorIndex::load(&dir) {
        Err(IndexError::Format(_)) | Err(IndexError::Truncated { .. }) => {}
        other => panic!("foreign file gave {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(feature = "fault-inject")]
mod fault_registry {
    use super::*;
    use std::sync::Mutex;
    use tsdx_tensor::faults;

    /// Faults are process-global one-shots; serialize the tests that arm
    /// them so one test's fault never fires inside another's save.
    static FAULT_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn build_small() -> VectorIndex {
        let mut ix = VectorIndex::new(IndexConfig { dim: 4, shard_capacity: 8 });
        for i in 0..5 {
            let mut v = [0.0f32; 4];
            v[i % 4] = 1.0;
            ix.push(&v).expect("dim matches");
        }
        ix
    }

    #[test]
    fn armed_tear_loads_as_truncated() {
        let _guard = lock();
        faults::clear_all();
        let dir = fresh_dir("armed-tear");
        let ix = build_small();
        faults::arm_shard_tear(20);
        ix.save_to(&dir).expect("torn save still returns Ok");
        match VectorIndex::load(&dir) {
            Err(IndexError::Truncated { actual: 20, .. }) => {}
            other => panic!("torn shard gave {other:?}"),
        }
        faults::clear_all();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn armed_bit_flip_loads_as_checksum_or_format() {
        let _guard = lock();
        faults::clear_all();
        let dir = fresh_dir("armed-flip");
        let ix = build_small();
        // Bit 300 lands in the row data: both CRCs must catch it.
        faults::arm_shard_bit_flip(300);
        ix.save_to(&dir).expect("flipped save still returns Ok");
        match VectorIndex::load(&dir) {
            Err(IndexError::Checksum { .. }) | Err(IndexError::Format(_)) => {}
            other => panic!("bit-flipped shard gave {other:?}"),
        }
        faults::clear_all();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faults_fire_once_then_saves_are_clean() {
        let _guard = lock();
        faults::clear_all();
        let dir = fresh_dir("armed-once");
        let ix = build_small();
        faults::arm_shard_tear(4);
        ix.save_to(&dir).expect("torn save");
        assert!(VectorIndex::load(&dir).is_err());
        // The fault disarmed on firing: the next save is intact.
        ix.save_to(&dir).expect("clean save");
        let back = VectorIndex::load(&dir).expect("clean load");
        assert_eq!(back.len(), ix.len());
        faults::clear_all();
        std::fs::remove_dir_all(&dir).ok();
    }
}
