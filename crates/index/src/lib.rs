//! # tsdx-index
//!
//! A sharded vector index over SDL scenario embeddings, built for the
//! retrieval experiments (Table 3) at ROADMAP scale: millions of extracted
//! descriptions, exact brute-force search, and crash-safe persistence.
//!
//! * **Embeddings** come from [`tsdx_sdl::embed`] — L2-normalized, so
//!   similarity is a plain dot product ([`tsdx_sdl::dot`]).
//! * **Shards** are fixed-stride binary files in the checkpoint-v2
//!   integrity envelope (magic, declared length, CRC32 over rows and over
//!   the file, atomic temp+fsync+rename writes). Torn or bit-flipped
//!   shards load as typed [`IndexError`]s — never a panic, never silently
//!   wrong data.
//! * **Queries** fan one chunk per shard onto the worker pool and rank
//!   with the total [`tsdx_sdl::top_k`] order, so top-k answers are
//!   bit-identical across pool sizes and shard capacities, with an
//!   ascending-id tie-break.
//!
//! # Examples
//!
//! ```
//! use tsdx_index::{IndexConfig, VectorIndex};
//! use tsdx_sdl::parse_scenario;
//!
//! let mut index = VectorIndex::default();
//! let a = parse_scenario("ego cruise; vehicle leading ahead; road straight")?;
//! let b = parse_scenario("ego decelerate-to-stop; pedestrian crossing; road intersection")?;
//! index.push_scenario(&a).expect("default index uses EMBED_DIM");
//! index.push_scenario(&b).expect("default index uses EMBED_DIM");
//!
//! let hits = index.query_scenario(&a, 1).expect("query dim matches");
//! assert_eq!(hits[0].0, 0); // the query itself
//! assert!((hits[0].1 - 1.0).abs() < 1e-5);
//! # Ok::<(), tsdx_sdl::ParseScenarioError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod shard;
mod vector_index;

pub use shard::IndexError;
pub use vector_index::{IndexConfig, VectorIndex, DEFAULT_SHARD_CAPACITY};
