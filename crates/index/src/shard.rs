//! The on-disk shard format and its typed failure modes.
//!
//! A shard is a fixed-stride block of `count` embedding rows of `dim` f32s,
//! wrapped in the same integrity envelope as checkpoint-v2
//! (`tsdx_nn::serialize`): a magic tag, a declared file length, a CRC32
//! over the row data, and a CRC32 over the whole file. Writes go through
//! [`tsdx_nn::write_atomic`] (temp file + fsync + rename), so the
//! destination only ever holds its previous contents or a complete shard.
//! Loads re-verify everything and return a typed [`IndexError`] — a torn or
//! bit-flipped shard is *diagnosed*, never a panic and never silently
//! wrong data.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size        field
//! 0       8           magic "TSDXIDX1"
//! 8       8           file length in bytes (u64)
//! 16      4           dim   (u32)
//! 20      4           count (u32)
//! 24      8           base id of row 0 (u64)
//! 32      count*dim*4 row data, f32 LE, row-major
//! ..      4           CRC32 over the row data
//! ..      4           CRC32 over every preceding byte of the file
//! ```

use std::error::Error;
use std::fmt;
use std::io;
use std::path::Path;

use tsdx_nn::{crc32, write_atomic};

pub(crate) const MAGIC: &[u8; 8] = b"TSDXIDX1";
const HEADER_LEN: usize = 32;
const FOOTER_LEN: usize = 8;

/// Implausibility guards: reject absurd headers before allocating.
const MAX_DIM: u32 = 1 << 16;
const MAX_COUNT: u32 = 1 << 28;

/// Error returned by shard and index saving and loading.
#[derive(Debug)]
#[non_exhaustive]
pub enum IndexError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a tsdx index shard or violates the format.
    Format(String),
    /// The file is shorter than its header declares (torn write).
    Truncated {
        /// Length the header declares.
        expected: u64,
        /// Length actually on disk.
        actual: u64,
    },
    /// A CRC32 mismatch: the bytes were silently corrupted at rest.
    Checksum {
        /// What the checksum covered (`"file"` or `"rows"`).
        section: String,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the bytes read.
        computed: u32,
    },
    /// A vector's dimensionality conflicts with the index stride.
    DimMismatch {
        /// Stride the index was built with.
        expected: usize,
        /// Dimensionality found.
        found: usize,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "index i/o error: {e}"),
            IndexError::Format(m) => write!(f, "invalid index shard: {m}"),
            IndexError::Truncated { expected, actual } => {
                write!(f, "truncated index shard: header declares {expected} bytes, file has {actual}")
            }
            IndexError::Checksum { section, stored, computed } => write!(
                f,
                "index shard corrupted: CRC32 mismatch in {section} (stored {stored:#010x}, computed {computed:#010x})"
            ),
            IndexError::DimMismatch { expected, found } => {
                write!(f, "index dim mismatch: index stride is {expected}, vector has {found}")
            }
        }
    }
}

impl Error for IndexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IndexError {
    fn from(e: io::Error) -> Self {
        IndexError::Io(e)
    }
}

/// One decoded shard: `count = rows.len() / dim` embedding rows whose
/// global ids start at `base_id`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ShardRecord {
    pub dim: usize,
    pub base_id: u64,
    pub rows: Vec<f32>,
}

fn encode(dim: usize, base_id: u64, rows: &[f32]) -> Vec<u8> {
    debug_assert!(dim > 0 && rows.len().is_multiple_of(dim));
    let count = rows.len() / dim;
    let total = HEADER_LEN + rows.len() * 4 + FOOTER_LEN;
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(total as u64).to_le_bytes());
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    out.extend_from_slice(&(count as u32).to_le_bytes());
    out.extend_from_slice(&base_id.to_le_bytes());
    for v in rows {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let data_crc = crc32(&out[HEADER_LEN..]);
    out.extend_from_slice(&data_crc.to_le_bytes());
    let file_crc = crc32(&out);
    out.extend_from_slice(&file_crc.to_le_bytes());
    out
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn get_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn decode(bytes: &[u8]) -> Result<ShardRecord, IndexError> {
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(IndexError::Truncated {
            expected: (HEADER_LEN + FOOTER_LEN) as u64,
            actual: bytes.len() as u64,
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(IndexError::Format("bad magic (not a tsdx index shard)".into()));
    }
    let declared = get_u64(bytes, 8);
    if declared > bytes.len() as u64 {
        return Err(IndexError::Truncated { expected: declared, actual: bytes.len() as u64 });
    }
    if declared < bytes.len() as u64 {
        return Err(IndexError::Format(format!(
            "trailing garbage: header declares {declared} bytes, file has {}",
            bytes.len()
        )));
    }
    let stored_file_crc = get_u32(bytes, bytes.len() - 4);
    let computed_file_crc = crc32(&bytes[..bytes.len() - 4]);
    if stored_file_crc != computed_file_crc {
        return Err(IndexError::Checksum {
            section: "file".into(),
            stored: stored_file_crc,
            computed: computed_file_crc,
        });
    }
    let dim = get_u32(bytes, 16);
    let count = get_u32(bytes, 20);
    let base_id = get_u64(bytes, 24);
    if dim == 0 || dim > MAX_DIM {
        return Err(IndexError::Format(format!("implausible dim {dim}")));
    }
    if count > MAX_COUNT {
        return Err(IndexError::Format(format!("implausible row count {count}")));
    }
    let numel = dim as u64 * count as u64;
    let expected = HEADER_LEN as u64 + numel * 4 + FOOTER_LEN as u64;
    if expected != declared {
        return Err(IndexError::Format(format!(
            "geometry mismatch: dim {dim} x count {count} needs {expected} bytes, header declares {declared}"
        )));
    }
    let data = &bytes[HEADER_LEN..bytes.len() - FOOTER_LEN];
    let stored_data_crc = get_u32(bytes, bytes.len() - 8);
    let computed_data_crc = crc32(data);
    if stored_data_crc != computed_data_crc {
        return Err(IndexError::Checksum {
            section: "rows".into(),
            stored: stored_data_crc,
            computed: computed_data_crc,
        });
    }
    let mut rows = Vec::with_capacity(numel as usize);
    for c in data.chunks_exact(4) {
        rows.push(f32::from_le_bytes(c.try_into().expect("chunks_exact(4)")));
    }
    Ok(ShardRecord { dim: dim as usize, base_id, rows })
}

/// Encodes and writes one shard crash-safely; the fault-injection registry
/// can substitute a torn or bit-flipped write (see `tsdx_tensor::faults`).
pub(crate) fn save_shard(
    path: &Path,
    dim: usize,
    base_id: u64,
    rows: &[f32],
) -> Result<(), IndexError> {
    #[allow(unused_mut)]
    let mut bytes = encode(dim, base_id, rows);
    #[cfg(feature = "fault-inject")]
    {
        if let Some(n) = tsdx_tensor::faults::take_shard_tear() {
            // Simulates a crash mid-write of a non-atomic writer: the
            // destination ends up holding a bare prefix of the encoding.
            let n = (n as usize).min(bytes.len());
            std::fs::write(path, &bytes[..n])?;
            return Ok(());
        }
        if let Some(bit) = tsdx_tensor::faults::take_shard_bit_flip() {
            // Simulates silent at-rest corruption of one bit.
            let byte = (bit / 8) as usize % bytes.len();
            bytes[byte] ^= 1 << (bit % 8) as u8;
        }
    }
    write_atomic(path, &bytes)?;
    Ok(())
}

/// Reads and fully verifies one shard.
pub(crate) fn load_shard(path: &Path) -> Result<ShardRecord, IndexError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode(3, 7, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn roundtrip_preserves_rows_and_ids() {
        let rec = decode(&sample()).expect("valid shard");
        assert_eq!(rec.dim, 3);
        assert_eq!(rec.base_id, 7);
        assert_eq!(rec.rows, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn empty_shard_roundtrips() {
        let rec = decode(&encode(4, 0, &[])).expect("valid empty shard");
        assert_eq!(rec.rows.len(), 0);
    }

    #[test]
    fn every_truncation_length_is_a_typed_error() {
        let bytes = sample();
        for n in 0..bytes.len() {
            match decode(&bytes[..n]) {
                Err(IndexError::Truncated { .. }) | Err(IndexError::Format(_)) => {}
                other => panic!("truncation to {n} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_a_typed_error() {
        let bytes = sample();
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(decode(&corrupt).is_err(), "bit flip at {bit} went undetected");
        }
    }

    #[test]
    fn bad_magic_is_format_not_checksum() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(IndexError::Format(_))));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(IndexError::Format(_))));
    }
}
