//! The in-memory sharded index and its parallel brute-force scan.

use std::path::Path;
use std::sync::Arc;

use tsdx_sdl::{dot, embed, is_unit_norm, top_k, Scenario, EMBED_DIM};
use tsdx_tensor::pool;

use crate::shard::{load_shard, save_shard, IndexError};

/// Default rows per shard: large enough that scan setup amortizes, small
/// enough that a shard re-write after an append stays cheap.
pub const DEFAULT_SHARD_CAPACITY: usize = 65_536;

/// Construction parameters for a [`VectorIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Embedding dimensionality (stride of every stored row).
    pub dim: usize,
    /// Rows per shard; the last shard may be partially filled.
    pub shard_capacity: usize,
}

impl Default for IndexConfig {
    /// SDL defaults: [`EMBED_DIM`]-wide rows, [`DEFAULT_SHARD_CAPACITY`]
    /// rows per shard.
    fn default() -> Self {
        IndexConfig { dim: EMBED_DIM, shard_capacity: DEFAULT_SHARD_CAPACITY }
    }
}

/// A sharded vector index over L2-normalized embeddings.
///
/// Rows live in fixed-stride shards (flat `f32` blocks behind [`Arc`]s so
/// the scan can fan out on the worker pool without copying). Ids are dense
/// `u64`s in insertion order. Queries are exact brute-force scans: one pool
/// chunk per shard, each chunk ranking its rows with the total
/// [`top_k`] order, then a final merge — the answer is bit-identical across
/// pool sizes (results are gathered by chunk index) and across shard
/// capacities (each row's dot product never depends on where a shard
/// boundary falls).
#[derive(Debug, Clone)]
pub struct VectorIndex {
    dim: usize,
    shard_capacity: usize,
    /// `(base_id, rows)` per shard; every shard except the last is full.
    shards: Vec<(u64, Arc<Vec<f32>>)>,
}

impl Default for VectorIndex {
    fn default() -> Self {
        VectorIndex::new(IndexConfig::default())
    }
}

impl VectorIndex {
    /// An empty index with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics when `dim` or `shard_capacity` is zero — both are
    /// construction-time constants, not runtime inputs.
    pub fn new(cfg: IndexConfig) -> Self {
        assert!(cfg.dim > 0, "index dim must be positive");
        assert!(cfg.shard_capacity > 0, "shard capacity must be positive");
        VectorIndex { dim: cfg.dim, shard_capacity: cfg.shard_capacity, shards: Vec::new() }
    }

    /// Embedding dimensionality (stride of every stored row).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> u64 {
        match self.shards.last() {
            Some((base, rows)) => base + (rows.len() / self.dim) as u64,
            None => 0,
        }
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Number of shards currently held.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Appends one raw row, returning its id.
    ///
    /// The caller owns the unit-norm invariant for raw rows; vectors that
    /// arrive through [`Self::push_scenario`] carry it by construction.
    ///
    /// # Errors
    ///
    /// [`IndexError::DimMismatch`] when `v` is not `dim` wide.
    pub fn push(&mut self, v: &[f32]) -> Result<u64, IndexError> {
        if v.len() != self.dim {
            return Err(IndexError::DimMismatch { expected: self.dim, found: v.len() });
        }
        let id = self.len();
        let capacity_elems = self.shard_capacity * self.dim;
        let needs_new_shard = match self.shards.last() {
            Some((_, rows)) => rows.len() >= capacity_elems,
            None => true,
        };
        if needs_new_shard {
            self.shards.push((id, Arc::new(Vec::with_capacity(capacity_elems.min(1 << 20)))));
        }
        let rows = &mut self.shards.last_mut().expect("shard just ensured").1;
        Arc::make_mut(rows).extend_from_slice(v);
        Ok(id)
    }

    /// Embeds and appends one scenario, returning its id.
    ///
    /// # Errors
    ///
    /// [`IndexError::DimMismatch`] when the index was not built with
    /// `dim == EMBED_DIM`.
    pub fn push_scenario(&mut self, s: &Scenario) -> Result<u64, IndexError> {
        let e = embed(s);
        debug_assert!(is_unit_norm(&e), "sdl::embed must produce unit-norm vectors");
        self.push(&e)
    }

    /// The stored row with id `id`, if any.
    pub fn row(&self, id: u64) -> Option<&[f32]> {
        let shard = self.shards.partition_point(|(base, _)| *base <= id).checked_sub(1)?;
        let (base, rows) = &self.shards[shard];
        let off = (id - base) as usize * self.dim;
        rows.get(off..off + self.dim)
    }

    /// The `k` most similar rows to `q`, best first, as `(id, similarity)`.
    ///
    /// Similarity is the plain dot product — exact cosine for the
    /// unit-norm rows [`Self::push_scenario`] stores. One pool chunk scans
    /// each shard; the per-shard winners merge under the same total order,
    /// so the result is deterministic for any input and identical across
    /// pool sizes and shard capacities.
    ///
    /// # Errors
    ///
    /// [`IndexError::DimMismatch`] when `q` is not `dim` wide.
    pub fn query(&self, q: &[f32], k: usize) -> Result<Vec<(u64, f32)>, IndexError> {
        if q.len() != self.dim {
            return Err(IndexError::DimMismatch { expected: self.dim, found: q.len() });
        }
        if k == 0 || self.shards.is_empty() {
            return Ok(Vec::new());
        }
        let dim = self.dim;
        let shards: Arc<Vec<(u64, Arc<Vec<f32>>)>> = Arc::new(self.shards.clone());
        let q: Arc<Vec<f32>> = Arc::new(q.to_vec());
        let per_shard = pool::map_chunks_named("index/scan", shards.len(), move |c| {
            let (base, rows) = &shards[c];
            scan_shard(&q, rows, dim, *base, k)
        });
        let mut candidates = Vec::with_capacity(per_shard.iter().map(Vec::len).sum());
        for hits in per_shard {
            candidates.extend(hits);
        }
        Ok(top_k(candidates, k))
    }

    /// Embeds `s` and runs [`Self::query`].
    ///
    /// # Errors
    ///
    /// [`IndexError::DimMismatch`] when the index was not built with
    /// `dim == EMBED_DIM`.
    pub fn query_scenario(&self, s: &Scenario, k: usize) -> Result<Vec<(u64, f32)>, IndexError> {
        self.query(&embed(s), k)
    }

    /// Writes every shard to `dir` as `shard-NNNNN.idx`, crash-safely.
    ///
    /// Stale shard files from a previous, larger save are removed first so
    /// `dir` always round-trips to exactly this index.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the directory, removing stale shards,
    /// or staging and renaming shard files.
    pub fn save_to(&self, dir: &Path) -> Result<(), IndexError> {
        std::fs::create_dir_all(dir)?;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if is_shard_file_name(&entry.file_name().to_string_lossy()) {
                std::fs::remove_file(entry.path())?;
            }
        }
        for (i, (base, rows)) in self.shards.iter().enumerate() {
            let path = dir.join(format!("shard-{i:05}.idx"));
            save_shard(&path, self.dim, *base, rows)?;
        }
        Ok(())
    }

    /// Loads an index previously written by [`Self::save_to`].
    ///
    /// Every shard is fully verified (magic, declared length, both CRCs,
    /// geometry) and the set as a whole must be consistent: one dim
    /// everywhere and dense, contiguous ids starting at 0. The shard
    /// capacity is inferred from the largest shard on disk.
    ///
    /// # Errors
    ///
    /// [`IndexError::Io`] on read failures, and the full typed taxonomy
    /// ([`IndexError::Truncated`], [`IndexError::Checksum`],
    /// [`IndexError::Format`]) for torn, bit-flipped, or inconsistent
    /// shards — corruption is never a panic.
    pub fn load(dir: &Path) -> Result<Self, IndexError> {
        let mut names: Vec<String> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| is_shard_file_name(n))
            .collect();
        names.sort();
        let mut shards: Vec<(u64, Arc<Vec<f32>>)> = Vec::with_capacity(names.len());
        let mut dim = 0usize;
        let mut next_id = 0u64;
        let mut capacity = 0usize;
        for name in &names {
            let rec = load_shard(&dir.join(name))?;
            if shards.is_empty() {
                dim = rec.dim;
            } else if rec.dim != dim {
                return Err(IndexError::Format(format!(
                    "inconsistent shard dims: {name} has {}, earlier shards have {dim}",
                    rec.dim
                )));
            }
            if rec.base_id != next_id {
                return Err(IndexError::Format(format!(
                    "non-contiguous shard ids: {name} starts at {}, expected {next_id}",
                    rec.base_id
                )));
            }
            let count = rec.rows.len() / rec.dim;
            next_id += count as u64;
            capacity = capacity.max(count);
            shards.push((rec.base_id, Arc::new(rec.rows)));
        }
        Ok(VectorIndex {
            dim: if dim == 0 { IndexConfig::default().dim } else { dim },
            shard_capacity: if capacity == 0 { DEFAULT_SHARD_CAPACITY } else { capacity },
            shards,
        })
    }
}

/// Ranks one shard's rows against `q`: stride-aware scan, global ids.
fn scan_shard(q: &[f32], rows: &[f32], dim: usize, base: u64, k: usize) -> Vec<(u64, f32)> {
    let scored: Vec<(u64, f32)> =
        rows.chunks_exact(dim).enumerate().map(|(i, row)| (base + i as u64, dot(q, row))).collect();
    top_k(scored, k)
}

fn is_shard_file_name(name: &str) -> bool {
    name.starts_with("shard-") && name.ends_with(".idx")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[hot] = 1.0;
        v
    }

    fn tiny() -> VectorIndex {
        let mut ix = VectorIndex::new(IndexConfig { dim: 4, shard_capacity: 3 });
        for i in 0..10 {
            ix.push(&unit(4, i % 4)).expect("dim matches");
        }
        ix
    }

    #[test]
    fn ids_are_dense_and_rows_recoverable() {
        let ix = tiny();
        assert_eq!(ix.len(), 10);
        assert_eq!(ix.shard_count(), 4); // 3+3+3+1
        for i in 0..10u64 {
            assert_eq!(ix.row(i).expect("present"), &unit(4, i as usize % 4)[..]);
        }
        assert!(ix.row(10).is_none());
    }

    #[test]
    fn query_finds_exact_match_first_with_id_tie_break() {
        let ix = tiny();
        let hits = ix.query(&unit(4, 2), 3).expect("dim matches");
        // Rows 2, 6 score 1.0; tie-break keeps ascending ids.
        assert_eq!(hits[0], (2, 1.0));
        assert_eq!(hits[1], (6, 1.0));
    }

    #[test]
    fn dim_mismatch_is_typed_on_push_and_query() {
        let mut ix = tiny();
        assert!(matches!(
            ix.push(&[1.0; 3]),
            Err(IndexError::DimMismatch { expected: 4, found: 3 })
        ));
        assert!(matches!(ix.query(&[1.0; 5], 1), Err(IndexError::DimMismatch { .. })));
    }

    #[test]
    fn empty_index_and_k_zero_answer_empty() {
        let ix = VectorIndex::new(IndexConfig { dim: 4, shard_capacity: 3 });
        assert!(ix.query(&unit(4, 0), 5).expect("dim matches").is_empty());
        assert!(tiny().query(&unit(4, 0), 0).expect("dim matches").is_empty());
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let dir = std::env::temp_dir().join(format!("tsdx-index-rt-{}", std::process::id()));
        let ix = tiny();
        ix.save_to(&dir).expect("save");
        let back = VectorIndex::load(&dir).expect("load");
        assert_eq!(back.len(), ix.len());
        assert_eq!(back.dim(), ix.dim());
        for i in 0..ix.len() {
            assert_eq!(back.row(i), ix.row(i));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_removes_stale_shards() {
        let dir = std::env::temp_dir().join(format!("tsdx-index-stale-{}", std::process::id()));
        tiny().save_to(&dir).expect("save big");
        let mut small = VectorIndex::new(IndexConfig { dim: 4, shard_capacity: 3 });
        small.push(&unit(4, 0)).expect("dim matches");
        small.save_to(&dir).expect("save small");
        let back = VectorIndex::load(&dir).expect("load");
        assert_eq!(back.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
