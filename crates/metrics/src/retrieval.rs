//! Retrieval metrics for scenario search.

/// Precision@k of one ranked result list.
///
/// `ranked_relevance[i]` says whether the i-th retrieved item is relevant.
///
/// # Panics
///
/// Panics when `k == 0`.
pub fn precision_at_k(ranked_relevance: &[bool], k: usize) -> f32 {
    assert!(k > 0, "k must be positive");
    let k = k.min(ranked_relevance.len());
    if k == 0 {
        return 0.0;
    }
    ranked_relevance[..k].iter().filter(|&&r| r).count() as f32 / k as f32
}

/// Ranks gallery items by `scores` (descending) and reports relevance in
/// rank order.
pub fn rank_by_score(scores: &[f32], relevant: &[bool]) -> Vec<bool> {
    assert_eq!(scores.len(), relevant.len(), "length mismatch");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    order.into_iter().map(|i| relevant[i]).collect()
}

/// Mean average precision over a set of queries.
///
/// Each query contributes its average precision (queries with no relevant
/// items are skipped).
pub fn mean_average_precision(queries: &[(Vec<f32>, Vec<bool>)]) -> f32 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (scores, relevant) in queries {
        if let Some(ap) = crate::multilabel::average_precision(scores, relevant) {
            sum += ap;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f32
    }
}

/// Mean precision@k over queries.
pub fn mean_precision_at_k(queries: &[(Vec<f32>, Vec<bool>)], k: usize) -> f32 {
    if queries.is_empty() {
        return 0.0;
    }
    queries
        .iter()
        .map(|(scores, relevant)| precision_at_k(&rank_by_score(scores, relevant), k))
        .sum::<f32>()
        / queries.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_at_k_basics() {
        let ranked = [true, false, true, true];
        assert_eq!(precision_at_k(&ranked, 1), 1.0);
        assert_eq!(precision_at_k(&ranked, 2), 0.5);
        assert_eq!(precision_at_k(&ranked, 4), 0.75);
        // k beyond the list clamps.
        assert_eq!(precision_at_k(&ranked, 10), 0.75);
    }

    #[test]
    fn rank_by_score_orders_descending() {
        let ranked = rank_by_score(&[0.1, 0.9, 0.5], &[false, true, false]);
        assert_eq!(ranked, vec![true, false, false]);
    }

    #[test]
    fn map_rewards_better_rankings() {
        let good = vec![(vec![0.9, 0.8, 0.1], vec![true, true, false])];
        let bad = vec![(vec![0.1, 0.2, 0.9], vec![true, true, false])];
        assert!(mean_average_precision(&good) > mean_average_precision(&bad));
        assert_eq!(mean_average_precision(&good), 1.0);
    }

    #[test]
    fn queries_without_relevant_items_are_skipped() {
        let queries =
            vec![(vec![0.9, 0.1], vec![true, false]), (vec![0.9, 0.1], vec![false, false])];
        assert_eq!(mean_average_precision(&queries), 1.0);
        assert_eq!(mean_average_precision(&[]), 0.0);
    }

    #[test]
    fn mean_precision_at_k_averages_queries() {
        let queries = vec![
            (vec![0.9, 0.8], vec![true, false]), // P@1 = 1
            (vec![0.9, 0.8], vec![false, true]), // P@1 = 0
        ];
        assert_eq!(mean_precision_at_k(&queries, 1), 0.5);
    }
}
