//! Scenario-level evaluation: comparing predicted SDL against ground truth.

use tsdx_sdl::{similarity, Scenario};

/// Aggregate scenario-level quality of a set of predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioReport {
    /// Fraction of predictions exactly equal to the truth (up to actor
    /// clause ordering, which [`tsdx_sdl::similarity`] ignores but equality
    /// does not — we sort clauses before comparing).
    pub exact_match: f32,
    /// Mean SDL slot similarity to the truth.
    pub mean_similarity: f32,
    /// Accuracy of the ego maneuver slot alone.
    pub ego_accuracy: f32,
    /// Accuracy of the road kind slot alone.
    pub road_accuracy: f32,
}

/// Compares predictions to ground truths pairwise.
///
/// # Panics
///
/// Panics on length mismatch or empty input.
pub fn scenario_report(predictions: &[Scenario], truths: &[Scenario]) -> ScenarioReport {
    assert_eq!(predictions.len(), truths.len(), "prediction/truth length mismatch");
    assert!(!predictions.is_empty(), "empty scenario report");
    let n = predictions.len() as f32;
    let mut exact = 0usize;
    let mut sim_sum = 0.0;
    let mut ego_ok = 0usize;
    let mut road_ok = 0usize;
    for (p, t) in predictions.iter().zip(truths) {
        let mut ps = p.clone();
        let mut ts = t.clone();
        ps.actors.sort();
        ts.actors.sort();
        if ps == ts {
            exact += 1;
        }
        sim_sum += similarity(p, t);
        if p.ego == t.ego {
            ego_ok += 1;
        }
        if p.road == t.road {
            road_ok += 1;
        }
    }
    ScenarioReport {
        exact_match: exact as f32 / n,
        mean_similarity: sim_sum / n,
        ego_accuracy: ego_ok as f32 / n,
        road_accuracy: road_ok as f32 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdx_sdl::{ActorAction, ActorClause, ActorKind, EgoManeuver, Position, RoadKind};

    fn s1() -> Scenario {
        Scenario::new(EgoManeuver::Cruise, RoadKind::Straight).with_actor(ActorClause::at(
            ActorKind::Vehicle,
            ActorAction::Leading,
            Position::Ahead,
        ))
    }

    #[test]
    fn perfect_predictions() {
        let r = scenario_report(&[s1(), s1()], &[s1(), s1()]);
        assert_eq!(r.exact_match, 1.0);
        assert!((r.mean_similarity - 1.0).abs() < 1e-6);
        assert_eq!(r.ego_accuracy, 1.0);
        assert_eq!(r.road_accuracy, 1.0);
    }

    #[test]
    fn exact_match_ignores_actor_order() {
        let a = Scenario::new(EgoManeuver::Cruise, RoadKind::Straight)
            .with_actor(ActorClause::new(ActorKind::Vehicle, ActorAction::Leading))
            .with_actor(ActorClause::new(ActorKind::Cyclist, ActorAction::Oncoming));
        let mut b = a.clone();
        b.actors.reverse();
        let r = scenario_report(std::slice::from_ref(&a), &[b]);
        assert_eq!(r.exact_match, 1.0);
    }

    #[test]
    fn partial_credit_for_partial_matches() {
        let pred = Scenario::new(EgoManeuver::Cruise, RoadKind::Intersection)
            .with_actor(ActorClause::at(ActorKind::Vehicle, ActorAction::Leading, Position::Ahead));
        let r = scenario_report(std::slice::from_ref(&pred), &[s1()]);
        assert_eq!(r.exact_match, 0.0);
        assert_eq!(r.ego_accuracy, 1.0);
        assert_eq!(r.road_accuracy, 0.0);
        assert!(r.mean_similarity > 0.5 && r.mean_similarity < 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_input() {
        scenario_report(&[], &[]);
    }
}
