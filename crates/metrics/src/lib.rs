//! # tsdx-metrics
//!
//! Evaluation arithmetic shared by the whole stack: single-label
//! classification (accuracy, per-class PRF, macro-F1, confusion matrices),
//! multi-label metrics (subset accuracy, Hamming loss, micro-F1, mAP),
//! retrieval metrics (precision@k, mean average precision), and
//! scenario-level SDL comparison.
//!
//! # Examples
//!
//! ```
//! use tsdx_metrics::{accuracy, macro_f1};
//! let predictions = [0, 1, 2, 2];
//! let labels = [0, 1, 2, 1];
//! assert_eq!(accuracy(&predictions, &labels), 0.75);
//! assert!(macro_f1(&predictions, &labels, 3) > 0.7);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod classification;
mod confusion;
mod multilabel;
mod retrieval;
mod scenario_level;

pub use classification::{accuracy, macro_f1, per_class_prf, ClassPrf};
pub use confusion::ConfusionMatrix;
pub use multilabel::{average_precision, multilabel_report, MultiLabelReport};
pub use retrieval::{mean_average_precision, mean_precision_at_k, precision_at_k, rank_by_score};
pub use scenario_level::{scenario_report, ScenarioReport};
