//! Multi-label metrics (actor presence head).

/// Summary metrics for multi-label prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiLabelReport {
    /// Fraction of samples whose entire label vector is predicted exactly.
    pub subset_accuracy: f32,
    /// Fraction of individual label decisions that are wrong.
    pub hamming_loss: f32,
    /// Micro-averaged F1 over all label decisions at the threshold.
    pub micro_f1: f32,
    /// Mean average precision over labels (threshold-free).
    pub map: f32,
}

/// Computes multi-label metrics from `scores` (`N×C` row-major, higher =
/// more confident) against binary `targets`, thresholding at `threshold`.
///
/// # Panics
///
/// Panics on size mismatch or empty input.
pub fn multilabel_report(
    scores: &[f32],
    targets: &[f32],
    num_labels: usize,
    threshold: f32,
) -> MultiLabelReport {
    assert_eq!(scores.len(), targets.len(), "scores/targets length mismatch");
    assert!(num_labels > 0 && scores.len().is_multiple_of(num_labels), "bad label count");
    let n = scores.len() / num_labels;
    assert!(n > 0, "empty multilabel input");

    let mut exact = 0usize;
    let mut wrong = 0usize;
    let (mut tp, mut fp, mut fne) = (0usize, 0usize, 0usize);
    for i in 0..n {
        let mut all_match = true;
        for c in 0..num_labels {
            let s = scores[i * num_labels + c] >= threshold;
            let t = targets[i * num_labels + c] >= 0.5;
            if s != t {
                wrong += 1;
                all_match = false;
            }
            match (s, t) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fne += 1,
                (false, false) => {}
            }
        }
        if all_match {
            exact += 1;
        }
    }
    let precision = if tp + fp > 0 { tp as f32 / (tp + fp) as f32 } else { 0.0 };
    let recall = if tp + fne > 0 { tp as f32 / (tp + fne) as f32 } else { 0.0 };
    let micro_f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };

    // mAP over labels.
    let mut ap_sum = 0.0;
    let mut ap_count = 0usize;
    for c in 0..num_labels {
        let col_scores: Vec<f32> = (0..n).map(|i| scores[i * num_labels + c]).collect();
        let col_targets: Vec<bool> = (0..n).map(|i| targets[i * num_labels + c] >= 0.5).collect();
        if let Some(ap) = average_precision(&col_scores, &col_targets) {
            ap_sum += ap;
            ap_count += 1;
        }
    }
    MultiLabelReport {
        subset_accuracy: exact as f32 / n as f32,
        hamming_loss: wrong as f32 / (n * num_labels) as f32,
        micro_f1,
        map: if ap_count > 0 { ap_sum / ap_count as f32 } else { 0.0 },
    }
}

/// Average precision of a ranked list: mean of precision@k over the ranks
/// of positive items. Returns `None` when there are no positives.
pub fn average_precision(scores: &[f32], relevant: &[bool]) -> Option<f32> {
    assert_eq!(scores.len(), relevant.len(), "length mismatch");
    let n_pos = relevant.iter().filter(|&&r| r).count();
    if n_pos == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (rank, &i) in order.iter().enumerate() {
        if relevant[i] {
            hits += 1;
            sum += hits as f32 / (rank + 1) as f32;
        }
    }
    Some(sum / n_pos as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_max_out_everything() {
        let scores = [0.9, 0.1, 0.8, 0.2];
        let targets = [1.0, 0.0, 1.0, 0.0];
        let r = multilabel_report(&scores, &targets, 2, 0.5);
        assert_eq!(r.subset_accuracy, 1.0);
        assert_eq!(r.hamming_loss, 0.0);
        assert_eq!(r.micro_f1, 1.0);
        assert_eq!(r.map, 1.0);
    }

    #[test]
    fn hand_computed_mixed_case() {
        // 2 samples, 2 labels; one decision wrong out of 4.
        let scores = [0.9, 0.6, 0.2, 0.1];
        let targets = [1.0, 0.0, 0.0, 0.0];
        let r = multilabel_report(&scores, &targets, 2, 0.5);
        assert_eq!(r.subset_accuracy, 0.5);
        assert_eq!(r.hamming_loss, 0.25);
        // tp=1, fp=1, fn=0 -> p=0.5, r=1 -> f1=2/3.
        assert!((r.micro_f1 - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn average_precision_examples() {
        // Positives ranked 1st and 3rd: AP = (1/1 + 2/3)/2.
        let ap = average_precision(&[0.9, 0.5, 0.4], &[true, false, true]).unwrap();
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-6);
        assert_eq!(average_precision(&[0.3, 0.2], &[false, false]), None);
        assert_eq!(average_precision(&[0.9], &[true]), Some(1.0));
    }

    #[test]
    fn ap_penalizes_low_ranked_positives() {
        let good = average_precision(&[0.9, 0.8, 0.1], &[true, false, false]).unwrap();
        let bad = average_precision(&[0.1, 0.8, 0.9], &[true, false, false]).unwrap();
        assert!(good > bad);
    }
}
