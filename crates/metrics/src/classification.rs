//! Single-label classification metrics.

/// Fraction of predictions equal to their labels.
///
/// # Panics
///
/// Panics on length mismatch or empty input.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(predictions.len(), labels.len(), "prediction/label length mismatch");
    assert!(!predictions.is_empty(), "accuracy of empty set");
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / predictions.len() as f32
}

/// Per-class precision, recall, and F1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassPrf {
    /// Precision: TP / (TP + FP), 0 when undefined.
    pub precision: f32,
    /// Recall: TP / (TP + FN), 0 when undefined.
    pub recall: f32,
    /// Harmonic mean of precision and recall, 0 when undefined.
    pub f1: f32,
    /// Number of ground-truth instances of this class.
    pub support: usize,
}

/// Computes [`ClassPrf`] for every class in `0..num_classes`.
pub fn per_class_prf(predictions: &[usize], labels: &[usize], num_classes: usize) -> Vec<ClassPrf> {
    assert_eq!(predictions.len(), labels.len(), "prediction/label length mismatch");
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fne = vec![0usize; num_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        assert!(p < num_classes && l < num_classes, "class index out of range");
        if p == l {
            tp[p] += 1;
        } else {
            fp[p] += 1;
            fne[l] += 1;
        }
    }
    (0..num_classes)
        .map(|c| {
            let precision = safe_div(tp[c], tp[c] + fp[c]);
            let recall = safe_div(tp[c], tp[c] + fne[c]);
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            ClassPrf { precision, recall, f1, support: tp[c] + fne[c] }
        })
        .collect()
}

/// Macro-averaged F1 over classes that appear in the labels.
pub fn macro_f1(predictions: &[usize], labels: &[usize], num_classes: usize) -> f32 {
    let prf = per_class_prf(predictions, labels, num_classes);
    let present: Vec<&ClassPrf> = prf.iter().filter(|c| c.support > 0).collect();
    if present.is_empty() {
        return 0.0;
    }
    present.iter().map(|c| c.f1).sum::<f32>() / present.len() as f32
}

fn safe_div(num: usize, den: usize) -> f32 {
    if den == 0 {
        0.0
    } else {
        num as f32 / den as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let p = [0, 1, 2, 1];
        assert_eq!(accuracy(&p, &p), 1.0);
        assert_eq!(macro_f1(&p, &p, 3), 1.0);
        for c in per_class_prf(&p, &p, 3) {
            if c.support > 0 {
                assert_eq!(c.f1, 1.0);
            }
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 1]), 0.5);
    }

    #[test]
    fn prf_hand_computed_example() {
        // labels:       [0, 0, 1, 1, 1]
        // predictions:  [0, 1, 1, 1, 0]
        let prf = per_class_prf(&[0, 1, 1, 1, 0], &[0, 0, 1, 1, 1], 2);
        // class 0: tp=1, fp=1, fn=1 -> p=0.5, r=0.5, f1=0.5
        assert!((prf[0].precision - 0.5).abs() < 1e-6);
        assert!((prf[0].recall - 0.5).abs() < 1e-6);
        assert!((prf[0].f1 - 0.5).abs() < 1e-6);
        // class 1: tp=2, fp=1, fn=1 -> p=2/3, r=2/3
        assert!((prf[1].precision - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(prf[1].support, 3);
    }

    #[test]
    fn absent_classes_do_not_dilute_macro_f1() {
        // Class 2 never appears in labels; macro-F1 averages classes 0, 1.
        let f = macro_f1(&[0, 1], &[0, 1], 3);
        assert_eq!(f, 1.0);
    }

    #[test]
    fn degenerate_predictions_get_zero_f1() {
        let prf = per_class_prf(&[0, 0, 0], &[1, 1, 1], 2);
        assert_eq!(prf[1].f1, 0.0);
        assert_eq!(prf[1].recall, 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_mismatched_lengths() {
        accuracy(&[0], &[0, 1]);
    }
}
