//! Confusion matrices.

use std::fmt;

/// A `K×K` confusion matrix: rows are true classes, columns predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<usize>,
    names: Vec<String>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix with numeric class names.
    pub fn new(k: usize) -> Self {
        ConfusionMatrix {
            k,
            counts: vec![0; k * k],
            names: (0..k).map(|i| i.to_string()).collect(),
        }
    }

    /// Creates an empty matrix with explicit class names.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty.
    pub fn with_names(names: Vec<String>) -> Self {
        assert!(!names.is_empty(), "confusion matrix needs at least one class");
        let k = names.len();
        ConfusionMatrix { k, counts: vec![0; k * k], names }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Records one `(truth, prediction)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        assert!(truth < self.k && prediction < self.k, "class index out of range");
        self.counts[truth * self.k + prediction] += 1;
    }

    /// Records a batch of observations.
    pub fn record_all(&mut self, truths: &[usize], predictions: &[usize]) {
        assert_eq!(truths.len(), predictions.len(), "length mismatch");
        for (&t, &p) in truths.iter().zip(predictions) {
            self.record(t, p);
        }
    }

    /// Count of `(truth, prediction)`.
    pub fn count(&self, truth: usize, prediction: usize) -> usize {
        self.counts[truth * self.k + prediction]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Number of ground-truth instances of class `c` (row sum).
    pub fn row_total(&self, c: usize) -> usize {
        (0..self.k).map(|j| self.count(c, j)).sum()
    }

    /// Overall accuracy (diagonal mass).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.k).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name_w = self.names.iter().map(|n| n.len()).max().unwrap_or(4).max(4);
        let cell_w = 6;
        write!(f, "{:<name_w$} ", "t\\p")?;
        for n in &self.names {
            let short: String = n.chars().take(cell_w - 1).collect();
            write!(f, "{short:>cell_w$}")?;
        }
        writeln!(f)?;
        for (i, n) in self.names.iter().enumerate() {
            write!(f, "{n:<name_w$} ")?;
            for j in 0..self.k {
                write!(f, "{:>cell_w$}", self.count(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut m = ConfusionMatrix::new(3);
        m.record_all(&[0, 0, 1, 2, 2], &[0, 1, 1, 2, 0]);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(2, 0), 1);
        assert_eq!(m.total(), 5);
        assert_eq!(m.row_total(2), 2);
        assert!((m.accuracy() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn empty_matrix_accuracy_is_zero() {
        assert_eq!(ConfusionMatrix::new(2).accuracy(), 0.0);
    }

    #[test]
    fn display_contains_names_and_counts() {
        let mut m = ConfusionMatrix::with_names(vec!["cat".into(), "dog".into()]);
        m.record(0, 0);
        m.record(1, 0);
        let s = m.to_string();
        assert!(s.contains("cat") && s.contains("dog"), "{s}");
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
