//! Property-based tests of metric invariants.

use proptest::prelude::*;
use tsdx_metrics::{
    accuracy, average_precision, macro_f1, multilabel_report, per_class_prf, precision_at_k,
    rank_by_score, ConfusionMatrix,
};

fn labels(k: usize, n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..k, n..=n)
}

proptest! {
    #[test]
    fn accuracy_bounded_and_exact_for_identity(l in labels(4, 10)) {
        prop_assert_eq!(accuracy(&l, &l), 1.0);
        let shifted: Vec<usize> = l.iter().map(|&x| (x + 1) % 4).collect();
        prop_assert_eq!(accuracy(&shifted, &l), 0.0);
    }

    #[test]
    fn accuracy_in_unit_interval(p in labels(5, 12), t in labels(5, 12)) {
        let a = accuracy(&p, &t);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn f1_components_bounded(p in labels(4, 20), t in labels(4, 20)) {
        for c in per_class_prf(&p, &t, 4) {
            prop_assert!((0.0..=1.0).contains(&c.precision));
            prop_assert!((0.0..=1.0).contains(&c.recall));
            prop_assert!((0.0..=1.0).contains(&c.f1));
            // F1 never exceeds either component's max.
            prop_assert!(c.f1 <= c.precision.max(c.recall) + 1e-6);
        }
        let m = macro_f1(&p, &t, 4);
        prop_assert!((0.0..=1.0).contains(&m));
    }

    #[test]
    fn confusion_matrix_row_totals_match_label_counts(p in labels(3, 30), t in labels(3, 30)) {
        let mut cm = ConfusionMatrix::new(3);
        cm.record_all(&t, &p);
        prop_assert_eq!(cm.total(), 30);
        for c in 0..3 {
            let count = t.iter().filter(|&&x| x == c).count();
            prop_assert_eq!(cm.row_total(c), count);
        }
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        // Diagonal mass equals accuracy agreement.
        let agree = p.iter().zip(&t).filter(|(a, b)| a == b).count();
        prop_assert!((cm.accuracy() - agree as f32 / 30.0).abs() < 1e-6);
    }

    #[test]
    fn average_precision_bounded(scores in prop::collection::vec(-5.0f32..5.0, 8),
                                 rel in prop::collection::vec(any::<bool>(), 8)) {
        if let Some(ap) = average_precision(&scores, &rel) {
            prop_assert!((0.0..=1.0 + 1e-6).contains(&ap));
        } else {
            prop_assert!(rel.iter().all(|&r| !r));
        }
    }

    #[test]
    fn perfect_ranking_yields_ap_one(n_pos in 1usize..5, n_neg in 0usize..5) {
        let mut scores = Vec::new();
        let mut rel = Vec::new();
        for i in 0..n_pos {
            scores.push(10.0 - i as f32 * 0.1);
            rel.push(true);
        }
        for i in 0..n_neg {
            scores.push(-1.0 - i as f32);
            rel.push(false);
        }
        prop_assert!((average_precision(&scores, &rel).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn precision_at_k_monotone_under_prefix_of_all_relevant(k in 1usize..10) {
        let ranked = vec![true; 10];
        prop_assert_eq!(precision_at_k(&ranked, k), 1.0);
    }

    #[test]
    fn rank_by_score_is_a_permutation(scores in prop::collection::vec(-3.0f32..3.0, 6),
                                      rel in prop::collection::vec(any::<bool>(), 6)) {
        let ranked = rank_by_score(&scores, &rel);
        prop_assert_eq!(ranked.len(), rel.len());
        prop_assert_eq!(
            ranked.iter().filter(|&&r| r).count(),
            rel.iter().filter(|&&r| r).count()
        );
    }

    #[test]
    fn multilabel_report_bounds(scores in prop::collection::vec(0.0f32..1.0, 12),
                                targets in prop::collection::vec(0.0f32..1.0, 12)) {
        let t: Vec<f32> = targets.iter().map(|&x| if x > 0.5 { 1.0 } else { 0.0 }).collect();
        let r = multilabel_report(&scores, &t, 3, 0.5);
        prop_assert!((0.0..=1.0).contains(&r.subset_accuracy));
        prop_assert!((0.0..=1.0).contains(&r.hamming_loss));
        prop_assert!((0.0..=1.0).contains(&r.micro_f1));
        prop_assert!((0.0..=1.0 + 1e-6).contains(&r.map));
        // Subset accuracy can never beat per-decision accuracy.
        prop_assert!(r.subset_accuracy <= 1.0 - r.hamming_loss + 1e-6);
    }
}
