//! Multi-head self-attention.

use rand::Rng;
use tsdx_tensor::{Graph, Var};

use crate::linear::Linear;
use crate::params::{Binding, ParamStore};

/// Largest `[B, H, T, T]` score-tensor size (elements) routed to the
/// composed matmul/softmax/matmul path by
/// [`MultiHeadAttention::forward`].
///
/// Measured on the table-4 geometry (`B*H` 32, `T` 17, `Dh` 16): composed
/// forward 97µs vs 125µs fused, and composed backward reuses the retained
/// probabilities where fused backward pays a 276µs recompute of every score
/// row. The composed advantage holds while the probability tensor stays
/// cache-resident; past 2^16 elements (256 KB) its materialization,
/// autograd retention, and the extra transpose overtake the fused kernel's
/// O(T) per-row streaming, so large problems go fused.
pub const COMPOSED_SCORES_MAX: usize = 1 << 16;

/// Multi-head scaled-dot-product self-attention over `[B, T, D]` inputs.
///
/// Heads are realized by reshaping the projected queries/keys/values to
/// `[B, H, T, D/H]` and running a batched matmul over the `[B, H]` batch
/// dimensions, exactly as in the original transformer.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Registers the four projection matrices under `name`.
    ///
    /// # Panics
    ///
    /// Panics unless `heads` divides `dim`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "heads ({heads}) must divide dim ({dim})");
        MultiHeadAttention {
            wq: Linear::new(store, rng, &format!("{name}.wq"), dim, dim),
            wk: Linear::new(store, rng, &format!("{name}.wk"), dim, dim),
            wv: Linear::new(store, rng, &format!("{name}.wv"), dim, dim),
            wo: Linear::new(store, rng, &format!("{name}.wo"), dim, dim),
            heads,
            dim,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies self-attention to `x` of shape `[B, T, D]`.
    ///
    /// Dispatches between two equivalent realizations of
    /// `softmax(QKᵀ/√Dh)·V` on the size of the `[B, H, T, T]` score tensor
    /// (see [`COMPOSED_SCORES_MAX`]): small problems take the composed
    /// matmul/softmax/matmul graph, whose retained probabilities make
    /// backward a pair of cheap matmuls; large problems take the fused
    /// [`Graph::attention`] kernel, which streams scores per query row and
    /// never materializes the probability tensor. Use
    /// [`forward_with_attn`](Self::forward_with_attn) when the
    /// probabilities themselves are needed.
    pub fn forward(&self, g: &mut Graph, p: &Binding, x: Var) -> Var {
        self.forward_impl(g, p, x, false).0
    }

    /// Like [`forward`](Self::forward) but also returns the attention
    /// probabilities (`[B, H, T, T]`) for introspection. Always takes the
    /// composed path, which produces them as a graph node.
    pub fn forward_with_attn(&self, g: &mut Graph, p: &Binding, x: Var) -> (Var, Var) {
        let (y, attn) = self.forward_impl(g, p, x, true);
        (y, attn.expect("composed path always yields probabilities"))
    }

    /// Shared projection/head-split/merge graph around either attention
    /// realization. Returns the probabilities when the composed path ran.
    fn forward_impl(
        &self,
        g: &mut Graph,
        p: &Binding,
        x: Var,
        want_attn: bool,
    ) -> (Var, Option<Var>) {
        let sh = g.shape(x).to_vec();
        assert_eq!(sh.len(), 3, "attention input must be [B, T, D]");
        let (b, t, d) = (sh[0], sh[1], sh[2]);
        assert_eq!(d, self.dim, "attention width mismatch");
        let h = self.heads;
        let dh = d / h;

        let q = self.wq.forward(g, p, x);
        let k = self.wk.forward(g, p, x);
        let v = self.wv.forward(g, p, x);

        // [B, T, D] -> [B, H, T, Dh]
        let split = |g: &mut Graph, y: Var| {
            let r = g.reshape(y, &[b, t, h, dh]);
            g.permute(r, &[0, 2, 1, 3])
        };
        let q = split(g, q);
        let k = split(g, k);
        let v = split(g, v);
        let scale = 1.0 / (dh as f32).sqrt();

        let (ctx, attn) = if want_attn || b * h * t * t <= COMPOSED_SCORES_MAX {
            let kt = g.transpose_last2(k);
            let scores = g.matmul(q, kt);
            let scaled = g.scale(scores, scale);
            let attn = g.softmax_last(scaled);
            (g.matmul(attn, v), Some(attn))
        } else {
            (g.attention(q, k, v, scale), None)
        };
        let merged = g.permute(ctx, &[0, 2, 1, 3]);
        let flat = g.reshape(merged, &[b, t, d]);
        (self.wo.forward(g, p, flat), attn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsdx_tensor::Tensor;

    fn setup(dim: usize, heads: usize) -> (ParamStore, MultiHeadAttention) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(42);
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "attn", dim, heads);
        (store, mha)
    }

    #[test]
    fn output_shape_matches_input() {
        let (store, mha) = setup(8, 2);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::ones(&[2, 5, 8]));
        let y = mha.forward(&mut g, &p, x);
        assert_eq!(g.shape(y), &[2, 5, 8]);
    }

    #[test]
    fn attention_rows_are_distributions() {
        let (store, mha) = setup(4, 2);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[1, 3, 4], |i| (i as f32 * 0.31).sin()));
        let (_, attn) = mha.forward_with_attn(&mut g, &p, x);
        let a = g.value(attn);
        assert_eq!(a.shape(), &[1, 2, 3, 3]);
        for row in a.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn permutation_equivariance_without_positions() {
        // Self-attention without positional encoding is permutation
        // equivariant: permuting tokens permutes outputs identically.
        let (store, mha) = setup(4, 1);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x0 = Tensor::from_fn(&[1, 3, 4], |i| (i as f32 * 0.17).cos());
        // Swap tokens 0 and 2.
        let mut swapped = vec![0.0; 12];
        for t in 0..3 {
            let src = [2usize, 1, 0][t];
            swapped[t * 4..(t + 1) * 4].copy_from_slice(&x0.data()[src * 4..(src + 1) * 4]);
        }
        let xa = g.constant(x0);
        let xb = g.constant(Tensor::from_vec(swapped, &[1, 3, 4]));
        let ya = mha.forward(&mut g, &p, xa);
        let yb = mha.forward(&mut g, &p, xb);
        let a = g.value(ya);
        let b = g.value(yb);
        for t in 0..3 {
            let src = [2usize, 1, 0][t];
            for c in 0..4 {
                assert!(
                    (b.at(&[0, t, c]) - a.at(&[0, src, c])).abs() < 1e-5,
                    "not permutation equivariant"
                );
            }
        }
    }

    #[test]
    fn fused_forward_matches_composed_path() {
        // Past the dispatch cap `forward` uses the fused kernel while
        // `forward_with_attn` always composes; both must agree. T is sized
        // so B*H*T*T exceeds COMPOSED_SCORES_MAX and the fused branch
        // actually runs.
        let (store, mha) = setup(8, 2);
        let t = 200;
        assert!(2 * t * t > COMPOSED_SCORES_MAX, "test no longer covers the fused branch");
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[1, t, 8], |i| (i as f32 * 0.13).sin()));
        let fused = mha.forward(&mut g, &p, x);
        let (composed, _) = mha.forward_with_attn(&mut g, &p, x);
        assert!(
            g.value(fused).allclose(g.value(composed), 1e-4),
            "fused and composed attention diverged"
        );
    }

    #[test]
    fn dispatch_paths_agree_below_cap() {
        // Below the cap `forward` takes the composed path; it must agree
        // with `forward_with_attn`'s graph exactly (same ops, same order).
        let (store, mha) = setup(8, 2);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[2, 5, 8], |i| (i as f32 * 0.13).sin()));
        let small = mha.forward(&mut g, &p, x);
        let (composed, _) = mha.forward_with_attn(&mut g, &p, x);
        assert!(
            g.value(small).allclose(g.value(composed), 1e-6),
            "composed dispatch diverged from forward_with_attn"
        );
    }

    #[test]
    fn gradcheck_through_attention() {
        // End-to-end gradient check of the full attention block w.r.t. its
        // input, using frozen parameters.
        let (store, mha) = setup(4, 2);
        let x = Tensor::from_fn(&[1, 3, 4], |i| (i as f32 * 0.23).sin() * 0.5);
        tsdx_tensor::grad_check::assert_gradients(&[x], 1e-2, 2e-2, |g, v| {
            let p = store.bind_frozen(g);
            let y = mha.forward(g, &p, v[0]);
            g.mean_all(y)
        });
    }
}
