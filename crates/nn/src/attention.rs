//! Multi-head self-attention.

use rand::Rng;
use tsdx_tensor::{metrics, ops, Graph, Tensor, Var};

use crate::linear::Linear;
use crate::params::{Binding, ParamStore};

/// Largest `[B, H, T, T]` score-tensor size (elements) routed to the
/// composed matmul/softmax/matmul path by
/// [`MultiHeadAttention::forward`].
///
/// Measured on the table-4 geometry (`B*H` 32, `T` 17, `Dh` 16): composed
/// forward 97µs vs 125µs fused, and composed backward reuses the retained
/// probabilities where fused backward pays a 276µs recompute of every score
/// row. The composed advantage holds while the probability tensor stays
/// cache-resident; past 2^16 elements (256 KB) its materialization,
/// autograd retention, and the extra transpose overtake the fused kernel's
/// O(T) per-row streaming, so large problems go fused.
pub const COMPOSED_SCORES_MAX: usize = 1 << 16;

/// Key/value projections retained from a
/// [`MultiHeadAttention::forward_prefix`] call, so a later call over a
/// sequence sharing a bitwise-identical leading prefix can skip
/// re-projecting those rows.
///
/// The cache is valid for exactly as long as the parameters that produced
/// it: any weight update invalidates it. Callers that stream inference over
/// a frozen model (the intended use) get this for free by holding the cache
/// alongside an immutable borrow of the model.
#[derive(Debug, Clone)]
pub struct AttnKvCache {
    /// Full key projections `[B, T, D]` of the producing call.
    k: Tensor,
    /// Full value projections `[B, T, D]` of the producing call.
    v: Tensor,
}

impl AttnKvCache {
    /// Number of cached token rows.
    pub fn len(&self) -> usize {
        self.k.shape()[1]
    }

    /// Whether the cache holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Multi-head scaled-dot-product self-attention over `[B, T, D]` inputs.
///
/// Heads are realized by reshaping the projected queries/keys/values to
/// `[B, H, T, D/H]` and running a batched matmul over the `[B, H]` batch
/// dimensions, exactly as in the original transformer.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Registers the four projection matrices under `name`.
    ///
    /// # Panics
    ///
    /// Panics unless `heads` divides `dim`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "heads ({heads}) must divide dim ({dim})");
        MultiHeadAttention {
            wq: Linear::new(store, rng, &format!("{name}.wq"), dim, dim),
            wk: Linear::new(store, rng, &format!("{name}.wk"), dim, dim),
            wv: Linear::new(store, rng, &format!("{name}.wv"), dim, dim),
            wo: Linear::new(store, rng, &format!("{name}.wo"), dim, dim),
            heads,
            dim,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies self-attention to `x` of shape `[B, T, D]`.
    ///
    /// Dispatches between two equivalent realizations of
    /// `softmax(QKᵀ/√Dh)·V` on the size of the `[B, H, T, T]` score tensor
    /// (see [`COMPOSED_SCORES_MAX`]): small problems take the composed
    /// matmul/softmax/matmul graph, whose retained probabilities make
    /// backward a pair of cheap matmuls; large problems take the fused
    /// [`Graph::attention`] kernel, which streams scores per query row and
    /// never materializes the probability tensor. Use
    /// [`forward_with_attn`](Self::forward_with_attn) when the
    /// probabilities themselves are needed.
    pub fn forward(&self, g: &mut Graph, p: &Binding, x: Var) -> Var {
        self.forward_impl(g, p, x, false).0
    }

    /// Like [`forward`](Self::forward) but also returns the attention
    /// probabilities (`[B, H, T, T]`) for introspection. Always takes the
    /// composed path, which produces them as a graph node.
    pub fn forward_with_attn(&self, g: &mut Graph, p: &Binding, x: Var) -> (Var, Var) {
        let (y, attn) = self.forward_impl(g, p, x, true);
        (y, attn.expect("composed path always yields probabilities"))
    }

    /// Prefix-aware self-attention for incremental inference.
    ///
    /// The leading `prefix` tokens of `x` are declared bitwise identical to
    /// the tokens of the call that produced `cache`, so their key/value
    /// projections are reused instead of recomputed; only the suffix rows go
    /// through `wk`/`wv`. Queries are always computed for every token —
    /// attention here is bidirectional, so every output row depends on every
    /// input row and no output can be carried over.
    ///
    /// Returns the attention output and a full-length cache for the next
    /// call. With `prefix == 0` or no cache this is op-for-op the same graph
    /// as [`forward`](Self::forward) (bit-identical output): linear layers
    /// act row-wise, so the reassembled projections match a full
    /// recomputation bit for bit, and the downstream dispatch between the
    /// composed and fused kernels uses the same size rule.
    ///
    /// # Panics
    ///
    /// Panics when `prefix > 0` but the cache is missing, shorter than
    /// `prefix`, or from a different batch size / width.
    pub fn forward_prefix(
        &self,
        g: &mut Graph,
        p: &Binding,
        x: Var,
        cache: Option<&AttnKvCache>,
        prefix: usize,
    ) -> (Var, AttnKvCache) {
        let sh = g.shape(x).to_vec();
        assert_eq!(sh.len(), 3, "attention input must be [B, T, D]");
        let (b, t, d) = (sh[0], sh[1], sh[2]);
        assert_eq!(d, self.dim, "attention width mismatch");
        assert!(prefix <= t, "prefix ({prefix}) exceeds sequence length ({t})");

        let q = self.wq.forward(g, p, x);
        let (k, v) = if prefix == 0 {
            (self.wk.forward(g, p, x), self.wv.forward(g, p, x))
        } else {
            let cache = cache.expect("prefix > 0 requires a cache from a previous call");
            assert!(
                cache.k.shape()[0] == b && cache.k.shape()[2] == d && cache.len() >= prefix,
                "cache shape {:?} cannot serve batch {b}, width {d}, prefix {prefix}",
                cache.k.shape(),
            );
            let k_old = g.constant(ops::narrow(&cache.k, 1, 0, prefix));
            let v_old = g.constant(ops::narrow(&cache.v, 1, 0, prefix));
            if prefix == t {
                (k_old, v_old)
            } else {
                let suffix = g.narrow(x, 1, prefix, t - prefix);
                let k_new = self.wk.forward(g, p, suffix);
                let v_new = self.wv.forward(g, p, suffix);
                (g.concat(&[k_old, k_new], 1), g.concat(&[v_old, v_new], 1))
            }
        };
        metrics::counter_add("attn/kv_prefix_tokens", prefix as u64);
        let next = AttnKvCache { k: g.value(k).clone(), v: g.value(v).clone() };
        (self.attend(g, p, q, k, v, false).0, next)
    }

    /// Shared projection/head-split/merge graph around either attention
    /// realization. Returns the probabilities when the composed path ran.
    fn forward_impl(
        &self,
        g: &mut Graph,
        p: &Binding,
        x: Var,
        want_attn: bool,
    ) -> (Var, Option<Var>) {
        let sh = g.shape(x).to_vec();
        assert_eq!(sh.len(), 3, "attention input must be [B, T, D]");
        assert_eq!(sh[2], self.dim, "attention width mismatch");

        let q = self.wq.forward(g, p, x);
        let k = self.wk.forward(g, p, x);
        let v = self.wv.forward(g, p, x);
        self.attend(g, p, q, k, v, want_attn)
    }

    /// Head-split, scaled-dot-product dispatch, and output projection over
    /// already-projected `[B, T, D]` queries/keys/values.
    fn attend(
        &self,
        g: &mut Graph,
        p: &Binding,
        q: Var,
        k: Var,
        v: Var,
        want_attn: bool,
    ) -> (Var, Option<Var>) {
        let sh = g.shape(q).to_vec();
        let (b, t, d) = (sh[0], sh[1], sh[2]);
        let h = self.heads;
        let dh = d / h;

        // [B, T, D] -> [B, H, T, Dh]
        let split = |g: &mut Graph, y: Var| {
            let r = g.reshape(y, &[b, t, h, dh]);
            g.permute(r, &[0, 2, 1, 3])
        };
        let q = split(g, q);
        let k = split(g, k);
        let v = split(g, v);
        let scale = 1.0 / (dh as f32).sqrt();

        let (ctx, attn) = if want_attn || b * h * t * t <= COMPOSED_SCORES_MAX {
            let kt = g.transpose_last2(k);
            let scores = g.matmul(q, kt);
            let scaled = g.scale(scores, scale);
            let attn = g.softmax_last(scaled);
            (g.matmul(attn, v), Some(attn))
        } else {
            (g.attention(q, k, v, scale), None)
        };
        let merged = g.permute(ctx, &[0, 2, 1, 3]);
        let flat = g.reshape(merged, &[b, t, d]);
        (self.wo.forward(g, p, flat), attn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsdx_tensor::Tensor;

    fn setup(dim: usize, heads: usize) -> (ParamStore, MultiHeadAttention) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(42);
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "attn", dim, heads);
        (store, mha)
    }

    #[test]
    fn output_shape_matches_input() {
        let (store, mha) = setup(8, 2);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::ones(&[2, 5, 8]));
        let y = mha.forward(&mut g, &p, x);
        assert_eq!(g.shape(y), &[2, 5, 8]);
    }

    #[test]
    fn attention_rows_are_distributions() {
        let (store, mha) = setup(4, 2);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[1, 3, 4], |i| (i as f32 * 0.31).sin()));
        let (_, attn) = mha.forward_with_attn(&mut g, &p, x);
        let a = g.value(attn);
        assert_eq!(a.shape(), &[1, 2, 3, 3]);
        for row in a.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn permutation_equivariance_without_positions() {
        // Self-attention without positional encoding is permutation
        // equivariant: permuting tokens permutes outputs identically.
        let (store, mha) = setup(4, 1);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x0 = Tensor::from_fn(&[1, 3, 4], |i| (i as f32 * 0.17).cos());
        // Swap tokens 0 and 2.
        let mut swapped = vec![0.0; 12];
        for t in 0..3 {
            let src = [2usize, 1, 0][t];
            swapped[t * 4..(t + 1) * 4].copy_from_slice(&x0.data()[src * 4..(src + 1) * 4]);
        }
        let xa = g.constant(x0);
        let xb = g.constant(Tensor::from_vec(swapped, &[1, 3, 4]));
        let ya = mha.forward(&mut g, &p, xa);
        let yb = mha.forward(&mut g, &p, xb);
        let a = g.value(ya);
        let b = g.value(yb);
        for t in 0..3 {
            let src = [2usize, 1, 0][t];
            for c in 0..4 {
                assert!(
                    (b.at(&[0, t, c]) - a.at(&[0, src, c])).abs() < 1e-5,
                    "not permutation equivariant"
                );
            }
        }
    }

    #[test]
    fn fused_forward_matches_composed_path() {
        // Past the dispatch cap `forward` uses the fused kernel while
        // `forward_with_attn` always composes; both must agree. T is sized
        // so B*H*T*T exceeds COMPOSED_SCORES_MAX and the fused branch
        // actually runs.
        let (store, mha) = setup(8, 2);
        let t = 200;
        assert!(2 * t * t > COMPOSED_SCORES_MAX, "test no longer covers the fused branch");
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[1, t, 8], |i| (i as f32 * 0.13).sin()));
        let fused = mha.forward(&mut g, &p, x);
        let (composed, _) = mha.forward_with_attn(&mut g, &p, x);
        assert!(
            g.value(fused).allclose(g.value(composed), 1e-4),
            "fused and composed attention diverged"
        );
    }

    #[test]
    fn dispatch_paths_agree_below_cap() {
        // Below the cap `forward` takes the composed path; it must agree
        // with `forward_with_attn`'s graph exactly (same ops, same order).
        let (store, mha) = setup(8, 2);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[2, 5, 8], |i| (i as f32 * 0.13).sin()));
        let small = mha.forward(&mut g, &p, x);
        let (composed, _) = mha.forward_with_attn(&mut g, &p, x);
        assert!(
            g.value(small).allclose(g.value(composed), 1e-6),
            "composed dispatch diverged from forward_with_attn"
        );
    }

    #[test]
    fn forward_prefix_without_cache_is_bit_identical_to_forward() {
        let (store, mha) = setup(8, 2);
        let mut g = Graph::new();
        let p = store.bind_frozen(&mut g);
        let x = g.constant(Tensor::from_fn(&[2, 5, 8], |i| (i as f32 * 0.19).sin()));
        let plain = mha.forward(&mut g, &p, x);
        let (prefixed, cache) = mha.forward_prefix(&mut g, &p, x, None, 0);
        assert_eq!(g.value(plain).data(), g.value(prefixed).data());
        assert_eq!(cache.len(), 5);
        assert!(!cache.is_empty());
    }

    #[test]
    fn cached_prefix_rows_reproduce_full_recompute_bitwise() {
        // Seed a cache from one sequence, then rerun with the same leading
        // rows and a fresh suffix: the prefix path must match a full
        // forward bit for bit at every prefix length.
        let (store, mha) = setup(8, 2);
        let x0 = Tensor::from_fn(&[2, 6, 8], |i| (i as f32 * 0.23).cos());
        for prefix in 0..=6usize {
            let mut g = Graph::new();
            let p = store.bind_frozen(&mut g);
            let xa = g.constant(x0.clone());
            let (_, cache) = mha.forward_prefix(&mut g, &p, xa, None, 0);
            // Same prefix rows, perturbed suffix rows.
            let x1 = Tensor::from_fn(&[2, 6, 8], |i| {
                let row = (i / 8) % 6;
                let base = (i as f32 * 0.23).cos();
                if row < prefix {
                    base
                } else {
                    base + ((i as f32) * 0.07).sin()
                }
            });
            let xb = g.constant(x1.clone());
            let full = mha.forward(&mut g, &p, xb);
            let (streamed, next) = mha.forward_prefix(&mut g, &p, xb, Some(&cache), prefix);
            assert_eq!(
                g.value(full).data(),
                g.value(streamed).data(),
                "prefix {prefix} diverged from full recompute"
            );
            assert_eq!(next.len(), 6);
        }
    }

    #[test]
    fn forward_prefix_takes_the_fused_branch_above_the_cap() {
        // Large sequences dispatch to the fused kernel on both paths, so
        // the prefix path must stay bit-identical there too.
        let (store, mha) = setup(8, 2);
        let t = 200;
        assert!(2 * t * t > COMPOSED_SCORES_MAX);
        let mut g = Graph::new();
        let p = store.bind_frozen(&mut g);
        let x = g.constant(Tensor::from_fn(&[1, t, 8], |i| (i as f32 * 0.11).sin()));
        let (_, cache) = mha.forward_prefix(&mut g, &p, x, None, 0);
        let full = mha.forward(&mut g, &p, x);
        let (streamed, _) = mha.forward_prefix(&mut g, &p, x, Some(&cache), 64);
        assert_eq!(g.value(full).data(), g.value(streamed).data());
    }

    #[test]
    #[should_panic]
    fn forward_prefix_rejects_missing_cache() {
        let (store, mha) = setup(4, 2);
        let mut g = Graph::new();
        let p = store.bind_frozen(&mut g);
        let x = g.constant(Tensor::ones(&[1, 3, 4]));
        mha.forward_prefix(&mut g, &p, x, None, 1);
    }

    #[test]
    fn gradcheck_through_attention() {
        // End-to-end gradient check of the full attention block w.r.t. its
        // input, using frozen parameters.
        let (store, mha) = setup(4, 2);
        let x = Tensor::from_fn(&[1, 3, 4], |i| (i as f32 * 0.23).sin() * 0.5);
        tsdx_tensor::grad_check::assert_gradients(&[x], 1e-2, 2e-2, |g, v| {
            let p = store.bind_frozen(g);
            let y = mha.forward(g, &p, v[0]);
            g.mean_all(y)
        });
    }
}
