//! Inverted dropout.

use rand::Rng;
use tsdx_tensor::{Graph, Tensor, Var};

/// Inverted dropout: at train time, zeroes each element with probability
/// `p` and rescales survivors by `1/(1-p)` so inference needs no change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1), got {p}");
        Dropout { p }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Applies dropout when `train` is true; identity otherwise.
    ///
    /// The Bernoulli mask is recorded on the tape as a constant, so the
    /// backward pass masks gradients identically.
    pub fn forward(&self, g: &mut Graph, x: Var, rng: &mut impl Rng, train: bool) -> Var {
        if !train || self.p == 0.0 {
            return x;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_fn(g.shape(x), |_| {
            if rng.random_range(0.0..1.0f32) < keep {
                scale
            } else {
                0.0
            }
        });
        let m = g.constant(mask);
        g.mul(x, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[4]));
        let mut rng = StdRng::seed_from_u64(0);
        let y = d.forward(&mut g, x, &mut rng, false);
        assert_eq!(y, x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let d = Dropout::new(0.3);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[20_000]));
        let mut rng = StdRng::seed_from_u64(1);
        let y = d.forward(&mut g, x, &mut rng, true);
        let mean = g.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "dropout expectation drifted: {mean}");
        // Some elements are dropped, survivors are scaled.
        assert_eq!(g.value(y).min(), 0.0);
        assert!((g.value(y).max() - 1.0 / 0.7).abs() < 1e-5);
    }

    #[test]
    fn p_zero_is_identity_even_in_train() {
        let d = Dropout::new(0.0);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[4]));
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(d.forward(&mut g, x, &mut rng, true), x);
    }

    #[test]
    #[should_panic]
    fn rejects_p_one() {
        Dropout::new(1.0);
    }
}
