//! Checkpoint (de)serialization for [`ParamStore`]s.
//!
//! The format is a minimal little-endian binary container:
//!
//! ```text
//! magic   b"TSDXCKP1"
//! u32     number of tensors
//! repeat: u32 name length, UTF-8 name bytes,
//!         u32 rank, u32 dims...,
//!         f32 data (row-major)
//! ```

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use tsdx_tensor::Tensor;

use crate::params::ParamStore;

const MAGIC: &[u8; 8] = b"TSDXCKP1";

/// Error returned by checkpoint loading.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a tsdx checkpoint or is corrupt.
    Format(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Format(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes every parameter of `store` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn save_checkpoint(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for (name, tensor) in store.iter() {
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(tensor.rank() as u32).to_le_bytes())?;
        for &d in tensor.shape() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for v in tensor.to_vec() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads all `(name, tensor)` entries from a checkpoint file.
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] on a bad magic number or truncated
/// contents, and [`CheckpointError::Io`] on read failures.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic number".into()));
    }
    let count = read_u32(&mut r)? as usize;
    if count > 1_000_000 {
        return Err(CheckpointError::Format(format!("implausible tensor count {count}")));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Format(format!("implausible name length {name_len}")));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| CheckpointError::Format("non-UTF-8 parameter name".into()))?;
        let rank = read_u32(&mut r)? as usize;
        if rank > 16 {
            return Err(CheckpointError::Format(format!("implausible rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u32(&mut r)? as usize);
        }
        let n: usize = shape.iter().product();
        if n > 256 << 20 {
            return Err(CheckpointError::Format("implausible tensor size".into()));
        }
        let mut data = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        entries.push((name, Tensor::from_vec(data, &shape)));
    }
    Ok(entries)
}

/// Restores parameters of `store` by name from the checkpoint at `path`.
///
/// Returns the number of parameters restored.
///
/// # Errors
///
/// See [`read_checkpoint`].
///
/// # Panics
///
/// Panics if a matching name has a mismatched shape (that indicates a model
/// configuration mismatch, which must not be silently ignored).
pub fn load_checkpoint(
    store: &mut ParamStore,
    path: impl AsRef<Path>,
) -> Result<usize, CheckpointError> {
    let entries = read_checkpoint(path)?;
    Ok(store.load_named(&entries))
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tsdx-ckpt-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_values() {
        let mut store = ParamStore::new();
        store.add("a.weight", Tensor::from_fn(&[3, 4], |i| i as f32 * 0.5));
        store.add("a.bias", Tensor::from_vec(vec![-1.0, 2.0, 0.25, 9.0], &[4]));
        let path = tmp("roundtrip");
        save_checkpoint(&store, &path).unwrap();

        let mut fresh = ParamStore::new();
        let w = fresh.add("a.weight", Tensor::zeros(&[3, 4]));
        let b = fresh.add("a.bias", Tensor::zeros(&[4]));
        let n = load_checkpoint(&mut fresh, &path).unwrap();
        assert_eq!(n, 2);
        assert_eq!(fresh.value(w), store.value(store.ids().next().unwrap()));
        assert_eq!(fresh.value(b).data(), &[-1.0, 2.0, 0.25, 9.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unknown_names_are_ignored() {
        let mut store = ParamStore::new();
        store.add("old", Tensor::ones(&[2]));
        let path = tmp("unknown");
        save_checkpoint(&store, &path).unwrap();
        let mut fresh = ParamStore::new();
        fresh.add("new", Tensor::zeros(&[2]));
        let n = load_checkpoint(&mut fresh, &path).unwrap();
        assert_eq!(n, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTATSDXFILE____").unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_is_io_error() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::ones(&[64]));
        let path = tmp("trunc");
        save_checkpoint(&store, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read_checkpoint(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
