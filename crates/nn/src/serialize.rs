//! Crash-safe checkpoint (de)serialization for [`ParamStore`]s and full
//! training state.
//!
//! # Format (version 2)
//!
//! A little-endian binary container with end-to-end integrity checks:
//!
//! ```text
//! magic    b"TSDXCKP2"
//! u64      file length (total, including the trailing CRC)
//! u32      epoch          — epochs completed when this was written
//! u32      step           — optimizer steps taken
//! f32      lr_scale       — bad-step backoff scale (1.0 = none)
//! u32      consecutive_bad
//! u32      skipped_steps
//! u8       has_rng        — 1 ⇒ 4×u64 xoshiro256** state follows
//! u8       has_opt        — 1 ⇒ AdamW moments follow the tensors
//! u32      number of tensors
//! repeat:  u32 name length, UTF-8 name bytes,
//!          u32 rank, u32 dims...,
//!          f32 data (row-major), u32 CRC32 of the data bytes
//! if opt:  u32 t, then per tensor: f32 m-data + u32 CRC,
//!          f32 v-data + u32 CRC (shapes mirror the tensors above)
//! u32      CRC32 of every preceding byte
//! ```
//!
//! # Crash safety
//!
//! [`save_train_checkpoint`] never leaves a half-written file at the
//! destination: the encoded bytes go to a same-directory temp file, the
//! temp file is fsynced, then atomically renamed over the destination (and
//! the directory entry is synced, best effort). A crash at any point leaves
//! either the complete old checkpoint or the complete new one.
//!
//! # Corruption detection
//!
//! Readers verify the declared length (truncation ⇒
//! [`CheckpointError::Truncated`]) and the whole-file CRC *before* parsing
//! (any bit flip ⇒ [`CheckpointError::Checksum`]), then re-verify each
//! tensor's own CRC while decoding so a rare multi-bit corruption is pinned
//! to the tensor it hit. A corrupt checkpoint is always a typed error,
//! never a panic and never a silently-wrong load — fuzzed over truncation
//! points and bit flips by `tests/checkpoint_corruption.rs`.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use tsdx_tensor::Tensor;

use crate::optim::AdamWState;
use crate::params::ParamStore;

const MAGIC_V2: &[u8; 8] = b"TSDXCKP2";
const MAGIC_V1: &[u8; 8] = b"TSDXCKP1";

/// Error returned by checkpoint saving and loading.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a tsdx checkpoint or violates the format.
    Format(String),
    /// The file is shorter than its header declares (torn write).
    Truncated {
        /// Length the header declares.
        expected: u64,
        /// Length actually on disk.
        actual: u64,
    },
    /// A CRC32 mismatch: the bytes were silently corrupted at rest.
    Checksum {
        /// What the checksum covered (`"file"` or a tensor name).
        section: String,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the bytes read.
        computed: u32,
    },
    /// A checkpoint tensor's shape conflicts with the model's parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape registered in the store.
        expected: Vec<usize>,
        /// Shape found in the checkpoint.
        found: Vec<usize>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
            CheckpointError::Truncated { expected, actual } => {
                write!(f, "truncated checkpoint: header declares {expected} bytes, file has {actual}")
            }
            CheckpointError::Checksum { section, stored, computed } => write!(
                f,
                "checkpoint corrupted: CRC32 mismatch in {section} (stored {stored:#010x}, computed {computed:#010x})"
            ),
            CheckpointError::ShapeMismatch { name, expected, found } => write!(
                f,
                "checkpoint shape mismatch for {name}: store has {expected:?}, checkpoint has {found:?}"
            ),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Scalar training-loop state carried inside a checkpoint so a resumed run
/// continues bit-identically (see `tsdx_core::train_resilient`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainState {
    /// Epochs fully completed when the checkpoint was written.
    pub epoch: u32,
    /// Optimizer steps taken (including skipped bad batches).
    pub step: u32,
    /// Current bad-step learning-rate backoff scale (1.0 = no backoff).
    pub lr_scale: f32,
    /// Consecutive non-finite batches immediately before the checkpoint.
    pub consecutive_bad: u32,
    /// Total batches skipped by the non-finite guard so far.
    pub skipped_steps: u32,
    /// Shuffle/dropout RNG state at the checkpoint boundary.
    pub rng: Option<[u64; 4]>,
}

impl Default for TrainState {
    fn default() -> Self {
        TrainState {
            epoch: 0,
            step: 0,
            lr_scale: 1.0,
            consecutive_bad: 0,
            skipped_steps: 0,
            rng: None,
        }
    }
}

/// Everything a resumable training run needs: parameters plus optional
/// optimizer moments and loop state.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Scalar loop state (epoch, step, RNG, guard counters).
    pub state: TrainState,
    /// `(name, value)` for every parameter, in registration order.
    pub params: Vec<(String, Tensor)>,
    /// AdamW moments aligned with `params`, when saved mid-training.
    pub opt: Option<AdamWState>,
}

impl TrainCheckpoint {
    /// A parameters-only checkpoint (no optimizer or loop state).
    pub fn from_params(store: &ParamStore) -> Self {
        TrainCheckpoint {
            state: TrainState::default(),
            params: store.iter().map(|(n, t)| (n.to_string(), t.clone())).collect(),
            opt: None,
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial).

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE 802.3 / zlib polynomial) of `bytes`.
///
/// The same checksum guards every on-disk artifact in the workspace —
/// checkpoint-v2 sections here and vector-index shards in `tsdx-index` —
/// so corruption tooling and fault-injection tests share one definition.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Encoding.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_tensor_data(out: &mut Vec<u8>, t: &Tensor) {
    let start = out.len();
    for v in t.to_vec() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&out[start..]);
    put_u32(out, crc);
}

fn encode(ckpt: &TrainCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V2);
    out.extend_from_slice(&0u64.to_le_bytes()); // file length, patched below
    put_u32(&mut out, ckpt.state.epoch);
    put_u32(&mut out, ckpt.state.step);
    out.extend_from_slice(&ckpt.state.lr_scale.to_le_bytes());
    put_u32(&mut out, ckpt.state.consecutive_bad);
    put_u32(&mut out, ckpt.state.skipped_steps);
    match ckpt.state.rng {
        Some(s) => {
            out.push(1);
            for w in s {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        None => out.push(0),
    }
    out.push(ckpt.opt.is_some() as u8);
    put_u32(&mut out, ckpt.params.len() as u32);
    for (name, tensor) in &ckpt.params {
        put_u32(&mut out, name.len() as u32);
        out.extend_from_slice(name.as_bytes());
        put_u32(&mut out, tensor.rank() as u32);
        for &d in tensor.shape() {
            put_u32(&mut out, d as u32);
        }
        put_tensor_data(&mut out, tensor);
    }
    if let Some(opt) = &ckpt.opt {
        assert_eq!(opt.m.len(), ckpt.params.len(), "optimizer moments must align with params");
        put_u32(&mut out, opt.t);
        for i in 0..opt.m.len() {
            put_tensor_data(&mut out, &opt.m[i]);
            put_tensor_data(&mut out, &opt.v[i]);
        }
    }
    let total = (out.len() + 4) as u64;
    out[8..16].copy_from_slice(&total.to_le_bytes());
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

// ---------------------------------------------------------------------------
// Decoding.

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        // Unreachable for any file that passed the whole-file CRC, but kept
        // as a hard bound so decoding is safe in isolation too.
        let end =
            self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
                CheckpointError::Format("section extends past end of file".into())
            })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads `numel` f32s plus their CRC, verifying it.
    fn tensor_data(&mut self, numel: usize, section: &str) -> Result<Vec<f32>, CheckpointError> {
        let raw = self.take(numel * 4)?;
        let computed = crc32(raw);
        let stored = self.u32()?;
        if stored != computed {
            return Err(CheckpointError::Checksum {
                section: section.to_string(),
                stored,
                computed,
            });
        }
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

fn decode(bytes: &[u8]) -> Result<TrainCheckpoint, CheckpointError> {
    if bytes.len() >= 8 && &bytes[..8] == MAGIC_V1 {
        return Err(CheckpointError::Format(
            "legacy v1 checkpoint (no checksums); re-save with this version".into(),
        ));
    }
    if bytes.len() < 16 || &bytes[..8] != MAGIC_V2 {
        return Err(CheckpointError::Format("bad magic number".into()));
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let actual = bytes.len() as u64;
    if actual < declared {
        return Err(CheckpointError::Truncated { expected: declared, actual });
    }
    if actual > declared {
        return Err(CheckpointError::Format(format!(
            "{} trailing bytes after declared end",
            actual - declared
        )));
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(CheckpointError::Checksum { section: "file".into(), stored, computed });
    }

    let mut d = Dec { bytes: body, pos: 16 };
    let epoch = d.u32()?;
    let step = d.u32()?;
    let lr_scale = d.f32()?;
    let consecutive_bad = d.u32()?;
    let skipped_steps = d.u32()?;
    let rng = match d.u8()? {
        0 => None,
        1 => {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = d.u64()?;
            }
            Some(s)
        }
        other => return Err(CheckpointError::Format(format!("bad rng flag {other}"))),
    };
    let has_opt = match d.u8()? {
        0 => false,
        1 => true,
        other => return Err(CheckpointError::Format(format!("bad optimizer flag {other}"))),
    };
    let count = d.u32()? as usize;
    if count > 1_000_000 {
        return Err(CheckpointError::Format(format!("implausible tensor count {count}")));
    }
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = d.u32()? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Format(format!("implausible name length {name_len}")));
        }
        let name = String::from_utf8(d.take(name_len)?.to_vec())
            .map_err(|_| CheckpointError::Format("non-UTF-8 parameter name".into()))?;
        let rank = d.u32()? as usize;
        if rank > 16 {
            return Err(CheckpointError::Format(format!("implausible rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(d.u32()? as usize);
        }
        let n: usize = shape.iter().product();
        if n > 256 << 20 {
            return Err(CheckpointError::Format("implausible tensor size".into()));
        }
        let data = d.tensor_data(n, &name)?;
        params.push((name, Tensor::from_vec(data, &shape)));
    }
    let opt = if has_opt {
        let t = d.u32()?;
        let mut m = Vec::with_capacity(count);
        let mut v = Vec::with_capacity(count);
        for (name, tensor) in &params {
            let shape = tensor.shape().to_vec();
            let n = tensor.numel();
            m.push(Tensor::from_vec(d.tensor_data(n, &format!("{name}.adamw.m"))?, &shape));
            v.push(Tensor::from_vec(d.tensor_data(n, &format!("{name}.adamw.v"))?, &shape));
        }
        Some(AdamWState { t, m, v })
    } else {
        None
    };
    if d.pos != body.len() {
        return Err(CheckpointError::Format(format!(
            "{} undeclared bytes before file CRC",
            body.len() - d.pos
        )));
    }
    Ok(TrainCheckpoint {
        state: TrainState { epoch, step, lr_scale, consecutive_bad, skipped_steps, rng },
        params,
        opt,
    })
}

// ---------------------------------------------------------------------------
// Atomic file plumbing.

/// Best-effort directory-entry sync after a rename (no-op off unix; errors
/// ignored — some filesystems refuse fsync on directories).
fn sync_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(f) = File::open(dir) {
            let _ = f.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

/// Writes `bytes` to `path` via temp file + fsync + atomic rename.
///
/// The destination only ever holds either its previous contents or the
/// complete new bytes — never a torn prefix. Used by checkpoint saves here
/// and by `tsdx-index` shard writes; callers with typed error enums map the
/// `io::Error` into their own `Io` variant.
///
/// # Errors
///
/// `InvalidInput` when `path` has no file name, plus any I/O error from
/// staging, syncing, or renaming (the temp file is removed on failure).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "destination path has no file name")
    })?;
    let tmp =
        path.with_file_name(format!("{}.tmp.{}", file_name.to_string_lossy(), std::process::id()));
    let result: io::Result<()> = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    } else {
        sync_dir(path);
    }
    result
}

// ---------------------------------------------------------------------------
// Public API.

/// Writes a full training checkpoint to `path`, crash-safely.
///
/// The destination only ever holds a complete checkpoint: bytes are staged
/// in a same-directory temp file, fsynced, and renamed into place.
///
/// # Errors
///
/// Returns any I/O error from staging, syncing, or renaming.
pub fn save_train_checkpoint(
    ckpt: &TrainCheckpoint,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    #[allow(unused_mut)]
    let mut bytes = encode(ckpt);
    #[cfg(feature = "fault-inject")]
    {
        if let Some(n) = tsdx_tensor::faults::take_checkpoint_tear() {
            // Simulates a crash mid-write of a non-atomic writer: the
            // destination ends up holding a bare prefix of the encoding.
            let n = (n as usize).min(bytes.len());
            std::fs::write(path, &bytes[..n])?;
            return Ok(());
        }
        if let Some(bit) = tsdx_tensor::faults::take_checkpoint_bit_flip() {
            // Simulates silent at-rest corruption of one bit.
            let byte = (bit / 8) as usize % bytes.len();
            bytes[byte] ^= 1 << (bit % 8) as u8;
        }
    }
    write_atomic(path, &bytes)?;
    Ok(())
}

/// Writes every parameter of `store` to `path` (no optimizer/loop state).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn save_checkpoint(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    save_train_checkpoint(&TrainCheckpoint::from_params(store), path)
}

/// Reads a full training checkpoint from `path`, verifying every checksum.
///
/// # Errors
///
/// [`CheckpointError::Truncated`] on a torn file,
/// [`CheckpointError::Checksum`] on bit corruption,
/// [`CheckpointError::Format`] on structural violations, and
/// [`CheckpointError::Io`] on read failures.
pub fn read_train_checkpoint(path: impl AsRef<Path>) -> Result<TrainCheckpoint, CheckpointError> {
    decode(&std::fs::read(path)?)
}

/// Reads all `(name, tensor)` entries from a checkpoint file.
///
/// # Errors
///
/// See [`read_train_checkpoint`].
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    Ok(read_train_checkpoint(path)?.params)
}

/// Restores parameters of `store` by name from the checkpoint at `path`.
///
/// Returns the number of parameters restored.
///
/// # Errors
///
/// See [`read_train_checkpoint`]; additionally returns
/// [`CheckpointError::ShapeMismatch`] when a matching name carries a
/// different shape (a model-configuration mismatch must not be silently
/// ignored — no parameter is modified in that case).
pub fn load_checkpoint(
    store: &mut ParamStore,
    path: impl AsRef<Path>,
) -> Result<usize, CheckpointError> {
    let entries = read_checkpoint(path)?;
    store.try_load_named(&entries).map_err(|m| CheckpointError::ShapeMismatch {
        name: m.name,
        expected: m.expected,
        found: m.found,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tsdx-ckpt-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_values() {
        let mut store = ParamStore::new();
        store.add("a.weight", Tensor::from_fn(&[3, 4], |i| i as f32 * 0.5));
        store.add("a.bias", Tensor::from_vec(vec![-1.0, 2.0, 0.25, 9.0], &[4]));
        let path = tmp("roundtrip");
        save_checkpoint(&store, &path).unwrap();

        let mut fresh = ParamStore::new();
        let w = fresh.add("a.weight", Tensor::zeros(&[3, 4]));
        let b = fresh.add("a.bias", Tensor::zeros(&[4]));
        let n = load_checkpoint(&mut fresh, &path).unwrap();
        assert_eq!(n, 2);
        assert_eq!(fresh.value(w), store.value(store.ids().next().unwrap()));
        assert_eq!(fresh.value(b).data(), &[-1.0, 2.0, 0.25, 9.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn full_train_checkpoint_roundtrips() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_fn(&[2, 3], |i| i as f32 - 2.5));
        let mut opt = crate::AdamW::new(0.01);
        let grads: Vec<Tensor> = store.iter().map(|(_, t)| t.clone()).collect();
        use crate::Optimizer;
        opt.step(&mut store, &grads, 0.1);

        let ckpt = TrainCheckpoint {
            state: TrainState {
                epoch: 7,
                step: 123,
                lr_scale: 0.25,
                consecutive_bad: 1,
                skipped_steps: 4,
                rng: Some([1, 2, 3, 0xDEAD_BEEF]),
            },
            params: store.iter().map(|(n, t)| (n.to_string(), t.clone())).collect(),
            opt: Some(opt.export_state(&store)),
        };
        let path = tmp("fullstate");
        save_train_checkpoint(&ckpt, &path).unwrap();
        let back = read_train_checkpoint(&path).unwrap();
        assert_eq!(back, ckpt);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unknown_names_are_ignored() {
        let mut store = ParamStore::new();
        store.add("old", Tensor::ones(&[2]));
        let path = tmp("unknown");
        save_checkpoint(&store, &path).unwrap();
        let mut fresh = ParamStore::new();
        fresh.add("new", Tensor::zeros(&[2]));
        let n = load_checkpoint(&mut fresh, &path).unwrap();
        assert_eq!(n, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTATSDXFILE____").unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_v1_is_rejected_with_a_clear_message() {
        let path = tmp("v1");
        std::fs::write(&path, b"TSDXCKP1\x00\x00\x00\x00").unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("v1"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_is_typed_truncation_error() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::ones(&[64]));
        let path = tmp("trunc");
        save_checkpoint(&store, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Truncated { .. }), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn flipped_bit_is_checksum_error() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_fn(&[16], |i| i as f32));
        let path = tmp("flip");
        save_checkpoint(&store, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Checksum { .. }), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_typed_and_leaves_store_untouched() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::ones(&[4]));
        let path = tmp("shape");
        save_checkpoint(&store, &path).unwrap();

        let mut other = ParamStore::new();
        let id = other.add("w", Tensor::full(&[2, 2], 7.0));
        let err = load_checkpoint(&mut other, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }), "{err}");
        assert_eq!(other.value(id).data(), &[7.0; 4], "failed load must not modify values");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let dir = std::env::temp_dir().join(format!("tsdx-ckpt-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = ParamStore::new();
        store.add("w", Tensor::ones(&[8]));
        save_checkpoint(&store, dir.join("model.ckpt")).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["model.ckpt".to_string()], "only the final file remains");
        std::fs::remove_dir_all(&dir).ok();
    }
}
