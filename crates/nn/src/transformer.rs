//! Transformer encoder blocks (pre-norm) and stacks.

use rand::Rng;
use tsdx_tensor::{metrics, Graph, Var};

use crate::attention::{AttnKvCache, MultiHeadAttention};
use crate::dropout::Dropout;
use crate::linear::Linear;
use crate::norm::LayerNorm;
use crate::params::{Binding, ParamStore};

/// Two-layer GELU MLP used inside transformer blocks.
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

impl Mlp {
    /// Registers an MLP expanding `dim` to `hidden` and back.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dim: usize,
        hidden: usize,
    ) -> Self {
        Mlp {
            fc1: Linear::new(store, rng, &format!("{name}.fc1"), dim, hidden),
            fc2: Linear::new(store, rng, &format!("{name}.fc2"), hidden, dim),
        }
    }

    /// Applies `fc2(gelu(fc1(x)))`.
    pub fn forward(&self, g: &mut Graph, p: &Binding, x: Var) -> Var {
        let h = self.fc1.forward(g, p, x);
        let a = g.gelu(h);
        self.fc2.forward(g, p, a)
    }
}

/// A pre-norm transformer encoder block:
/// `x + Attn(LN(x))` followed by `x + MLP(LN(x))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    // Registration name, kept for the per-layer forward metric span
    // (`layer/<name>`). Backward time is attributed per-op by the tape
    // (`bwd/*` spans) since replay interleaves layers.
    name: String,
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    mlp: Mlp,
    dropout: Dropout,
}

impl TransformerBlock {
    /// Registers a block of width `dim` with `heads` attention heads and an
    /// MLP hidden width of `mlp_ratio * dim`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dim: usize,
        heads: usize,
        mlp_ratio: usize,
        dropout: f32,
    ) -> Self {
        TransformerBlock {
            name: name.to_string(),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            attn: MultiHeadAttention::new(store, rng, &format!("{name}.attn"), dim, heads),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
            mlp: Mlp::new(store, rng, &format!("{name}.mlp"), dim, mlp_ratio * dim),
            dropout: Dropout::new(dropout),
        }
    }

    /// Applies the block to `[B, T, D]` tokens.
    ///
    /// Attention runs through the fused [`Graph::attention`] kernel (no
    /// `[B, H, T, T]` tensor is materialized); use
    /// [`forward_with_attn`](Self::forward_with_attn) when the probabilities
    /// are needed.
    pub fn forward(
        &self,
        g: &mut Graph,
        p: &Binding,
        x: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> Var {
        let _span = metrics::span_dyn(|| format!("layer/{}", self.name));
        let n1 = self.ln1.forward(g, p, x);
        let a = self.attn.forward(g, p, n1);
        let a = self.dropout.forward(g, a, rng, train);
        let x = g.add(x, a);
        let n2 = self.ln2.forward(g, p, x);
        let m = self.mlp.forward(g, p, n2);
        let m = self.dropout.forward(g, m, rng, train);
        g.add(x, m)
    }

    /// Inference-only forward pass (no dropout sites, no RNG).
    ///
    /// Dropout at eval time is an exact identity, so this builds the same
    /// graph as [`forward`](Self::forward) with `train == false` and is
    /// bit-identical to it.
    pub fn forward_eval(&self, g: &mut Graph, p: &Binding, x: Var) -> Var {
        let _span = metrics::span_dyn(|| format!("layer/{}", self.name));
        let n1 = self.ln1.forward(g, p, x);
        let a = self.attn.forward(g, p, n1);
        let x = g.add(x, a);
        let n2 = self.ln2.forward(g, p, x);
        let m = self.mlp.forward(g, p, n2);
        g.add(x, m)
    }

    /// Prefix-aware, inference-only forward pass.
    ///
    /// The leading `prefix` tokens of `x` must be bitwise identical to the
    /// tokens of the call that produced `cache`: layer norm acts row-wise,
    /// so those rows of `ln1(x)` — and therefore their key/value
    /// projections — are unchanged and are served from the cache (see
    /// [`MultiHeadAttention::forward_prefix`]). Output is bit-identical to
    /// [`forward_eval`](Self::forward_eval).
    pub fn forward_prefix(
        &self,
        g: &mut Graph,
        p: &Binding,
        x: Var,
        cache: Option<&AttnKvCache>,
        prefix: usize,
    ) -> (Var, AttnKvCache) {
        let _span = metrics::span_dyn(|| format!("layer/{}", self.name));
        let n1 = self.ln1.forward(g, p, x);
        let (a, next) = self.attn.forward_prefix(g, p, n1, cache, prefix);
        let x = g.add(x, a);
        let n2 = self.ln2.forward(g, p, x);
        let m = self.mlp.forward(g, p, n2);
        (g.add(x, m), next)
    }

    /// Like [`TransformerBlock::forward`], also returning the attention
    /// probabilities `[B, H, T, T]` for introspection.
    pub fn forward_with_attn(
        &self,
        g: &mut Graph,
        p: &Binding,
        x: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> (Var, Var) {
        let _span = metrics::span_dyn(|| format!("layer/{}", self.name));
        let n1 = self.ln1.forward(g, p, x);
        let (a, attn) = self.attn.forward_with_attn(g, p, n1);
        let a = self.dropout.forward(g, a, rng, train);
        let x = g.add(x, a);
        let n2 = self.ln2.forward(g, p, x);
        let m = self.mlp.forward(g, p, n2);
        let m = self.dropout.forward(g, m, rng, train);
        (g.add(x, m), attn)
    }
}

/// Key/value state retained across [`TransformerEncoder::forward_prefix`]
/// calls. Holds the first block's [`AttnKvCache`] — the only layer whose
/// inputs keep a stable prefix under bidirectional attention.
#[derive(Debug, Clone, Default)]
pub struct EncoderKvCache {
    block0: Option<AttnKvCache>,
}

impl EncoderKvCache {
    /// Number of token rows cached for the first block (0 when empty).
    pub fn len(&self) -> usize {
        self.block0.as_ref().map_or(0, AttnKvCache::len)
    }

    /// Whether any rows are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A stack of [`TransformerBlock`]s followed by a final layer norm.
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    blocks: Vec<TransformerBlock>,
    ln_final: LayerNorm,
}

impl TransformerEncoder {
    /// Registers `depth` blocks under `name`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dim: usize,
        depth: usize,
        heads: usize,
        mlp_ratio: usize,
        dropout: f32,
    ) -> Self {
        let blocks = (0..depth)
            .map(|i| {
                TransformerBlock::new(
                    store,
                    rng,
                    &format!("{name}.block{i}"),
                    dim,
                    heads,
                    mlp_ratio,
                    dropout,
                )
            })
            .collect();
        TransformerEncoder {
            blocks,
            ln_final: LayerNorm::new(store, &format!("{name}.ln_final"), dim),
        }
    }

    /// Number of blocks.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// Applies all blocks and the final norm to `[B, T, D]` tokens.
    pub fn forward(
        &self,
        g: &mut Graph,
        p: &Binding,
        mut x: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> Var {
        for block in &self.blocks {
            x = block.forward(g, p, x, rng, train);
        }
        self.ln_final.forward(g, p, x)
    }

    /// Inference-only forward pass (no dropout sites, no RNG);
    /// bit-identical to [`forward`](Self::forward) with `train == false`.
    pub fn forward_eval(&self, g: &mut Graph, p: &Binding, mut x: Var) -> Var {
        for block in &self.blocks {
            x = block.forward_eval(g, p, x);
        }
        self.ln_final.forward(g, p, x)
    }

    /// Prefix-aware, inference-only forward pass for streaming callers.
    ///
    /// The leading `prefix` tokens of `x` must be bitwise identical to the
    /// input of the call that produced `cache`. Only the **first** block can
    /// exploit that: bidirectional attention mixes every token into every
    /// output, so after one block even the prefix rows have changed and
    /// deeper blocks recompute in full. The returned cache holds the first
    /// block's key/value rows for the next call.
    ///
    /// Output is bit-identical to [`forward_eval`](Self::forward_eval).
    pub fn forward_prefix(
        &self,
        g: &mut Graph,
        p: &Binding,
        mut x: Var,
        cache: Option<&EncoderKvCache>,
        prefix: usize,
    ) -> (Var, EncoderKvCache) {
        let mut block0 = None;
        for (i, block) in self.blocks.iter().enumerate() {
            if i == 0 {
                let (y, kv) =
                    block.forward_prefix(g, p, x, cache.and_then(|c| c.block0.as_ref()), prefix);
                x = y;
                block0 = Some(kv);
            } else {
                x = block.forward_eval(g, p, x);
            }
        }
        (self.ln_final.forward(g, p, x), EncoderKvCache { block0 })
    }

    /// Like [`TransformerEncoder::forward`], also returning the *last*
    /// block's attention probabilities `[B, H, T, T]`.
    pub fn forward_with_attn(
        &self,
        g: &mut Graph,
        p: &Binding,
        mut x: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> (Var, Var) {
        let mut attn = None;
        for block in &self.blocks {
            let (y, a) = block.forward_with_attn(g, p, x, rng, train);
            x = y;
            attn = Some(a);
        }
        (self.ln_final.forward(g, p, x), attn.expect("encoder has at least one block"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsdx_tensor::Tensor;

    #[test]
    fn encoder_preserves_token_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", 8, 2, 2, 2, 0.0);
        assert_eq!(enc.depth(), 2);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[2, 4, 8], |i| (i as f32 * 0.01).sin()));
        let y = enc.forward(&mut g, &p, x, &mut rng, false);
        assert_eq!(g.shape(y), &[2, 4, 8]);
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn all_parameters_receive_gradients() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", 4, 1, 2, 2, 0.0);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[1, 3, 4], |i| (i as f32 * 0.07).cos()));
        let y = enc.forward(&mut g, &p, x, &mut rng, false);
        let loss = g.mean_all(y);
        let grads = g.backward(loss);
        let collected = store.collect_grads(&p, &grads);
        let mut nonzero = 0;
        for (i, t) in collected.iter().enumerate() {
            if t.data().iter().any(|&v| v != 0.0) {
                nonzero += 1;
            } else {
                // Biases of value projections can legitimately be ~0 only in
                // contrived cases; flag anything suspicious.
                eprintln!("zero grad for {}", store.name(store.ids().nth(i).unwrap()));
            }
        }
        // Every tensor should participate in a pre-norm block.
        assert!(nonzero >= store.len() - 1, "only {nonzero}/{} grads nonzero", store.len());
    }

    #[test]
    fn eval_and_prefix_paths_are_bit_identical_to_forward() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", 8, 2, 2, 2, 0.1);
        let x0 = Tensor::from_fn(&[2, 5, 8], |i| (i as f32 * 0.03).sin());

        let mut g = Graph::new();
        let p = store.bind_frozen(&mut g);
        let x = g.constant(x0.clone());
        let reference = enc.forward(&mut g, &p, x, &mut rng, false);
        let evaled = enc.forward_eval(&mut g, &p, x);
        assert_eq!(g.value(reference).data(), g.value(evaled).data());

        // Seed a cache, then rerun with the first two tokens unchanged.
        let (_, cache) = enc.forward_prefix(&mut g, &p, x, None, 0);
        assert_eq!(cache.len(), 5);
        let x1 = Tensor::from_fn(&[2, 5, 8], |i| {
            let row = (i / 8) % 5;
            let base = (i as f32 * 0.03).sin();
            if row < 2 {
                base
            } else {
                base * 0.5 + 0.1
            }
        });
        let xb = g.constant(x1);
        let full = enc.forward_eval(&mut g, &p, xb);
        let (streamed, next) = enc.forward_prefix(&mut g, &p, xb, Some(&cache), 2);
        assert_eq!(g.value(full).data(), g.value(streamed).data());
        assert!(!next.is_empty());
    }

    #[test]
    fn prefix_path_handles_an_empty_encoder() {
        // temporal_depth can legitimately be small; depth 0 must not panic.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(10);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", 4, 0, 1, 2, 0.0);
        let mut g = Graph::new();
        let p = store.bind_frozen(&mut g);
        let x = g.constant(Tensor::ones(&[1, 3, 4]));
        let (y, cache) = enc.forward_prefix(&mut g, &p, x, None, 0);
        assert_eq!(g.shape(y), &[1, 3, 4]);
        assert!(cache.is_empty());
    }

    #[test]
    fn dropout_changes_training_forward_only() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let block = TransformerBlock::new(&mut store, &mut rng, "b", 4, 2, 2, 0.5);
        let x0 = Tensor::from_fn(&[1, 3, 4], |i| (i as f32 * 0.13).sin());

        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(x0.clone());
        let mut r1 = StdRng::seed_from_u64(1);
        let y_eval = block.forward(&mut g, &p, x, &mut r1, false);
        let mut r2 = StdRng::seed_from_u64(1);
        let x2 = g.constant(x0);
        let y_eval2 = block.forward(&mut g, &p, x2, &mut r2, false);
        // Eval mode is deterministic.
        assert!(g.value(y_eval).allclose(g.value(y_eval2), 1e-6));
    }
}
