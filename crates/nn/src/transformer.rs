//! Transformer encoder blocks (pre-norm) and stacks.

use rand::Rng;
use tsdx_tensor::{metrics, Graph, Var};

use crate::attention::MultiHeadAttention;
use crate::dropout::Dropout;
use crate::linear::Linear;
use crate::norm::LayerNorm;
use crate::params::{Binding, ParamStore};

/// Two-layer GELU MLP used inside transformer blocks.
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

impl Mlp {
    /// Registers an MLP expanding `dim` to `hidden` and back.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dim: usize,
        hidden: usize,
    ) -> Self {
        Mlp {
            fc1: Linear::new(store, rng, &format!("{name}.fc1"), dim, hidden),
            fc2: Linear::new(store, rng, &format!("{name}.fc2"), hidden, dim),
        }
    }

    /// Applies `fc2(gelu(fc1(x)))`.
    pub fn forward(&self, g: &mut Graph, p: &Binding, x: Var) -> Var {
        let h = self.fc1.forward(g, p, x);
        let a = g.gelu(h);
        self.fc2.forward(g, p, a)
    }
}

/// A pre-norm transformer encoder block:
/// `x + Attn(LN(x))` followed by `x + MLP(LN(x))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    // Registration name, kept for the per-layer forward metric span
    // (`layer/<name>`). Backward time is attributed per-op by the tape
    // (`bwd/*` spans) since replay interleaves layers.
    name: String,
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    mlp: Mlp,
    dropout: Dropout,
}

impl TransformerBlock {
    /// Registers a block of width `dim` with `heads` attention heads and an
    /// MLP hidden width of `mlp_ratio * dim`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dim: usize,
        heads: usize,
        mlp_ratio: usize,
        dropout: f32,
    ) -> Self {
        TransformerBlock {
            name: name.to_string(),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            attn: MultiHeadAttention::new(store, rng, &format!("{name}.attn"), dim, heads),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
            mlp: Mlp::new(store, rng, &format!("{name}.mlp"), dim, mlp_ratio * dim),
            dropout: Dropout::new(dropout),
        }
    }

    /// Applies the block to `[B, T, D]` tokens.
    ///
    /// Attention runs through the fused [`Graph::attention`] kernel (no
    /// `[B, H, T, T]` tensor is materialized); use
    /// [`forward_with_attn`](Self::forward_with_attn) when the probabilities
    /// are needed.
    pub fn forward(
        &self,
        g: &mut Graph,
        p: &Binding,
        x: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> Var {
        let _span = metrics::span_dyn(|| format!("layer/{}", self.name));
        let n1 = self.ln1.forward(g, p, x);
        let a = self.attn.forward(g, p, n1);
        let a = self.dropout.forward(g, a, rng, train);
        let x = g.add(x, a);
        let n2 = self.ln2.forward(g, p, x);
        let m = self.mlp.forward(g, p, n2);
        let m = self.dropout.forward(g, m, rng, train);
        g.add(x, m)
    }

    /// Like [`TransformerBlock::forward`], also returning the attention
    /// probabilities `[B, H, T, T]` for introspection.
    pub fn forward_with_attn(
        &self,
        g: &mut Graph,
        p: &Binding,
        x: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> (Var, Var) {
        let _span = metrics::span_dyn(|| format!("layer/{}", self.name));
        let n1 = self.ln1.forward(g, p, x);
        let (a, attn) = self.attn.forward_with_attn(g, p, n1);
        let a = self.dropout.forward(g, a, rng, train);
        let x = g.add(x, a);
        let n2 = self.ln2.forward(g, p, x);
        let m = self.mlp.forward(g, p, n2);
        let m = self.dropout.forward(g, m, rng, train);
        (g.add(x, m), attn)
    }
}

/// A stack of [`TransformerBlock`]s followed by a final layer norm.
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    blocks: Vec<TransformerBlock>,
    ln_final: LayerNorm,
}

impl TransformerEncoder {
    /// Registers `depth` blocks under `name`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dim: usize,
        depth: usize,
        heads: usize,
        mlp_ratio: usize,
        dropout: f32,
    ) -> Self {
        let blocks = (0..depth)
            .map(|i| {
                TransformerBlock::new(
                    store,
                    rng,
                    &format!("{name}.block{i}"),
                    dim,
                    heads,
                    mlp_ratio,
                    dropout,
                )
            })
            .collect();
        TransformerEncoder {
            blocks,
            ln_final: LayerNorm::new(store, &format!("{name}.ln_final"), dim),
        }
    }

    /// Number of blocks.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// Applies all blocks and the final norm to `[B, T, D]` tokens.
    pub fn forward(
        &self,
        g: &mut Graph,
        p: &Binding,
        mut x: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> Var {
        for block in &self.blocks {
            x = block.forward(g, p, x, rng, train);
        }
        self.ln_final.forward(g, p, x)
    }

    /// Like [`TransformerEncoder::forward`], also returning the *last*
    /// block's attention probabilities `[B, H, T, T]`.
    pub fn forward_with_attn(
        &self,
        g: &mut Graph,
        p: &Binding,
        mut x: Var,
        rng: &mut impl Rng,
        train: bool,
    ) -> (Var, Var) {
        let mut attn = None;
        for block in &self.blocks {
            let (y, a) = block.forward_with_attn(g, p, x, rng, train);
            x = y;
            attn = Some(a);
        }
        (self.ln_final.forward(g, p, x), attn.expect("encoder has at least one block"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsdx_tensor::Tensor;

    #[test]
    fn encoder_preserves_token_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", 8, 2, 2, 2, 0.0);
        assert_eq!(enc.depth(), 2);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[2, 4, 8], |i| (i as f32 * 0.01).sin()));
        let y = enc.forward(&mut g, &p, x, &mut rng, false);
        assert_eq!(g.shape(y), &[2, 4, 8]);
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn all_parameters_receive_gradients() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", 4, 1, 2, 2, 0.0);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[1, 3, 4], |i| (i as f32 * 0.07).cos()));
        let y = enc.forward(&mut g, &p, x, &mut rng, false);
        let loss = g.mean_all(y);
        let grads = g.backward(loss);
        let collected = store.collect_grads(&p, &grads);
        let mut nonzero = 0;
        for (i, t) in collected.iter().enumerate() {
            if t.data().iter().any(|&v| v != 0.0) {
                nonzero += 1;
            } else {
                // Biases of value projections can legitimately be ~0 only in
                // contrived cases; flag anything suspicious.
                eprintln!("zero grad for {}", store.name(store.ids().nth(i).unwrap()));
            }
        }
        // Every tensor should participate in a pre-norm block.
        assert!(nonzero >= store.len() - 1, "only {nonzero}/{} grads nonzero", store.len());
    }

    #[test]
    fn dropout_changes_training_forward_only() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let block = TransformerBlock::new(&mut store, &mut rng, "b", 4, 2, 2, 0.5);
        let x0 = Tensor::from_fn(&[1, 3, 4], |i| (i as f32 * 0.13).sin());

        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(x0.clone());
        let mut r1 = StdRng::seed_from_u64(1);
        let y_eval = block.forward(&mut g, &p, x, &mut r1, false);
        let mut r2 = StdRng::seed_from_u64(1);
        let x2 = g.constant(x0);
        let y_eval2 = block.forward(&mut g, &p, x2, &mut r2, false);
        // Eval mode is deterministic.
        assert!(g.value(y_eval).allclose(g.value(y_eval2), 1e-6));
    }
}
