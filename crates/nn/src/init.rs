//! Weight initializers.
//!
//! `rand` 0.9 ships only uniform sampling; the Gaussian here is a Box–Muller
//! transform so we avoid an extra dependency.

use rand::Rng;
use tsdx_tensor::Tensor;

/// Samples one standard-normal value via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    // Guard against ln(0).
    let u1: f32 = rng.random_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Tensor of i.i.d. normal samples with the given `std`.
pub fn normal(shape: &[usize], std: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_| standard_normal(rng) * std)
}

/// Tensor of i.i.d. uniform samples in `[-bound, bound]`.
pub fn uniform(shape: &[usize], bound: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_| rng.random_range(-bound..=bound))
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform(
    fan_in: usize,
    fan_out: usize,
    shape: &[usize],
    rng: &mut impl Rng,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, bound, rng)
}

/// Kaiming/He normal initialization (for ReLU-family fan-in scaling).
pub fn kaiming_normal(fan_in: usize, shape: &[usize], rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    normal(shape, std, rng)
}

/// Truncated-style small-normal init used for positional embeddings and
/// class tokens (std 0.02, transformer convention).
pub fn embedding_normal(shape: &[usize], rng: &mut impl Rng) -> Tensor {
    normal(shape, 0.02, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(&[10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(8);
        let t = uniform(&[1000], 0.3, &mut rng);
        assert!(t.max() <= 0.3 && t.min() >= -0.3);
        // Not degenerate.
        assert!(t.max() > 0.2 && t.min() < -0.2);
    }

    #[test]
    fn xavier_bound_shrinks_with_fanin() {
        let mut rng = StdRng::seed_from_u64(9);
        let big = xavier_uniform(10, 10, &[100], &mut rng);
        let small = xavier_uniform(1000, 1000, &[100], &mut rng);
        assert!(
            big.data().iter().map(|x| x.abs()).fold(0.0, f32::max)
                > small.data().iter().map(|x| x.abs()).fold(0.0, f32::max)
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = normal(&[16], 1.0, &mut StdRng::seed_from_u64(3));
        let b = normal(&[16], 1.0, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
