//! Gated recurrent unit (GRU) for temporal aggregation baselines.

use rand::Rng;
use tsdx_tensor::{Graph, Tensor, Var};

use crate::init;
use crate::params::{Binding, ParamId, ParamStore};

/// A single-layer GRU consuming `[B, T, D]` sequences.
///
/// The recurrence is unrolled onto the autograd tape, so backpropagation
/// through time falls out of the ordinary backward pass.
#[derive(Debug, Clone)]
pub struct Gru {
    // Input-to-hidden and hidden-to-hidden weights for the three gates.
    wxz: ParamId,
    whz: ParamId,
    bz: ParamId,
    wxr: ParamId,
    whr: ParamId,
    br: ParamId,
    wxh: ParamId,
    whh: ParamId,
    bh: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl Gru {
    /// Registers a GRU mapping `input_dim` features to a `hidden_dim` state.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
    ) -> Self {
        let mut w = |suffix: &str, rows: usize| {
            store.add(
                format!("{name}.{suffix}"),
                init::xavier_uniform(rows, hidden_dim, &[rows, hidden_dim], rng),
            )
        };
        let wxz = w("wxz", input_dim);
        let whz = w("whz", hidden_dim);
        let wxr = w("wxr", input_dim);
        let whr = w("whr", hidden_dim);
        let wxh = w("wxh", input_dim);
        let whh = w("whh", hidden_dim);
        let bz = store.add(format!("{name}.bz"), Tensor::zeros(&[hidden_dim]));
        let br = store.add(format!("{name}.br"), Tensor::zeros(&[hidden_dim]));
        let bh = store.add(format!("{name}.bh"), Tensor::zeros(&[hidden_dim]));
        Gru { wxz, whz, bz, wxr, whr, br, wxh, whh, bh, input_dim, hidden_dim }
    }

    /// Hidden state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Runs the GRU over `x` (`[B, T, D]`), returning the final hidden state
    /// `[B, H]`.
    pub fn forward(&self, g: &mut Graph, p: &Binding, x: Var) -> Var {
        *self.forward_all(g, p, x).last().expect("at least one timestep")
    }

    /// Runs the GRU and returns the hidden state after every timestep.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[B, T, D]` with `T >= 1` and `D == input_dim`.
    pub fn forward_all(&self, g: &mut Graph, p: &Binding, x: Var) -> Vec<Var> {
        let sh = g.shape(x).to_vec();
        assert_eq!(sh.len(), 3, "GRU input must be [B, T, D]");
        let (b, t, d) = (sh[0], sh[1], sh[2]);
        assert_eq!(d, self.input_dim, "GRU expected {} inputs, got {d}", self.input_dim);
        assert!(t >= 1, "GRU needs at least one timestep");

        let mut h = g.constant(Tensor::zeros(&[b, self.hidden_dim]));
        let mut states = Vec::with_capacity(t);
        for step in 0..t {
            let xt = g.narrow(x, 1, step, 1);
            let xt = g.reshape(xt, &[b, d]);

            let z = self.gate(g, p, xt, h, self.wxz, self.whz, self.bz);
            let z = g.sigmoid(z);
            let r = self.gate(g, p, xt, h, self.wxr, self.whr, self.br);
            let r = g.sigmoid(r);

            let rh = g.mul(r, h);
            let cand = {
                let xi = g.matmul(xt, p.var(self.wxh));
                let hi = g.matmul(rh, p.var(self.whh));
                let s = g.add(xi, hi);
                let s = g.add(s, p.var(self.bh));
                g.tanh(s)
            };

            // h = (1 - z) * h + z * cand
            let one_minus_z = {
                let nz = g.neg(z);
                g.add_scalar(nz, 1.0)
            };
            let keep = g.mul(one_minus_z, h);
            let update = g.mul(z, cand);
            h = g.add(keep, update);
            states.push(h);
        }
        states
    }

    #[allow(clippy::too_many_arguments)]
    fn gate(
        &self,
        g: &mut Graph,
        p: &Binding,
        xt: Var,
        h: Var,
        wx: ParamId,
        wh: ParamId,
        b: ParamId,
    ) -> Var {
        let xi = g.matmul(xt, p.var(wx));
        let hi = g.matmul(h, p.var(wh));
        let s = g.add(xi, hi);
        g.add(s, p.var(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(d: usize, h: usize) -> (ParamStore, Gru) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let gru = Gru::new(&mut store, &mut rng, "gru", d, h);
        (store, gru)
    }

    #[test]
    fn output_shape_and_state_count() {
        let (store, gru) = setup(3, 5);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[2, 4, 3], |i| (i as f32 * 0.1).sin()));
        let states = gru.forward_all(&mut g, &p, x);
        assert_eq!(states.len(), 4);
        for &s in &states {
            assert_eq!(g.shape(s), &[2, 5]);
        }
    }

    #[test]
    fn hidden_state_stays_bounded() {
        // tanh/sigmoid gating keeps |h| <= 1.
        let (store, gru) = setup(2, 4);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[1, 20, 2], |i| ((i * 37) % 13) as f32 - 6.0));
        let h = gru.forward(&mut g, &p, x);
        assert!(g.value(h).max() <= 1.0 && g.value(h).min() >= -1.0);
    }

    #[test]
    fn zero_input_zero_state_stays_zeroish() {
        let (store, gru) = setup(2, 3);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::zeros(&[1, 3, 2]));
        let h = gru.forward(&mut g, &p, x);
        // With zero biases, candidate is 0, so h stays exactly 0.
        assert!(g.value(h).data().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn gradients_flow_through_time() {
        let (store, gru) = setup(2, 3);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.leaf(Tensor::from_fn(&[1, 5, 2], |i| (i as f32 * 0.2).cos()));
        let h = gru.forward(&mut g, &p, x);
        let loss = g.mean_all(h);
        let grads = g.backward(loss);
        let dx = grads.get(x).unwrap();
        // The earliest timestep must still receive gradient signal.
        let first = &dx.data()[..2];
        assert!(first.iter().any(|&v| v.abs() > 1e-8), "no BPTT signal: {first:?}");
    }

    #[test]
    fn gradcheck_small_gru() {
        let (store, gru) = setup(2, 2);
        let x = Tensor::from_fn(&[1, 3, 2], |i| (i as f32 * 0.29).sin() * 0.5);
        tsdx_tensor::grad_check::assert_gradients(&[x], 1e-2, 2e-2, |g, v| {
            let p = store.bind_frozen(g);
            let h = gru.forward(g, &p, v[0]);
            g.mean_all(h)
        });
    }
}
