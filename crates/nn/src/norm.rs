//! Layer normalization.

use tsdx_tensor::{Graph, Tensor, Var};

use crate::params::{Binding, ParamId, ParamStore};

/// Layer normalization over the last dimension with learned affine
/// parameters (`gamma` initialized to 1, `beta` to 0).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Registers a layer norm over vectors of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(format!("{name}.gamma"), Tensor::ones(&[dim]));
        let beta = store.add(format!("{name}.beta"), Tensor::zeros(&[dim]));
        LayerNorm { gamma, beta, dim, eps: 1e-5 }
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies the normalization on the tape.
    pub fn forward(&self, g: &mut Graph, p: &Binding, x: Var) -> Var {
        g.layer_norm(x, p.var(self.gamma), p.var(self.beta), self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_standardized() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x =
            g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0], &[2, 4]));
        let y = ln.forward(&mut g, &p, x);
        let yd = g.value(y);
        for r in 0..2 {
            let row = &yd.data()[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn affine_params_scale_and_shift() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 2);
        store.set_value(ln.gamma, Tensor::from_vec(vec![2.0, 2.0], &[2]));
        store.set_value(ln.beta, Tensor::from_vec(vec![10.0, 10.0], &[2]));
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]));
        let y = ln.forward(&mut g, &p, x);
        let out = g.value(y).data().to_vec();
        // Normalized row is ~[-1, 1]; scaled by 2, shifted by 10 -> [8, 12].
        assert!((out[0] - 8.0).abs() < 0.1, "{out:?}");
        assert!((out[1] - 12.0).abs() < 0.1, "{out:?}");
    }
}
