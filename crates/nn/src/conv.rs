//! Convolutional layer wrapper.

use rand::Rng;
use tsdx_tensor::ops::Conv2dSpec;
use tsdx_tensor::{Graph, Tensor, Var};

use crate::init;
use crate::params::{Binding, ParamId, ParamStore};

/// A 2-D convolution layer with bias: `[B, C, H, W] -> [B, O, OH, OW]`.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: ParamId,
    bias: ParamId,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl Conv2d {
    /// Registers a Kaiming-initialized convolution under `name`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        spec: Conv2dSpec,
    ) -> Self {
        let fan_in = in_channels * spec.kh * spec.kw;
        let weight = store.add(
            format!("{name}.weight"),
            init::kaiming_normal(fan_in, &[out_channels, in_channels, spec.kh, spec.kw], rng),
        );
        let bias = store.add(format!("{name}.bias"), Tensor::zeros(&[out_channels]));
        Conv2d { weight, bias, spec, in_channels, out_channels }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Applies the convolution plus per-channel bias.
    pub fn forward(&self, g: &mut Graph, p: &Binding, x: Var) -> Var {
        let y = g.conv2d(x, p.var(self.weight), self.spec);
        // Broadcast bias [O] as [1, O, 1, 1].
        let b = p.var(self.bias);
        let b = g.reshape(b, &[1, self.out_channels, 1, 1]);
        g.add(y, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(&mut store, &mut rng, "c", 3, 8, Conv2dSpec::new(3, 1, 1));
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::zeros(&[2, 3, 8, 8]));
        let y = conv.forward(&mut g, &p, x);
        assert_eq!(g.shape(y), &[2, 8, 8, 8]);
    }

    #[test]
    fn bias_shifts_every_pixel_of_its_channel() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(&mut store, &mut rng, "c", 1, 2, Conv2dSpec::new(1, 1, 0));
        store.set_value(conv.weight, Tensor::zeros(&[2, 1, 1, 1]));
        store.set_value(conv.bias, Tensor::from_vec(vec![3.0, -1.0], &[2]));
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::ones(&[1, 1, 2, 2]));
        let y = conv.forward(&mut g, &p, x);
        let v = g.value(y);
        assert!(v.data()[..4].iter().all(|&z| z == 3.0));
        assert!(v.data()[4..].iter().all(|&z| z == -1.0));
    }

    #[test]
    fn gradients_reach_weight_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = Conv2d::new(&mut store, &mut rng, "c", 2, 3, Conv2dSpec::new(3, 1, 1));
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::from_fn(&[1, 2, 4, 4], |i| (i as f32 * 0.1).sin()));
        let y = conv.forward(&mut g, &p, x);
        let loss = g.mean_all(y);
        let grads = g.backward(loss);
        let collected = store.collect_grads(&p, &grads);
        assert!(collected[0].data().iter().any(|&v| v != 0.0));
        assert!(collected[1].data().iter().any(|&v| v != 0.0));
    }
}
