//! Fully-connected (affine) layer.

use rand::Rng;
use tsdx_tensor::{quant, Graph, Var};

use crate::init;
use crate::params::{Binding, ParamId, ParamStore};

/// An affine map `y = x @ W + b` applied to the last dimension.
///
/// `x` may have any rank ≥ 2; the leading dimensions are treated as batch
/// dimensions (`[..., in] -> [..., out]`).
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Registers a Xavier-initialized linear layer under `name`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_features: usize,
        out_features: usize,
    ) -> Self {
        Self::with_bias(store, rng, name, in_features, out_features, true)
    }

    /// Like [`Linear::new`] with an explicit bias switch.
    pub fn with_bias(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
    ) -> Self {
        let weight = store.add(
            format!("{name}.weight"),
            init::xavier_uniform(in_features, out_features, &[in_features, out_features], rng),
        );
        let bias = bias.then(|| {
            store.add(format!("{name}.bias"), tsdx_tensor::Tensor::zeros(&[out_features]))
        });
        Linear { weight, bias, in_features, out_features }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer on the tape.
    ///
    /// When `p` carries a prepacked int8 form of this layer's weight (a
    /// [`crate::ParamStore::bind_quantized`] binding under
    /// `TSDX_PRECISION=int8`), the product runs on the exact-integer i8
    /// GEMM with a fused dequant+bias epilogue and enters the tape as a
    /// constant — inference-only, no gradients, and row-wise exactly like
    /// the f32 path (each output row depends only on its input row), so
    /// prefix/KV caching layered on top stays sound.
    ///
    /// # Panics
    ///
    /// Panics (inside the tensor ops) if the last dimension of `x` is not
    /// `in_features`.
    pub fn forward(&self, g: &mut Graph, p: &Binding, x: Var) -> Var {
        // Flatten batch dims so matmul sees [N, in] @ [in, out].
        let in_shape = g.shape(x).to_vec();
        let d = *in_shape.last().expect("linear input must have rank >= 1");
        assert_eq!(d, self.in_features, "linear expected {} inputs, got {d}", self.in_features);
        let flat = g.reshape(x, &[usize::MAX, d]);
        let mut out_shape = in_shape;
        *out_shape.last_mut().expect("rank >= 1") = self.out_features;
        if let Some(qw) = p.quant(self.weight).cloned() {
            let xv = g.value(flat).clone();
            let bias = self.bias.map(|b| g.value(p.var(b)).clone());
            let y = g.constant(quant::linear_q8(&xv, &qw, bias.as_ref()));
            return g.reshape(y, &out_shape);
        }
        let w = p.var(self.weight);
        let mut y = g.matmul(flat, w);
        if let Some(b) = self.bias {
            let bv = p.var(b);
            y = g.add(y, bv);
        }
        g.reshape(y, &out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsdx_tensor::Tensor;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, &mut rng, "l", 3, 5);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::ones(&[2, 4, 3]));
        let y = lin.forward(&mut g, &p, x);
        assert_eq!(g.shape(y), &[2, 4, 5]);
    }

    #[test]
    fn zero_weight_outputs_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, &mut rng, "l", 2, 2);
        // Zero the weight, set bias to [1, -1].
        store.set_value(lin.weight, Tensor::zeros(&[2, 2]));
        store.set_value(lin.bias.unwrap(), Tensor::from_vec(vec![1.0, -1.0], &[2]));
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::ones(&[3, 2]));
        let y = lin.forward(&mut g, &p, x);
        assert_eq!(g.value(y).data(), &[1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn gradients_flow_to_weight_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 2);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::ones(&[3, 4]));
        let y = lin.forward(&mut g, &p, x);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        let collected = store.collect_grads(&p, &grads);
        assert_eq!(collected[0].shape(), &[4, 2]);
        assert_eq!(collected[1].shape(), &[2]);
        // d loss / d bias = batch size per output.
        assert_eq!(collected[1].data(), &[3.0, 3.0]);
    }

    #[test]
    fn quantized_binding_takes_int8_path_within_tolerance() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let lin = Linear::new(&mut store, &mut rng, "l", 16, 8);
        let qw = store.quantize_where(|name, t| name == "l.weight" && t.rank() == 2);
        assert_eq!(qw.len(), 1);
        let x = Tensor::from_fn(&[3, 16], |i| ((i % 11) as f32 - 5.0) / 4.0);

        let mut g = Graph::new();
        let p = store.bind_frozen(&mut g);
        let xv = g.constant(x.clone());
        let y32 = lin.forward(&mut g, &p, xv);

        let mut gq = Graph::new();
        let pq = store.bind_quantized(&mut gq, &qw);
        let xq = gq.constant(x);
        let y8 = lin.forward(&mut gq, &pq, xq);

        assert_eq!(gq.shape(y8), &[3, 8]);
        assert!(g.value(y32).allclose(gq.value(y8), 0.05));
        // The quantized product is a constant: frozen semantics hold.
        let loss = gq.sum_all(y8);
        let grads = gq.backward(loss);
        assert!(grads.get(pq.var(lin.weight)).is_none());
    }

    #[test]
    fn no_bias_variant() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::with_bias(&mut store, &mut rng, "l", 3, 3, false);
        assert_eq!(store.len(), 1);
        let mut g = Graph::new();
        let p = store.bind(&mut g);
        let x = g.constant(Tensor::zeros(&[1, 3]));
        let y = lin.forward(&mut g, &p, x);
        assert_eq!(g.value(y).data(), &[0.0, 0.0, 0.0]);
    }
}
