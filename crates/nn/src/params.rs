//! Parameter registry shared by all layers of a model.

use std::fmt;
use std::sync::Arc;

use tsdx_tensor::quant::QuantMatrix;
use tsdx_tensor::{Gradients, Graph, Tensor, Var};

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// Index of the parameter within its store.
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct Param {
    name: String,
    value: Tensor,
}

/// Owns every trainable tensor of a model.
///
/// Layers register their parameters at construction time and receive
/// [`ParamId`] handles. At each training step the store is *bound* to a
/// fresh autograd [`Graph`], producing a [`Binding`] that maps each
/// parameter to a leaf [`Var`]; after `backward`, an optimizer reads
/// gradients through the same binding and updates the stored tensors.
///
/// # Examples
///
/// ```
/// use tsdx_nn::ParamStore;
/// use tsdx_tensor::{Graph, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::ones(&[2, 2]));
/// let mut g = Graph::new();
/// let bound = store.bind(&mut g);
/// let wv = bound.var(w);
/// assert_eq!(g.value(wv).shape(), &[2, 2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

/// Maps every parameter of a store to its leaf [`Var`] in one graph.
///
/// A binding produced by [`ParamStore::bind_quantized`] additionally
/// carries prepacked [`QuantMatrix`] handles for a subset of parameters;
/// precision-aware layers (see [`crate::Linear`]) consult
/// [`Binding::quant`] and take the int8 kernel when a handle is present.
#[derive(Debug)]
pub struct Binding {
    vars: Vec<Var>,
    /// Index-aligned with `vars`; empty for f32 bindings.
    quants: Vec<Option<Arc<QuantMatrix>>>,
}

/// Prepacked int8 panels + per-channel scales for a subset of a store's
/// parameters, index-aligned with the store.
///
/// Built once via [`ParamStore::quantize_where`] (typically at model
/// `quantize()` time) and shared by every subsequent
/// [`ParamStore::bind_quantized`] call, so steady-state int8 inference
/// never re-quantizes or re-packs a weight.
#[derive(Debug, Clone, Default)]
pub struct QuantizedWeights {
    mats: Vec<Option<Arc<QuantMatrix>>>,
}

impl QuantizedWeights {
    /// Number of quantized matrices.
    pub fn len(&self) -> usize {
        self.mats.iter().filter(|m| m.is_some()).count()
    }

    /// True when no parameter is quantized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes held by packed panels and scales.
    pub fn packed_bytes(&self) -> usize {
        self.mats.iter().flatten().map(|m| m.packed_bytes()).sum()
    }

    /// The quantized form of parameter `id`, when it was selected.
    pub fn get(&self, id: ParamId) -> Option<&Arc<QuantMatrix>> {
        self.mats.get(id.index()).and_then(|m| m.as_ref())
    }
}

/// A named-parameter shape conflict reported by
/// [`ParamStore::try_load_named`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// Name of the conflicting parameter.
    pub name: String,
    /// Shape registered in the store.
    pub expected: Vec<usize>,
    /// Shape found in the loaded entries.
    pub found: Vec<usize>,
}

impl Binding {
    /// The graph variable bound to parameter `id`.
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }

    /// The prepacked int8 form of parameter `id`, when this binding was
    /// produced by [`ParamStore::bind_quantized`] and `id` was selected
    /// for quantization. `None` on f32 bindings.
    pub fn quant(&self, id: ParamId) -> Option<&Arc<QuantMatrix>> {
        self.quants.get(id.0).and_then(|m| m.as_ref())
    }
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter and returns its handle.
    ///
    /// Names are purely diagnostic (checkpoints are matched by name, so keep
    /// them unique; [`ParamStore::add`] panics on duplicates to enforce it).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(self.params.iter().all(|p| p.name != name), "duplicate parameter name: {name}");
        self.params.push(Param { name, value });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.numel()).sum()
    }

    /// Current value of parameter `id`.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Name of parameter `id`.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Replaces the value of parameter `id`.
    ///
    /// # Panics
    ///
    /// Panics if the new shape differs from the registered shape.
    pub fn set_value(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            self.params[id.0].value.shape(),
            value.shape(),
            "shape mismatch updating parameter {}",
            self.params[id.0].name
        );
        self.params[id.0].value = value;
    }

    /// Iterates over `(name, tensor)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|p| (p.name.as_str(), &p.value))
    }

    /// All parameter ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Binds every parameter as a differentiable leaf of `g`.
    pub fn bind(&self, g: &mut Graph) -> Binding {
        Binding {
            vars: self.params.iter().map(|p| g.leaf(p.value.clone())).collect(),
            quants: Vec::new(),
        }
    }

    /// Binds every parameter as a *constant* of `g` (inference mode — no
    /// gradient bookkeeping).
    pub fn bind_frozen(&self, g: &mut Graph) -> Binding {
        Binding {
            vars: self.params.iter().map(|p| g.constant(p.value.clone())).collect(),
            quants: Vec::new(),
        }
    }

    /// Quantizes every parameter matching `pred` (name, value) into
    /// prepacked int8 panels. Typical predicates select rank-2 `.weight`
    /// tensors of the layers to run quantized.
    pub fn quantize_where(&self, pred: impl Fn(&str, &Tensor) -> bool) -> QuantizedWeights {
        QuantizedWeights {
            mats: self
                .params
                .iter()
                .map(|p| {
                    (pred(&p.name, &p.value)).then(|| Arc::new(QuantMatrix::quantize(&p.value)))
                })
                .collect(),
        }
    }

    /// [`ParamStore::bind_frozen`] plus the prepacked int8 handles of
    /// `q`: precision-aware layers route their matrix products through
    /// the int8 kernel for the selected parameters.
    ///
    /// Inference-only — the quantized products enter the tape as
    /// constants, so no gradients flow through them (matching the frozen
    /// f32 binding's no-gradient contract).
    pub fn bind_quantized(&self, g: &mut Graph, q: &QuantizedWeights) -> Binding {
        let mut b = self.bind_frozen(g);
        b.quants = q.mats.clone();
        b.quants.resize(self.params.len(), None);
        b
    }

    /// Collects the gradient tensor for every parameter (zeros when a
    /// parameter did not participate in the loss).
    pub fn collect_grads(&self, binding: &Binding, grads: &Gradients) -> Vec<Tensor> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                grads
                    .get(binding.vars[i])
                    .cloned()
                    .unwrap_or_else(|| Tensor::zeros(p.value.shape()))
            })
            .collect()
    }

    /// Loads values by name from `(name, tensor)` pairs.
    ///
    /// Returns the number of parameters restored.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch for a matching name. Use
    /// [`ParamStore::try_load_named`] where a mismatch must surface as a
    /// recoverable error instead.
    pub fn load_named(&mut self, entries: &[(String, Tensor)]) -> usize {
        self.try_load_named(entries).unwrap_or_else(|m| {
            panic!(
                "checkpoint shape mismatch for {}: store has {:?}, checkpoint has {:?}",
                m.name, m.expected, m.found
            )
        })
    }

    /// Fallible variant of [`ParamStore::load_named`]: restores matching
    /// names and reports the first shape mismatch instead of panicking.
    ///
    /// No parameter is modified when an error is returned (validation runs
    /// before any assignment).
    ///
    /// # Errors
    ///
    /// Returns the offending name with both shapes on a mismatch.
    pub fn try_load_named(&mut self, entries: &[(String, Tensor)]) -> Result<usize, ShapeMismatch> {
        for p in &self.params {
            if let Some((_, t)) = entries.iter().find(|(name, _)| *name == p.name) {
                if p.value.shape() != t.shape() {
                    return Err(ShapeMismatch {
                        name: p.name.clone(),
                        expected: p.value.shape().to_vec(),
                        found: t.shape().to_vec(),
                    });
                }
            }
        }
        let mut n = 0;
        for p in &mut self.params {
            if let Some((_, t)) = entries.iter().find(|(name, _)| *name == p.name) {
                p.value = t.clone();
                n += 1;
            }
        }
        Ok(n)
    }
}

impl fmt::Display for ParamStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ParamStore ({} tensors, {} scalars)", self.len(), self.num_scalars())?;
        for p in &self.params {
            writeln!(f, "  {:<40} {:?}", p.name, p.value.shape())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_count() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::zeros(&[2, 3]));
        let b = s.add("b", Tensor::zeros(&[4]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 10);
        assert_eq!(s.name(a), "a");
        assert_eq!(s.value(b).shape(), &[4]);
    }

    #[test]
    #[should_panic]
    fn duplicate_names_rejected() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::zeros(&[1]));
        s.add("w", Tensor::zeros(&[1]));
    }

    #[test]
    fn bind_and_grad_roundtrip() {
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::from_vec(vec![2.0], &[1]));
        let mut g = Graph::new();
        let bound = s.bind(&mut g);
        let wv = bound.var(w);
        let y = g.mul(wv, wv);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        let collected = s.collect_grads(&bound, &grads);
        assert_eq!(collected[0].data(), &[4.0]);
    }

    #[test]
    fn frozen_binding_produces_no_grads() {
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::from_vec(vec![2.0], &[1]));
        let mut g = Graph::new();
        let bound = s.bind_frozen(&mut g);
        let y = g.mul(bound.var(w), bound.var(w));
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!(grads.get(bound.var(w)).is_none());
        // collect_grads falls back to zeros.
        let collected = s.collect_grads(&bound, &grads);
        assert_eq!(collected[0].data(), &[0.0]);
    }

    #[test]
    fn load_named_restores_matching() {
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::zeros(&[2]));
        s.add("v", Tensor::zeros(&[2]));
        let n = s.load_named(&[("w".to_string(), Tensor::ones(&[2]))]);
        assert_eq!(n, 1);
        assert_eq!(s.value(w).data(), &[1.0, 1.0]);
    }
}
