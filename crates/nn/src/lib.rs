//! # tsdx-nn
//!
//! Neural-network building blocks on top of [`tsdx_tensor`]: a parameter
//! registry, initializers, standard layers (linear, layer norm, multi-head
//! attention, transformer encoder, 2-D convolution, GRU, dropout),
//! optimizers with schedules, and binary checkpointing.
//!
//! The design is deliberately explicit: layers own [`ParamId`] handles into
//! a shared [`ParamStore`], and every forward pass threads an autograd
//! [`Graph`](tsdx_tensor::Graph) plus a [`Binding`] produced by
//! [`ParamStore::bind`]. This keeps parameter ownership, tape lifetime, and
//! update logic all visible at the call site — no hidden globals.
//!
//! # Examples
//!
//! A three-step training loop for a tiny regressor:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use tsdx_nn::{AdamW, Linear, Optimizer, ParamStore};
//! use tsdx_tensor::{Graph, Tensor};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, &mut rng, "fc", 2, 1);
//! let mut opt = AdamW::new(0.0);
//!
//! for _ in 0..3 {
//!     let mut g = Graph::new();
//!     let p = store.bind(&mut g);
//!     let x = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
//!     let y = layer.forward(&mut g, &p, x);
//!     let sq = g.mul(y, y);
//!     let loss = g.mean_all(sq);
//!     let grads = g.backward(loss);
//!     let gv = store.collect_grads(&p, &grads);
//!     opt.step(&mut store, &gv, 1e-2);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attention;
mod conv;
mod dropout;
pub mod init;
mod linear;
mod norm;
mod optim;
mod params;
mod rnn;
pub mod serialize;
mod transformer;

pub use attention::{AttnKvCache, MultiHeadAttention};
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use norm::LayerNorm;
pub use optim::{clip_global_norm, AdamW, AdamWState, LrSchedule, Optimizer, Sgd};
pub use params::{Binding, ParamId, ParamStore, QuantizedWeights, ShapeMismatch};
pub use rnn::Gru;
pub use serialize::{
    crc32, load_checkpoint, read_checkpoint, read_train_checkpoint, save_checkpoint,
    save_train_checkpoint, write_atomic, CheckpointError, TrainCheckpoint, TrainState,
};
pub use transformer::{EncoderKvCache, Mlp, TransformerBlock, TransformerEncoder};
