//! Optimizers, gradient clipping, and learning-rate schedules.

use tsdx_tensor::Tensor;

use crate::params::ParamStore;

/// A first-order optimizer updating a [`ParamStore`] in place.
///
/// `grads` must be aligned with the store's registration order, as produced
/// by [`ParamStore::collect_grads`].
pub trait Optimizer {
    /// Applies one update step with learning rate `lr`.
    fn step(&mut self, store: &mut ParamStore, grads: &[Tensor], lr: f32);
}

/// Rescales `grads` so their global L2 norm is at most `max_norm`.
///
/// Returns the pre-clipping norm (useful for logging divergence).
pub fn clip_global_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    let sq: f32 = grads.iter().map(|g| g.data().iter().map(|&v| v * v).sum::<f32>()).sum();
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for g in grads.iter_mut() {
            for v in g.data_mut() {
                *v *= s;
            }
        }
    }
    norm
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates SGD with the given momentum coefficient (0 disables it).
    pub fn new(momentum: f32) -> Self {
        Sgd { momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &[Tensor], lr: f32) {
        assert_eq!(grads.len(), store.len(), "gradient count mismatch");
        self.velocity.resize(grads.len(), None);
        for (i, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let g = &grads[i];
            let v = if self.momentum > 0.0 {
                let prev = self.velocity[i].take().unwrap_or_else(|| Tensor::zeros(g.shape()));
                let v = prev.zip(g, |pv, gv| self.momentum * pv + gv);
                self.velocity[i] = Some(v.clone());
                v
            } else {
                g.clone()
            };
            let updated = store.value(id).zip(&v, |p, vv| p - lr * vv);
            store.set_value(id, updated);
        }
    }
}

/// AdamW: Adam with decoupled weight decay (Loshchilov & Hutter).
#[derive(Debug, Clone)]
pub struct AdamW {
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u32,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl AdamW {
    /// Creates AdamW with the standard betas `(0.9, 0.999)`.
    pub fn new(weight_decay: f32) -> Self {
        AdamW {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u32 {
        self.t
    }

    /// Snapshots the optimizer state for checkpointing.
    ///
    /// Moment slots that have never been touched (a parameter that has not
    /// taken a step yet) materialize as zero tensors of the parameter's
    /// shape — exactly what [`AdamW::step`] would have used, so a restored
    /// optimizer continues bit-identically.
    pub fn export_state(&self, store: &ParamStore) -> AdamWState {
        let moment = |slots: &[Option<Tensor>]| -> Vec<Tensor> {
            store
                .ids()
                .enumerate()
                .map(|(i, id)| {
                    slots
                        .get(i)
                        .and_then(|s| s.clone())
                        .unwrap_or_else(|| Tensor::zeros(store.value(id).shape()))
                })
                .collect()
        };
        AdamWState { t: self.t, m: moment(&self.m), v: moment(&self.v) }
    }

    /// Restores a snapshot taken by [`AdamW::export_state`].
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's moment counts disagree with each other
    /// (a malformed snapshot — shape validation against the parameter
    /// store happens at checkpoint load time).
    pub fn import_state(&mut self, state: AdamWState) {
        assert_eq!(state.m.len(), state.v.len(), "m/v moment count mismatch");
        self.t = state.t;
        self.m = state.m.into_iter().map(Some).collect();
        self.v = state.v.into_iter().map(Some).collect();
    }
}

/// A serializable snapshot of [`AdamW`]'s state (step count and first/second
/// moments aligned with a [`ParamStore`]'s registration order).
#[derive(Debug, Clone, PartialEq)]
pub struct AdamWState {
    /// Bias-correction step count.
    pub t: u32,
    /// First moments, one per parameter.
    pub m: Vec<Tensor>,
    /// Second moments, one per parameter.
    pub v: Vec<Tensor>,
}

impl Optimizer for AdamW {
    fn step(&mut self, store: &mut ParamStore, grads: &[Tensor], lr: f32) {
        assert_eq!(grads.len(), store.len(), "gradient count mismatch");
        self.m.resize(grads.len(), None);
        self.v.resize(grads.len(), None);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let g = &grads[i];
            let m_prev = self.m[i].take().unwrap_or_else(|| Tensor::zeros(g.shape()));
            let v_prev = self.v[i].take().unwrap_or_else(|| Tensor::zeros(g.shape()));
            let m = m_prev.zip(g, |mv, gv| self.beta1 * mv + (1.0 - self.beta1) * gv);
            let v = v_prev.zip(g, |vv, gv| self.beta2 * vv + (1.0 - self.beta2) * gv * gv);

            let mut new_val = Vec::with_capacity(g.numel());
            {
                let p = store.value(id).data();
                let md = m.data();
                let vd = v.data();
                for j in 0..p.len() {
                    let mhat = md[j] / bc1;
                    let vhat = vd[j] / bc2;
                    let mut x = p[j] - lr * mhat / (vhat.sqrt() + self.eps);
                    // Decoupled decay.
                    x -= lr * self.weight_decay * p[j];
                    new_val.push(x);
                }
            }
            let shape = store.value(id).shape().to_vec();
            store.set_value(id, Tensor::from_vec(new_val, &shape));
            self.m[i] = Some(m);
            self.v[i] = Some(v);
        }
    }
}

/// Learning-rate schedule evaluated per optimizer step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// A fixed learning rate.
    Constant(f32),
    /// Linear warmup to `base` over `warmup` steps, then cosine decay to
    /// `min` at `total` steps.
    WarmupCosine {
        /// Peak learning rate reached after warmup.
        base: f32,
        /// Number of linear-warmup steps.
        warmup: u32,
        /// Total steps over which the cosine decays.
        total: u32,
        /// Floor learning rate after `total`.
        min: f32,
    },
}

impl LrSchedule {
    /// Learning rate at `step` (0-indexed).
    pub fn lr(&self, step: u32) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::WarmupCosine { base, warmup, total, min } => {
                if warmup > 0 && step < warmup {
                    return base * (step + 1) as f32 / warmup as f32;
                }
                if step >= total {
                    return min;
                }
                let span = (total - warmup).max(1) as f32;
                let progress = (step - warmup) as f32 / span;
                min + 0.5 * (base - min) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.add("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        s
    }

    /// Gradient of f(x) = 0.5 * |x|^2 is x itself.
    fn quad_grad(store: &ParamStore) -> Vec<Tensor> {
        store.iter().map(|(_, t)| t.clone()).collect()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = quadratic_store();
        let mut opt = Sgd::new(0.0);
        for _ in 0..100 {
            let g = quad_grad(&store);
            opt.step(&mut store, &g, 0.1);
        }
        let x = store.iter().next().unwrap().1;
        assert!(x.data().iter().all(|&v| v.abs() < 1e-3), "{x:?}");
    }

    #[test]
    fn momentum_accelerates_early_progress() {
        let mut plain_store = quadratic_store();
        let mut mom_store = quadratic_store();
        let mut plain = Sgd::new(0.0);
        let mut momentum = Sgd::new(0.9);
        for _ in 0..5 {
            let g = quad_grad(&plain_store);
            plain.step(&mut plain_store, &g, 0.01);
            let g = quad_grad(&mom_store);
            momentum.step(&mut mom_store, &g, 0.01);
        }
        let pn: f32 = plain_store.iter().next().unwrap().1.data().iter().map(|v| v * v).sum();
        let mn: f32 = mom_store.iter().next().unwrap().1.data().iter().map(|v| v * v).sum();
        assert!(mn < pn, "momentum should make faster early progress");
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let mut store = quadratic_store();
        let mut opt = AdamW::new(0.0);
        for _ in 0..300 {
            let g = quad_grad(&store);
            opt.step(&mut store, &g, 0.05);
        }
        let x = store.iter().next().unwrap().1;
        assert!(x.data().iter().all(|&v| v.abs() < 1e-2), "{x:?}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn adamw_weight_decay_shrinks_params_without_grads() {
        let mut store = quadratic_store();
        let mut opt = AdamW::new(0.1);
        let zero = vec![Tensor::zeros(&[2])];
        let before = store.iter().next().unwrap().1.clone();
        opt.step(&mut store, &zero, 0.1);
        let after = store.iter().next().unwrap().1;
        for (b, a) in before.data().iter().zip(after.data()) {
            assert!(a.abs() < b.abs(), "decay should shrink magnitude");
        }
    }

    #[test]
    fn adamw_state_roundtrip_is_bit_identical() {
        let mut store_a = quadratic_store();
        let mut opt_a = AdamW::new(0.01);
        for _ in 0..7 {
            let g = quad_grad(&store_a);
            opt_a.step(&mut store_a, &g, 0.05);
        }
        // Snapshot mid-run, restore into a fresh optimizer, and continue
        // both: every subsequent step must agree bit-for-bit.
        let mut store_b = store_a.clone();
        let mut opt_b = AdamW::new(0.01);
        opt_b.import_state(opt_a.export_state(&store_a));
        assert_eq!(opt_b.steps(), 7);
        for _ in 0..5 {
            let ga = quad_grad(&store_a);
            opt_a.step(&mut store_a, &ga, 0.05);
            let gb = quad_grad(&store_b);
            opt_b.step(&mut store_b, &gb, 0.05);
        }
        for (a, b) in store_a.iter().zip(store_b.iter()) {
            assert_eq!(a.1.data(), b.1.data(), "resumed optimizer diverged on {}", a.0);
        }
    }

    #[test]
    fn adamw_export_before_any_step_is_zeros() {
        let store = quadratic_store();
        let opt = AdamW::new(0.0);
        let s = opt.export_state(&store);
        assert_eq!(s.t, 0);
        assert_eq!(s.m.len(), 1);
        assert!(s.m[0].data().iter().chain(s.v[0].data()).all(|&x| x == 0.0));
    }

    #[test]
    fn clip_reduces_large_norms_only() {
        let mut big = vec![Tensor::from_vec(vec![3.0, 4.0], &[2])];
        let n = clip_global_norm(&mut big, 1.0);
        assert!((n - 5.0).abs() < 1e-6);
        let clipped: f32 = big[0].data().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((clipped - 1.0).abs() < 1e-5);

        let mut small = vec![Tensor::from_vec(vec![0.3, 0.4], &[2])];
        clip_global_norm(&mut small, 1.0);
        assert_eq!(small[0].data(), &[0.3, 0.4]);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = LrSchedule::WarmupCosine { base: 1.0, warmup: 10, total: 110, min: 0.1 };
        // Rises during warmup.
        assert!(s.lr(0) < s.lr(5));
        assert!(s.lr(5) < s.lr(9));
        assert!((s.lr(9) - 1.0).abs() < 1e-6);
        // Decays after warmup.
        assert!(s.lr(50) < 1.0);
        assert!(s.lr(100) < s.lr(50));
        // Bottoms out at min.
        assert!((s.lr(1000) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn constant_schedule() {
        assert_eq!(LrSchedule::Constant(0.3).lr(0), 0.3);
        assert_eq!(LrSchedule::Constant(0.3).lr(999), 0.3);
    }
}
