//! Property-based tests of optimizers, schedules, and layer invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsdx_nn::{clip_global_norm, AdamW, Linear, LrSchedule, Optimizer, ParamStore, Sgd};
use tsdx_tensor::{Graph, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimizers_descend_random_convex_quadratics(
        start in prop::collection::vec(-5.0f32..5.0, 4),
        curvature in prop::collection::vec(0.2f32..3.0, 4),
        adam in any::<bool>(),
    ) {
        // f(x) = 0.5 * sum(c_i x_i^2); grad = c_i x_i.
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::from_vec(start.clone(), &[4]));
        let mut sgd = Sgd::new(0.9);
        let mut adamw = AdamW::new(0.0);
        let f = |store: &ParamStore| -> f32 {
            store.value(x).data().iter().zip(&curvature).map(|(&v, &c)| 0.5 * c * v * v).sum()
        };
        let initial = f(&store);
        for _ in 0..120 {
            let grads = vec![Tensor::from_vec(
                store.value(x).data().iter().zip(&curvature).map(|(&v, &c)| c * v).collect(),
                &[4],
            )];
            if adam {
                adamw.step(&mut store, &grads, 0.05);
            } else {
                sgd.step(&mut store, &grads, 0.02);
            }
        }
        let final_val = f(&store);
        prop_assert!(
            final_val < initial * 0.2 + 1e-3,
            "no descent: {initial} -> {final_val} (adam={adam})"
        );
    }

    #[test]
    fn clip_never_increases_norm_and_preserves_direction(
        values in prop::collection::vec(-10.0f32..10.0, 6),
        max_norm in 0.5f32..5.0,
    ) {
        let mut grads = vec![Tensor::from_vec(values.clone(), &[6])];
        let before = clip_global_norm(&mut grads, max_norm);
        let after: f32 = grads[0].data().iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!(after <= max_norm + 1e-4);
        prop_assert!(after <= before + 1e-4);
        // Direction preserved: clipped vector is a non-negative multiple.
        if before > 1e-6 {
            for (a, b) in values.iter().zip(grads[0].data()) {
                prop_assert!((a * b >= -1e-6), "sign flip during clipping");
            }
        }
    }

    #[test]
    fn warmup_cosine_is_bounded_and_warms_up(
        base in 1e-4f32..1e-1,
        warmup in 1u32..50,
        span in 50u32..500,
    ) {
        let total = warmup + span;
        let min = base * 0.01;
        let s = LrSchedule::WarmupCosine { base, warmup, total, min };
        let mut prev = 0.0;
        for step in 0..warmup {
            let lr = s.lr(step);
            prop_assert!(lr >= prev - 1e-9, "warmup must be non-decreasing");
            prop_assert!(lr <= base * (1.0 + 1e-5));
            prev = lr;
        }
        for step in warmup..total + 20 {
            let lr = s.lr(step);
            prop_assert!(lr <= base * (1.0 + 1e-5) && lr >= min * (1.0 - 1e-5));
        }
        prop_assert!((s.lr(total + 1000) - min).abs() < min * 1e-4 + 1e-9);
    }

    #[test]
    fn linear_layers_are_affine(seed in 0u64..1_000) {
        // f(a*x) - f(0) == a * (f(x) - f(0)) for linear layers.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Linear::new(&mut store, &mut rng, "l", 3, 2);
        let eval = |input: Tensor| -> Vec<f32> {
            let mut g = Graph::new();
            let p = store.bind_frozen(&mut g);
            let x = g.constant(input);
            let y = layer.forward(&mut g, &p, x);
            g.value(y).data().to_vec()
        };
        let x = Tensor::from_fn(&[1, 3], |i| (i as f32 + 1.0) * 0.3);
        let zero = eval(Tensor::zeros(&[1, 3]));
        let fx = eval(x.clone());
        let f2x = eval(tsdx_tensor::ops::scale(&x, 2.0));
        for i in 0..2 {
            let lhs = f2x[i] - zero[i];
            let rhs = 2.0 * (fx[i] - zero[i]);
            prop_assert!((lhs - rhs).abs() < 1e-4, "not affine: {lhs} vs {rhs}");
        }
    }
}
