//! Clip generation: sampling, simulating, and rendering labeled videos.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tsdx_render::{render_video, RenderConfig};
use tsdx_sdl::Scenario;
use tsdx_sim::{SamplerConfig, ScenarioSampler};
use tsdx_tensor::Tensor;

use crate::labels::ClipLabels;

/// One labeled video clip.
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// Grayscale video `[T, H, W]`, values in `[0, 1]`.
    pub video: Tensor,
    /// Ground-truth SDL description.
    pub truth: Scenario,
    /// Derived head labels.
    pub labels: ClipLabels,
}

/// Full dataset-generation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Number of clips to generate.
    pub n_clips: usize,
    /// Base RNG seed; clip `i` uses seed `base_seed + i`, so datasets are
    /// reproducible regardless of worker count.
    pub base_seed: u64,
    /// Scenario sampler configuration.
    pub sampler: SamplerConfig,
    /// Rendering configuration.
    pub render: RenderConfig,
    /// Simulation timestep (s).
    pub sim_dt: f32,
    /// Number of generation worker threads (1 = sequential).
    pub workers: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            n_clips: 256,
            base_seed: 17,
            sampler: SamplerConfig::default(),
            render: RenderConfig::default(),
            sim_dt: 0.1,
            workers: 1,
        }
    }
}

/// Generates the clip with index `i` under `cfg` (deterministic).
pub fn generate_clip(cfg: &DatasetConfig, i: usize) -> Clip {
    let mut rng = StdRng::seed_from_u64(cfg.base_seed.wrapping_add(i as u64));
    let sampler = ScenarioSampler::new(cfg.sampler);
    let generated = sampler.sample(&mut rng);
    let traj = generated.world.simulate(cfg.sim_dt);
    let video = render_video(&generated.world, &traj, &cfg.render, &mut rng);
    let labels = ClipLabels::from_scenario(&generated.truth);
    Clip { video, truth: generated.truth, labels }
}

/// Generates a full dataset.
///
/// With `cfg.workers > 1` the clip indices are sharded over worker threads
/// (crossbeam scoped threads); because every clip derives its own seed from
/// its index, the result is byte-identical to the sequential run.
pub fn generate_dataset(cfg: &DatasetConfig) -> Vec<Clip> {
    if cfg.workers <= 1 || cfg.n_clips < 4 {
        return (0..cfg.n_clips).map(|i| generate_clip(cfg, i)).collect();
    }
    let workers = cfg.workers.min(cfg.n_clips);
    let mut slots: Vec<Option<Clip>> = (0..cfg.n_clips).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut rest = slots.as_mut_slice();
        let chunk = cfg.n_clips.div_ceil(workers);
        let mut start = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let base = start;
            scope.spawn(move |_| {
                for (j, slot) in head.iter_mut().enumerate() {
                    *slot = Some(generate_clip(cfg, base + j));
                }
            });
            rest = tail;
            start += take;
        }
    })
    .expect("clip generation worker panicked");
    slots.into_iter().map(|c| c.expect("all clips generated")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(n: usize) -> DatasetConfig {
        DatasetConfig {
            n_clips: n,
            render: RenderConfig { width: 16, height: 16, frames: 4, ..RenderConfig::default() },
            ..DatasetConfig::default()
        }
    }

    #[test]
    fn clips_have_consistent_shapes_and_labels() {
        let cfg = tiny_cfg(6);
        let clips = generate_dataset(&cfg);
        assert_eq!(clips.len(), 6);
        for c in &clips {
            assert_eq!(c.video.shape(), &[4, 16, 16]);
            c.truth.validate().unwrap();
            assert_eq!(c.labels, ClipLabels::from_scenario(&c.truth));
        }
    }

    #[test]
    fn generation_is_deterministic_per_index() {
        let cfg = tiny_cfg(3);
        let a = generate_clip(&cfg, 2);
        let b = generate_clip(&cfg, 2);
        assert_eq!(a.video, b.video);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn parallel_equals_sequential() {
        let seq = generate_dataset(&tiny_cfg(8));
        let par = generate_dataset(&DatasetConfig { workers: 3, ..tiny_cfg(8) });
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.truth, b.truth);
            assert_eq!(a.video, b.video);
        }
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = generate_dataset(&tiny_cfg(4));
        let b = generate_dataset(&DatasetConfig { base_seed: 999, ..tiny_cfg(4) });
        assert!(a.iter().zip(&b).any(|(x, y)| x.truth != y.truth || x.video != y.video));
    }
}
