//! Train/validation/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::clipgen::Clip;

/// Index-based dataset split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation indices.
    pub val: Vec<usize>,
    /// Test indices.
    pub test: Vec<usize>,
}

impl Split {
    /// Total number of indices across the three parts.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True when the split is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Splits `clips` into train/val/test, stratified by the ego-maneuver label
/// so every class appears in every part proportionally.
///
/// `fractions` are `(train, val)`; the remainder is the test set.
///
/// # Panics
///
/// Panics unless `0 < train`, `0 <= val`, and `train + val < 1`.
pub fn stratified_split(clips: &[Clip], fractions: (f32, f32), seed: u64) -> Split {
    let (ft, fv) = fractions;
    assert!(ft > 0.0 && fv >= 0.0 && ft + fv < 1.0, "invalid split fractions ({ft}, {fv})");
    let mut rng = StdRng::seed_from_u64(seed);

    // Group indices by ego class.
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, c) in clips.iter().enumerate() {
        groups.entry(c.labels.ego).or_default().push(i);
    }

    let mut split = Split { train: vec![], val: vec![], test: vec![] };
    for (_, mut idx) in groups {
        idx.shuffle(&mut rng);
        let n = idx.len();
        let n_train = ((n as f32) * ft).round() as usize;
        let n_val = ((n as f32) * fv).round() as usize;
        let n_train = n_train.min(n);
        let n_val = n_val.min(n - n_train);
        split.train.extend(&idx[..n_train]);
        split.val.extend(&idx[n_train..n_train + n_val]);
        split.test.extend(&idx[n_train + n_val..]);
    }
    // Shuffle within each part so batches are not class-ordered.
    split.train.shuffle(&mut rng);
    split.val.shuffle(&mut rng);
    split.test.shuffle(&mut rng);
    split
}

/// Borrows the clips selected by `indices`.
pub fn select<'a>(clips: &'a [Clip], indices: &[usize]) -> Vec<&'a Clip> {
    indices.iter().map(|&i| &clips[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clipgen::{generate_dataset, DatasetConfig};
    use tsdx_render::RenderConfig;

    fn dataset(n: usize) -> Vec<Clip> {
        generate_dataset(&DatasetConfig {
            n_clips: n,
            render: RenderConfig { width: 8, height: 8, frames: 2, ..RenderConfig::default() },
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn split_partitions_all_indices() {
        let clips = dataset(40);
        let s = stratified_split(&clips, (0.6, 0.2), 5);
        assert_eq!(s.len(), 40);
        let mut all: Vec<usize> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn fractions_are_respected_roughly() {
        let clips = dataset(60);
        let s = stratified_split(&clips, (0.5, 0.25), 6);
        assert!((s.train.len() as i64 - 30).abs() <= 4, "train {}", s.train.len());
        assert!((s.val.len() as i64 - 15).abs() <= 4, "val {}", s.val.len());
    }

    #[test]
    fn stratification_keeps_classes_in_train() {
        let clips = dataset(80);
        let s = stratified_split(&clips, (0.7, 0.0), 7);
        // Every ego class present overall must appear in train.
        let classes: std::collections::BTreeSet<usize> =
            clips.iter().map(|c| c.labels.ego).collect();
        let train_classes: std::collections::BTreeSet<usize> =
            s.train.iter().map(|&i| clips[i].labels.ego).collect();
        assert_eq!(classes, train_classes);
    }

    #[test]
    fn deterministic_under_seed() {
        let clips = dataset(30);
        assert_eq!(
            stratified_split(&clips, (0.6, 0.2), 9),
            stratified_split(&clips, (0.6, 0.2), 9)
        );
        assert_ne!(
            stratified_split(&clips, (0.6, 0.2), 9),
            stratified_split(&clips, (0.6, 0.2), 10)
        );
    }

    #[test]
    #[should_panic]
    fn rejects_bad_fractions() {
        let clips = dataset(4);
        stratified_split(&clips, (0.8, 0.4), 0);
    }
}
