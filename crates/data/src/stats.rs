//! Dataset statistics (the Table 1 generator).

use std::fmt;

use tsdx_sdl::{vocab, ActorKind, EgoManeuver, RoadKind};

use crate::clipgen::Clip;

/// Marginal label statistics of a clip dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Total clips.
    pub n_clips: usize,
    /// Clips per ego-maneuver class.
    pub ego_counts: Vec<usize>,
    /// Clips per road kind.
    pub road_counts: Vec<usize>,
    /// Clips per primary-event class (including *none*).
    pub event_counts: Vec<usize>,
    /// Clips containing each actor kind.
    pub presence_counts: Vec<usize>,
    /// Mean number of actor clauses per clip.
    pub mean_actors: f32,
}

impl DatasetStats {
    /// Computes statistics over `clips`.
    pub fn compute(clips: &[Clip]) -> Self {
        let mut ego_counts = vec![0; EgoManeuver::COUNT];
        let mut road_counts = vec![0; RoadKind::COUNT];
        let mut event_counts = vec![0; vocab::EVENT_COUNT];
        let mut presence_counts = vec![0; ActorKind::COUNT];
        let mut actor_total = 0usize;
        for c in clips {
            ego_counts[c.labels.ego] += 1;
            road_counts[c.labels.road] += 1;
            event_counts[c.labels.event] += 1;
            for (k, &p) in c.labels.presence.iter().enumerate() {
                if p > 0.5 {
                    presence_counts[k] += 1;
                }
            }
            actor_total += c.truth.actors.len();
        }
        DatasetStats {
            n_clips: clips.len(),
            ego_counts,
            road_counts,
            event_counts,
            presence_counts,
            mean_actors: if clips.is_empty() {
                0.0
            } else {
                actor_total as f32 / clips.len() as f32
            },
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "clips: {}", self.n_clips)?;
        writeln!(f, "mean actor clauses/clip: {:.2}", self.mean_actors)?;
        writeln!(f, "-- ego maneuver --")?;
        for (i, &n) in self.ego_counts.iter().enumerate() {
            writeln!(f, "  {:<20} {:>6}", EgoManeuver::from_index(i).as_str(), n)?;
        }
        writeln!(f, "-- road kind --")?;
        for (i, &n) in self.road_counts.iter().enumerate() {
            writeln!(f, "  {:<20} {:>6}", RoadKind::from_index(i).as_str(), n)?;
        }
        writeln!(f, "-- primary event --")?;
        for (i, &n) in self.event_counts.iter().enumerate() {
            writeln!(f, "  {:<22} {:>6}", vocab::event_name(i), n)?;
        }
        writeln!(f, "-- actor presence --")?;
        for (i, &n) in self.presence_counts.iter().enumerate() {
            writeln!(f, "  {:<20} {:>6}", ActorKind::from_index(i).as_str(), n)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clipgen::{generate_dataset, DatasetConfig};
    use tsdx_render::RenderConfig;

    fn dataset(n: usize) -> Vec<Clip> {
        generate_dataset(&DatasetConfig {
            n_clips: n,
            render: RenderConfig { width: 8, height: 8, frames: 2, ..RenderConfig::default() },
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn counts_sum_to_total() {
        let clips = dataset(50);
        let s = DatasetStats::compute(&clips);
        assert_eq!(s.n_clips, 50);
        assert_eq!(s.ego_counts.iter().sum::<usize>(), 50);
        assert_eq!(s.road_counts.iter().sum::<usize>(), 50);
        assert_eq!(s.event_counts.iter().sum::<usize>(), 50);
    }

    #[test]
    fn all_road_kinds_appear_in_a_reasonable_sample() {
        let clips = dataset(120);
        let s = DatasetStats::compute(&clips);
        assert!(s.road_counts.iter().all(|&n| n > 0), "{:?}", s.road_counts);
    }

    #[test]
    fn display_renders_all_sections() {
        let clips = dataset(10);
        let text = DatasetStats::compute(&clips).to_string();
        for needle in ["ego maneuver", "road kind", "primary event", "actor presence", "none"] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn empty_dataset_is_well_defined() {
        let s = DatasetStats::compute(&[]);
        assert_eq!(s.n_clips, 0);
        assert_eq!(s.mean_actors, 0.0);
    }
}
